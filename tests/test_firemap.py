"""Tests for repro.grid.firemap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.grid.firemap import IgnitionMap, burned_mask, fire_line, fire_perimeter_cells


def _map_with_center(n=5, t=3.0):
    times = np.full((n, n), np.inf)
    times[n // 2, n // 2] = t
    return IgnitionMap(times=times)


class TestIgnitionMap:
    def test_burned_at_time(self):
        m = _map_with_center(t=3.0)
        assert not m.burned(2.9).any()
        assert m.burned(3.0).sum() == 1
        assert m.burned(None).sum() == 1

    def test_burned_area_cells(self):
        assert _map_with_center().burned_area_cells(10.0) == 1

    def test_arrival_horizon(self):
        assert _map_with_center(t=7.5).arrival_horizon() == 7.5

    def test_arrival_horizon_empty(self):
        m = IgnitionMap(times=np.full((3, 3), np.inf))
        assert m.arrival_horizon() == 0.0

    def test_rejects_negative_times(self):
        times = np.zeros((3, 3))
        times[0, 0] = -1.0
        with pytest.raises(SimulationError):
            IgnitionMap(times=times)

    def test_rejects_non_2d(self):
        with pytest.raises(SimulationError):
            IgnitionMap(times=np.zeros(5))

    def test_paper_convention_roundtrip(self):
        times = np.full((4, 4), np.inf)
        times[1, 1] = 0.0  # ignition point
        times[1, 2] = 5.0
        m = IgnitionMap(times=times)
        encoded = m.to_paper_convention()
        # unburned cells encode as exactly 0
        assert encoded[0, 0] == 0.0
        assert encoded[1, 2] == 5.0
        back = IgnitionMap.from_paper_convention(encoded)
        assert np.array_equal(np.isfinite(back.times), np.isfinite(m.times))
        assert back.times[1, 1] == 0.0
        assert back.times[1, 2] == 5.0


class TestBurnedMask:
    def test_accepts_raw_array(self):
        times = np.full((3, 3), np.inf)
        times[0, 0] = 1.0
        assert burned_mask(times, 2.0).sum() == 1
        assert burned_mask(times).sum() == 1

    def test_accepts_ignition_map(self):
        assert burned_mask(_map_with_center(), None).sum() == 1


class TestFireLine:
    def test_single_cell_is_its_own_line(self):
        b = np.zeros((5, 5), dtype=bool)
        b[2, 2] = True
        assert np.array_equal(fire_line(b), b)

    def test_filled_square_line_is_border(self):
        b = np.zeros((7, 7), dtype=bool)
        b[1:6, 1:6] = True
        line = fire_line(b)
        assert line[1, 1] and line[1, 3] and line[5, 5]
        assert not line[3, 3]  # interior
        assert line.sum() == 25 - 9  # 5x5 minus 3x3 interior

    def test_line_subset_of_burned(self):
        rng = np.random.default_rng(3)
        b = rng.random((10, 10)) > 0.5
        line = fire_line(b)
        assert not (line & ~b).any()

    def test_grid_border_counts_as_frontier(self):
        b = np.ones((4, 4), dtype=bool)
        line = fire_line(b)
        assert line[0, 0] and line[0, 2] and line[3, 3]
        assert not line[1, 1]

    def test_empty_mask(self):
        assert fire_line(np.zeros((3, 3), dtype=bool)).sum() == 0

    def test_rejects_non_2d(self):
        with pytest.raises(SimulationError):
            fire_line(np.zeros(4, dtype=bool))

    def test_perimeter_count(self):
        b = np.zeros((5, 5), dtype=bool)
        b[1:4, 1:4] = True
        assert fire_perimeter_cells(b) == 8
