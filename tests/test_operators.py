"""Tests for the genetic operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import ParameterSpace
from repro.ea.operators import (
    blx_alpha_crossover,
    gaussian_mutation,
    one_point_crossover,
    rank_selection,
    roulette_wheel,
    tournament,
    two_point_crossover,
    uniform_crossover,
    uniform_reset_mutation,
)
from repro.errors import EvolutionError

RNG = 123


class TestRouletteWheel:
    def test_returns_valid_indices(self):
        idx = roulette_wheel(np.array([1.0, 2.0, 3.0]), 50, RNG)
        assert idx.shape == (50,)
        assert ((idx >= 0) & (idx < 3)).all()

    def test_proportional_bias(self):
        # score 9 vs 1: the heavy individual must dominate selections
        idx = roulette_wheel(np.array([1.0, 9.0]), 2000, RNG)
        assert (idx == 1).mean() > 0.8

    def test_all_zero_degenerates_to_uniform(self):
        idx = roulette_wheel(np.zeros(4), 4000, RNG)
        counts = np.bincount(idx, minlength=4) / 4000
        assert np.allclose(counts, 0.25, atol=0.05)

    def test_negative_scores_raise(self):
        with pytest.raises(EvolutionError):
            roulette_wheel(np.array([-1.0, 2.0]), 5, RNG)

    def test_empty_population_raises(self):
        with pytest.raises(EvolutionError):
            roulette_wheel(np.array([]), 5, RNG)

    def test_deterministic(self):
        a = roulette_wheel(np.array([1.0, 2.0]), 10, 7)
        b = roulette_wheel(np.array([1.0, 2.0]), 10, 7)
        assert np.array_equal(a, b)


class TestTournament:
    def test_prefers_better(self):
        scores = np.array([0.1, 0.9, 0.5])
        idx = tournament(scores, 1000, RNG, size=3)
        assert (idx == 1).mean() > 0.6

    def test_size_one_is_uniform(self):
        idx = tournament(np.array([0.0, 100.0]), 3000, RNG, size=1)
        assert abs((idx == 0).mean() - 0.5) < 0.05

    def test_bad_size_raises(self):
        with pytest.raises(EvolutionError):
            tournament(np.ones(3), 2, RNG, size=0)


class TestRankSelection:
    def test_monotone_in_rank(self):
        scores = np.array([0.0, 0.5, 1.0])
        idx = rank_selection(scores, 6000, RNG)
        counts = np.bincount(idx, minlength=3)
        assert counts[0] < counts[1] < counts[2]

    def test_insensitive_to_scale(self):
        a = rank_selection(np.array([1.0, 2.0, 3.0]), 100, 5)
        b = rank_selection(np.array([10.0, 200.0, 30000.0]), 100, 5)
        assert np.array_equal(a, b)


class TestCrossovers:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.a = rng.random((20, 9))
        self.b = rng.random((20, 9))

    @pytest.mark.parametrize(
        "op", [one_point_crossover, two_point_crossover, uniform_crossover]
    )
    def test_children_mix_parent_genes(self, op):
        child = op(self.a, self.b, RNG)
        assert child.shape == self.a.shape
        from_a = np.isclose(child, self.a)
        from_b = np.isclose(child, self.b)
        assert (from_a | from_b).all()

    def test_one_point_is_prefix_suffix(self):
        child = one_point_crossover(self.a, self.b, RNG)
        for row in range(child.shape[0]):
            from_a = np.isclose(child[row], self.a[row])
            # prefix from a, suffix from b: once it switches it stays
            switched = False
            for g in range(9):
                if not from_a[g]:
                    switched = True
                if switched:
                    assert np.isclose(child[row, g], self.b[row, g])

    def test_blx_extends_interval(self):
        child = blx_alpha_crossover(self.a, self.b, RNG, alpha=0.5)
        lo = np.minimum(self.a, self.b)
        hi = np.maximum(self.a, self.b)
        spread = hi - lo
        assert (child >= lo - 0.5 * spread - 1e-12).all()
        assert (child <= hi + 0.5 * spread + 1e-12).all()

    def test_shape_mismatch_raises(self):
        with pytest.raises(EvolutionError):
            one_point_crossover(self.a, self.b[:5], RNG)

    def test_bad_p_swap_raises(self):
        with pytest.raises(EvolutionError):
            uniform_crossover(self.a, self.b, RNG, p_swap=1.5)

    def test_bad_alpha_raises(self):
        with pytest.raises(EvolutionError):
            blx_alpha_crossover(self.a, self.b, RNG, alpha=-0.1)


class TestMutations:
    def setup_method(self):
        self.space = ParameterSpace()
        self.genomes = self.space.sample(50, 3)

    def test_uniform_reset_rate_zero_identity(self):
        out = uniform_reset_mutation(
            self.genomes, 0.0, self.space.lower_bounds, self.space.upper_bounds, RNG
        )
        assert np.array_equal(out, self.genomes)

    def test_uniform_reset_rate_one_changes_most(self):
        out = uniform_reset_mutation(
            self.genomes, 1.0, self.space.lower_bounds, self.space.upper_bounds, RNG
        )
        changed = ~np.isclose(out, self.genomes)
        assert changed.mean() > 0.9

    def test_uniform_reset_within_bounds(self):
        out = uniform_reset_mutation(
            self.genomes, 1.0, self.space.lower_bounds, self.space.upper_bounds, RNG
        )
        assert (out >= self.space.lower_bounds - 1e-12).all()
        assert (out <= self.space.upper_bounds + 1e-12).all()

    def test_gaussian_perturbs_locally(self):
        out = gaussian_mutation(
            self.genomes,
            1.0,
            self.space.lower_bounds,
            self.space.upper_bounds,
            RNG,
            sigma_fraction=0.01,
        )
        # small sigma: changes are small relative to the spans
        delta = np.abs(out - self.genomes) / (
            self.space.upper_bounds - self.space.lower_bounds
        )
        assert delta.max() < 0.1

    def test_does_not_mutate_input(self):
        snapshot = self.genomes.copy()
        uniform_reset_mutation(
            self.genomes, 0.5, self.space.lower_bounds, self.space.upper_bounds, RNG
        )
        assert np.array_equal(self.genomes, snapshot)

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_bad_rate_raises(self, rate):
        with pytest.raises(EvolutionError):
            uniform_reset_mutation(
                self.genomes,
                rate,
                self.space.lower_bounds,
                self.space.upper_bounds,
                RNG,
            )
        with pytest.raises(EvolutionError):
            gaussian_mutation(
                self.genomes,
                rate,
                self.space.lower_bounds,
                self.space.upper_bounds,
                RNG,
            )

    def test_bad_sigma_raises(self):
        with pytest.raises(EvolutionError):
            gaussian_mutation(
                self.genomes,
                0.5,
                self.space.lower_bounds,
                self.space.upper_bounds,
                RNG,
                sigma_fraction=0.0,
            )
