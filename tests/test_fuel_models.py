"""Tests for the NFFL fuel-model catalog."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.firelib.fuel_models import (
    HEAT_CONTENT,
    PARTICLE_DENSITY,
    SAV_10H,
    SAV_100H,
    FuelModel,
    catalog,
    get_model,
)


class TestCatalog:
    def test_thirteen_models(self):
        assert sorted(catalog()) == list(range(1, 14))

    @pytest.mark.parametrize("code", range(1, 14))
    def test_every_model_well_formed(self, code):
        m = get_model(code)
        assert isinstance(m, FuelModel)
        assert m.code == code
        assert m.depth > 0
        assert 0 < m.mext_dead < 1
        assert m.particles, "every model has at least one particle"
        assert m.total_load > 0
        for p in m.particles:
            assert p.load > 0
            assert p.sav > 0
            assert p.life in ("dead", "live")

    def test_model_1_is_short_grass(self):
        m = get_model(1)
        assert "grass" in m.name
        assert len(m.particles) == 1  # 1-h dead only
        assert m.particles[0].sav == 3500.0
        assert m.mext_dead == pytest.approx(0.12)

    def test_model_13_is_heaviest(self):
        loads = {code: get_model(code).total_load for code in range(1, 14)}
        assert max(loads, key=loads.get) == 13

    def test_live_fuel_models(self):
        # Models with live herbaceous load per Anderson 1982.
        live = {c for c in range(1, 14) if get_model(c).live_particles}
        assert live == {2, 4, 5, 7, 10}

    def test_standard_sav_constants(self):
        m4 = get_model(4)
        savs = {p.moisture_key: p.sav for p in m4.particles}
        assert savs["m10"] == SAV_10H
        assert savs["m100"] == SAV_100H

    def test_moisture_keys_match_life(self):
        for code in range(1, 14):
            for p in get_model(code).particles:
                if p.life == "live":
                    assert p.moisture_key == "mherb"
                else:
                    assert p.moisture_key in ("m1", "m10", "m100")


class TestGetModel:
    @pytest.mark.parametrize("bad", [0, 14, -1, "x", None, 1.5])
    def test_invalid_codes_raise(self, bad):
        if bad == 1.5:
            # floats that round-trip via int() are accepted only if exact
            assert get_model(int(bad)).code == 1
            return
        with pytest.raises(ScenarioError):
            get_model(bad)

    def test_constants_physical(self):
        assert HEAT_CONTENT == 8000.0
        assert PARTICLE_DENSITY == 32.0


class TestFuelParticle:
    def test_surface_area_weighting_basis(self):
        p = get_model(1).particles[0]
        assert p.surface_area_per_density == pytest.approx(
            p.load * p.sav / PARTICLE_DENSITY
        )
