"""Tests for differential evolution (ESSIM-DE engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.individual import Individual
from repro.ea.de import DEConfig, DifferentialEvolution, _distinct_donors
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.parallel.executor import SerialEvaluator

TERM = Termination(max_generations=10, fitness_threshold=0.99)


def _run(problem, space, seed=0, term=TERM, **cfg):
    defaults = dict(population_size=20)
    defaults.update(cfg)
    return DifferentialEvolution(DEConfig(**defaults)).run(
        SerialEvaluator(problem), space, term, rng=seed
    )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 3},
            {"differential_weight": 0.0},
            {"differential_weight": 2.5},
            {"crossover_probability": -0.1},
            {"strategy": "bogus"},
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(EvolutionError):
            DEConfig(**kwargs)


class TestDistinctDonors:
    @pytest.mark.parametrize("n", [4, 5, 10, 50])
    def test_rows_distinct_and_exclude_target(self, n):
        rng = np.random.default_rng(0)
        for _ in range(5):
            donors = _distinct_donors(n, rng)
            assert donors.shape == (n, 3)
            for i in range(n):
                row = set(donors[i])
                assert len(row) == 3
                assert i not in row
                assert all(0 <= v < n for v in row)


class TestDERun:
    def test_improves(self, toy_problem, space):
        result = _run(toy_problem, space)
        assert result.best.fitness > 0.75

    def test_greedy_selection_never_degrades(self, toy_problem, space):
        result = _run(toy_problem, space)
        mx = result.history.series("max_fitness")
        assert (np.diff(mx) >= -1e-12).all()

    def test_deterministic(self, toy_problem, space):
        a = _run(toy_problem, space, seed=4)
        b = _run(toy_problem, space, seed=4)
        assert np.array_equal(a.best.genome, b.best.genome)

    def test_best_strategy_runs(self, toy_problem, space):
        result = _run(toy_problem, space, strategy="best/1/bin")
        assert result.best.fitness > 0.75

    def test_population_stays_in_box(self, toy_problem, space):
        result = _run(toy_problem, space, differential_weight=1.9)
        for ind in result.population:
            space.validate(ind.genome)

    def test_evaluation_count(self, toy_problem, space):
        result = _run(toy_problem, space)
        assert result.evaluations == 20 + 10 * 20

    def test_threshold_stops_early(self, toy_problem, space):
        term = Termination(max_generations=60, fitness_threshold=0.5)
        result = _run(toy_problem, space, term=term)
        assert "threshold" in result.stop_reason

    def test_initial_population(self, toy_problem, space):
        pop = [Individual(genome=g) for g in space.sample(20, 77)]
        result = DifferentialEvolution(DEConfig(population_size=20)).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=2),
            rng=0,
            initial_population=pop,
        )
        assert len(result.history) == 2

    def test_wrong_initial_size_raises(self, toy_problem, space):
        with pytest.raises(EvolutionError):
            DifferentialEvolution(DEConfig(population_size=20)).run(
                SerialEvaluator(toy_problem),
                space,
                TERM,
                initial_population=[Individual(genome=space.sample(1, 0)[0])],
            )

    def test_observer_called(self, toy_problem, space):
        seen = []
        DifferentialEvolution(DEConfig(population_size=8)).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=2),
            rng=0,
            observer=lambda gen, pop: seen.append(gen),
        )
        assert seen == [1, 2]

    def test_de_converges_harder_than_ns(self, toy_problem, space):
        """§II-B: DE is the most convergence-prone engine in the lineage."""
        from repro.ea.nsga import NoveltyGA, NoveltyGAConfig

        term = Termination(max_generations=15)
        de = _run(toy_problem, space, seed=2, term=term)
        ns = NoveltyGA(
            NoveltyGAConfig(population_size=20, k_neighbors=5)
        ).run(SerialEvaluator(toy_problem), space, term, rng=2)
        assert (
            de.history.records[-1].genotypic_diversity
            < ns.history.records[-1].genotypic_diversity
        )
