"""Tests for the Algorithm 1 line 6 stopping conditions."""

from __future__ import annotations

import pytest

from repro.ea.termination import Termination
from repro.errors import EvolutionError


class TestShouldContinue:
    def test_runs_until_generation_budget(self):
        t = Termination(max_generations=5)
        assert t.should_continue(0, 0.0)
        assert t.should_continue(4, 0.5)
        assert not t.should_continue(5, 0.5)
        assert not t.should_continue(6, 0.5)

    def test_stops_at_fitness_threshold(self):
        t = Termination(max_generations=100, fitness_threshold=0.8)
        assert t.should_continue(1, 0.79)
        assert not t.should_continue(1, 0.8)
        assert not t.should_continue(1, 0.95)

    def test_line6_is_conjunction(self):
        # "while generations < maxGen AND maxFitness < fThreshold"
        t = Termination(max_generations=3, fitness_threshold=0.5)
        assert not t.should_continue(3, 0.1)  # budget
        assert not t.should_continue(1, 0.9)  # threshold
        assert t.should_continue(2, 0.4)


class TestValidation:
    @pytest.mark.parametrize("gens", [0, -1])
    def test_bad_generations_raise(self, gens):
        with pytest.raises(EvolutionError):
            Termination(max_generations=gens)

    @pytest.mark.parametrize("thr", [0.0, -0.5, 1.5])
    def test_bad_threshold_raises(self, thr):
        with pytest.raises(EvolutionError):
            Termination(max_generations=5, fitness_threshold=thr)

    def test_threshold_one_allowed(self):
        Termination(max_generations=5, fitness_threshold=1.0)


class TestReason:
    def test_budget_reason(self):
        t = Termination(max_generations=3)
        assert "budget" in t.reason(3, 0.2)

    def test_threshold_reason(self):
        t = Termination(max_generations=10, fitness_threshold=0.5)
        assert "threshold" in t.reason(2, 0.6)

    def test_running_reason(self):
        t = Termination(max_generations=10)
        assert t.reason(2, 0.2) == "still running"
