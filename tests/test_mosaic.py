"""Tests for the random fuel-mosaic terrain generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.mosaic import random_fuel_mosaic


class TestMosaic:
    def test_basic_generation(self):
        t = random_fuel_mosaic(30, 40, n_patches=6, rng=0)
        assert t.shape == (30, 40)
        assert t.fuel is not None
        assert (t.fuel > 0).all()  # every cell got a model

    def test_deterministic(self):
        a = random_fuel_mosaic(20, 20, rng=7)
        b = random_fuel_mosaic(20, 20, rng=7)
        assert np.array_equal(a.fuel, b.fuel)

    def test_different_seeds_differ(self):
        a = random_fuel_mosaic(20, 20, rng=1)
        b = random_fuel_mosaic(20, 20, rng=2)
        assert not np.array_equal(a.fuel, b.fuel)

    def test_palette_respected(self):
        t = random_fuel_mosaic(
            25, 25, n_patches=8, palette=((3, 1.0), (7, 1.0)), rng=3
        )
        assert set(np.unique(t.fuel)) <= {3, 7}

    def test_single_patch_uniform(self):
        t = random_fuel_mosaic(15, 15, n_patches=1, palette=((5, 1.0),), rng=0)
        assert (t.fuel == 5).all()

    def test_patches_are_contiguous_regions(self):
        # Every patch grows from one seed, so each fuel code's region
        # count is bounded by the number of seeds with that code.
        t = random_fuel_mosaic(30, 30, n_patches=5, rng=4)
        codes = np.unique(t.fuel)
        assert 1 <= len(codes) <= 5

    def test_unburnable_pockets(self):
        t = random_fuel_mosaic(30, 30, unburnable_fraction=0.1, rng=5)
        frac = t.blocked_mask().mean()
        assert 0.05 < frac < 0.35  # pockets overshoot a little by design

    def test_hilly_fields(self):
        t = random_fuel_mosaic(25, 25, hilly=True, max_slope=20.0, rng=6)
        assert t.slope is not None and t.aspect is not None
        assert t.slope.max() == pytest.approx(20.0)
        assert t.slope.min() >= 0.0
        assert ((t.aspect >= 0) & (t.aspect < 360)).all()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_patches": 0},
            {"unburnable_fraction": 0.6},
            {"unburnable_fraction": -0.1},
            {"palette": ()},
            {"palette": ((1, 0.0),)},
        ],
    )
    def test_invalid_params_raise(self, kwargs):
        with pytest.raises(WorkloadError):
            random_fuel_mosaic(20, 20, rng=0, **kwargs)

    def test_simulates_end_to_end(self, scenario):
        """A mosaic terrain must be a valid simulator substrate."""
        from repro.firelib.simulator import FireSimulator

        t = random_fuel_mosaic(25, 25, n_patches=5, hilly=True, rng=8)
        sim = FireSimulator(t)
        res = sim.simulate(scenario, [(12, 12)], horizon=40.0)
        assert res.burned().sum() >= 1
