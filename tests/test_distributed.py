"""Tests for the distributed execution subsystem.

Covers the wire protocol (framing, EOF, oversize rejection, the HMAC
challenge-response handshake), the shard assignment rules (never an
empty shard), executor validation, the cell-leasing unit ledger
(split-on-demand stealing, stale-lease requeue of exact cell subsets),
and the acceptance properties of the subsystem: all executors — inline,
process shards, and TCP fleets of every size — produce bitwise-identical
sorted store records for the same plan and seeds (in the shared
``parity_view``: wall-clock and session-reuse accounting excluded,
nothing else may differ, at *any* unit granularity), a one-group plan
spreads over a whole fleet via work stealing, resume crosses unit
granularities in both directions, and a fleet run with a worker killed
mid-run completes after lease-timeout requeue with zero lost or
duplicated cells.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading

import pytest

from repro.distributed import (
    FleetAuthError,
    FleetError,
    FleetExecutor,
    InlineExecutor,
    ProcessShardExecutor,
    UnitLedger,
    parse_address,
    pending_group_indices,
    run_worker,
    shard_assignments,
)
from repro.distributed.protocol import (
    MAX_MESSAGE_BYTES,
    recv_message,
    request,
    send_message,
)
from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
    UnitCostModel,
    WorkSet,
    WorkUnit,
    record_key,
)
from repro.experiments.store import HAS_APPEND_LOCK, parity_view

needs_fork = pytest.mark.skipif(
    not HAS_APPEND_LOCK
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs POSIX store locking and fork-start processes",
)

_FORK = (
    multiprocessing.get_context("fork")
    if "fork" in multiprocessing.get_all_start_methods()
    else multiprocessing
)


def _plan(**overrides) -> ExperimentPlan:
    """Two (case, backend) groups, two systems, one seed: 4 cells."""
    values = dict(
        name="fleet-test",
        systems=("ess", "ess-ns"),
        cases=(
            CaseSpec("grassland", size=20, steps=2),
            CaseSpec("river_gap", size=20, steps=2),
        ),
        seeds=(0,),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=8, generations=2, session_cache_size=2048
        ),
    )
    values.update(overrides)
    return ExperimentPlan(**values)


def _one_group_plan(n_seeds: int = 8) -> ExperimentPlan:
    """One case × two systems × many seeds: the few-big-groups shape
    that needs within-group stealing to occupy a fleet."""
    return _plan(
        cases=(CaseSpec("grassland", size=20, steps=2),),
        seeds=tuple(range(n_seeds)),
    )


def _sorted_normalized(store: ResultsStore) -> list[dict]:
    """Sorted records in the shared scheduling-free parity view."""
    return [
        parity_view(r) for r in sorted(store.records(), key=record_key)
    ]


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_message_roundtrip(self):
        a, b = socket.socketpair()
        try:
            payload = {"type": "lease", "worker": "w1", "n": 3, "x": [1, 2]}
            send_message(a, payload)
            send_message(a, {"type": "wait"})
            assert recv_message(b) == payload
            assert recv_message(b) == {"type": "wait"}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_truncated_message_raises(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "lease", "worker": "w"})
            a.close()
            # eat two bytes so the reader sees a torn header
            b.recv(2)
            with pytest.raises(FleetError, match="mid-message"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_MESSAGE_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(FleetError, match="oversized"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("localhost:7341") == ("localhost", 7341)
        assert parse_address(("10.0.0.1", 80)) == ("10.0.0.1", 80)
        with pytest.raises(FleetError):
            parse_address("no-port")
        with pytest.raises(FleetError):
            parse_address("host:not-a-number")


# ----------------------------------------------------------------------
# Shard assignment (the empty-shard fix)
# ----------------------------------------------------------------------
class TestShardAssignments:
    @pytest.mark.parametrize("n_pending", [1, 2, 3, 7])
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 16])
    def test_never_empty_covers_all_disjoint(self, n_pending, shards):
        pending = list(range(100, 100 + n_pending))
        assignments = shard_assignments(pending, shards)
        assert all(assignments), "no shard may be spawned empty"
        assert len(assignments) == min(shards, n_pending)
        flat = [i for a in assignments for i in a]
        assert sorted(flat) == sorted(pending)

    def test_invalid_shards_raise(self):
        with pytest.raises(ReproError):
            shard_assignments([1], 0)

    @needs_fork
    def test_more_shards_than_groups_runs_clean(self, tmp_path):
        """Regression: shards > pending groups must skip the surplus
        shard processes instead of spawning idle (or failing) ones."""
        plan = _plan()
        store = ResultsStore(tmp_path / "r.jsonl")
        result = ExperimentRunner(store=store).run(plan, shards=5)
        assert len(result.records) == plan.n_runs
        assert {record_key(r) for r in result.records} == {
            k.as_tuple() for k in plan.runs()
        }


# ----------------------------------------------------------------------
# Executor seam
# ----------------------------------------------------------------------
class TestExecutorSeam:
    def test_pending_group_indices(self, tmp_path):
        plan = _plan()
        assert pending_group_indices(plan, set()) == [0, 1]
        (_, keys0), _ = plan.groups()
        done = {k.as_tuple() for k in keys0}
        assert pending_group_indices(plan, done) == [1]

    def test_shards_and_executor_are_exclusive(self):
        with pytest.raises(ReproError, match="not both"):
            ExperimentRunner().run(
                _plan(), shards=2, executor=InlineExecutor()
            )

    @pytest.mark.parametrize(
        "executor",
        [ProcessShardExecutor(2), FleetExecutor(lease_timeout=5)],
        ids=["process", "fleet"],
    )
    def test_multiprocess_executors_need_a_store(self, executor):
        with pytest.raises(ReproError, match="ResultsStore"):
            ExperimentRunner().run(_plan(), executor=executor)

    def test_fleet_with_nothing_pending_serves_no_socket(self, tmp_path):
        """A fully recorded plan must resume without ever binding."""
        plan = _plan(cases=(CaseSpec("grassland", size=20, steps=2),))
        store = ResultsStore(tmp_path / "r.jsonl")
        ExperimentRunner(store=store).run(plan)
        executor = FleetExecutor(timeout=5.0)
        result = ExperimentRunner(store=store).run(plan, executor=executor)
        assert executor.address is None  # never bound
        assert result.n_resumed == plan.n_runs


# ----------------------------------------------------------------------
# Lease ledger (no sockets: fake clock, fake store coverage)
# ----------------------------------------------------------------------
class TestUnitLedger:
    def _ledger(self, covered: set, clock: list, min_unit_cells: int = 0):
        return UnitLedger(
            WorkSet.compile(_plan(), set()),
            lease_timeout=5.0,
            completed_cells=lambda: set(covered),
            clock=lambda: clock[0],
            min_unit_cells=min_unit_cells,
        )

    def test_poll_completion_detects_coverage_without_a_request(self):
        """Regression: the last worker draining everything and then
        dying must not hang the run — completion is visible from the
        coordinator side via poll_completion."""
        plan = _plan()
        covered: set = set()
        clock = [0.0]
        ledger = self._ledger(covered, clock)
        g1 = ledger.lease("w")
        g2 = ledger.lease("w")
        assert g1["type"] == g2["type"] == "unit"
        assert ledger.complete("w", g1["lease"]) == {"type": "ok"}
        assert ledger.complete("w", g2["lease"]) == {"type": "ok"}
        covered |= {k.as_tuple() for k in plan.runs()}
        ledger.drained("w")  # ...then the worker dies silently
        assert not ledger.finished.is_set()
        assert ledger.poll_completion()
        assert ledger.finished.is_set()

    def test_poll_completion_requeues_stranded_cells(self):
        """A worker that completed units but died before draining
        leaves missing cells; polling requeues them as units."""
        covered: set = set()
        clock = [0.0]
        ledger = self._ledger(covered, clock)
        g1 = ledger.lease("w")
        g2 = ledger.lease("w")
        ledger.complete("w", g1["lease"])
        ledger.complete("w", g2["lease"])
        # worker recently seen and undrained: no verdict yet
        assert not ledger.poll_completion()
        clock[0] = 10.0  # past the lease timeout — presumed dead
        assert not ledger.poll_completion()
        assert ledger.requeues == 2
        # the requeued units go to whoever asks next
        assert ledger.lease("w2")["type"] == "unit"

    def test_expired_lease_requeues_unit(self):
        covered: set = set()
        clock = [0.0]
        ledger = self._ledger(covered, clock)
        grant = ledger.lease("w")
        ledger_grant2 = ledger.lease("other")  # second group
        assert ledger_grant2["type"] == "unit"
        clock[0] = 3.0
        assert ledger.heartbeat("w", grant["lease"]) == {"type": "ok"}
        clock[0] = 7.0  # renewed at 3.0, deadline 8.0: still alive
        assert ledger.heartbeat("w", grant["lease"]) == {"type": "ok"}
        clock[0] = 20.0
        assert ledger.heartbeat("w", grant["lease"]) == {"type": "expired"}
        assert ledger.complete("w", grant["lease"]) == {"type": "stale"}
        # both silent workers' units requeued, each the exact original
        # cell subset — re-leased to whoever asks next
        regrants = [ledger.lease("other"), ledger.lease("other")]
        assert all(r["type"] == "unit" for r in regrants)
        assert {tuple(map(tuple, r["unit"]["cells"])) for r in regrants} == {
            tuple(map(tuple, g["unit"]["cells"]))
            for g in (grant, ledger_grant2)
        }

    def test_last_pending_unit_splits_for_an_asking_worker(self):
        """Work stealing: one big group spreads over every asker by
        halving the last pending unit down to the min_unit_cells floor."""
        plan = _one_group_plan(n_seeds=4)  # 8 cells, one group
        clock = [0.0]
        ledger = UnitLedger(
            WorkSet.compile(plan, set()),
            lease_timeout=5.0,
            completed_cells=set,
            clock=lambda: clock[0],
            min_unit_cells=1,
        )
        sizes = []
        grants = []
        for worker in ("w1", "w2", "w3", "w4"):
            grant = ledger.lease(worker)
            assert grant["type"] == "unit"
            grants.append(grant)
            sizes.append(len(grant["unit"]["cells"]))
        # every asker got work from the single group: 4, 2, 1, 1
        assert sizes == [4, 2, 1, 1]
        assert ledger.steals == 3
        # the four leases tile the group exactly — no loss, no overlap
        cells = [tuple(c) for g in grants for c in g["unit"]["cells"]]
        assert sorted(cells) == sorted(k.as_tuple() for k in plan.runs())
        assert len(set(cells)) == len(cells)
        # everything is leased: a further asker waits
        assert ledger.lease("w5") == {"type": "wait"}

    def test_min_unit_cells_zero_keeps_whole_group_leases(self):
        plan = _one_group_plan(n_seeds=4)
        ledger = UnitLedger(
            WorkSet.compile(plan, set()),
            lease_timeout=5.0,
            completed_cells=set,
            min_unit_cells=0,
        )
        grant = ledger.lease("w1")
        assert len(grant["unit"]["cells"]) == plan.n_runs
        assert ledger.steals == 0
        assert ledger.lease("w2") == {"type": "wait"}

    def test_stale_lease_of_half_recorded_unit_requeues_missing_only(self):
        """A worker that recorded half a unit and then died: the lease
        expires and requeues the whole cell subset (the new worker's
        store-resume skips nothing here — its store is its own), while
        the end-of-run coverage check requeues exactly the cells whose
        records never arrived. Nothing is lost, nothing doubled."""
        plan = _one_group_plan(n_seeds=4)
        all_cells = [k.as_tuple() for k in plan.runs()]
        covered: set = set()
        clock = [0.0]
        ledger = UnitLedger(
            WorkSet.compile(plan, set()),
            lease_timeout=5.0,
            completed_cells=lambda: set(covered),
            clock=lambda: clock[0],
            min_unit_cells=0,
        )
        grant = ledger.lease("w1")
        # w1 drains half the unit's records, then goes silent
        covered |= set(map(tuple, grant["unit"]["cells"][:4]))
        clock[0] = 20.0
        regrant = ledger.lease("w2")
        assert regrant["type"] == "unit"
        assert ledger.requeues == 1
        assert regrant["unit"] == grant["unit"]  # exact cell subset
        # w2 completes and drains only the cells w1 never delivered
        assert ledger.complete("w2", regrant["lease"]) == {"type": "ok"}
        covered |= set(map(tuple, regrant["unit"]["cells"]))
        ledger.drained("w2")
        assert sorted(covered) == sorted(all_cells)
        assert ledger.poll_completion()


# ----------------------------------------------------------------------
# Fleet workers (loopback, separate processes)
# ----------------------------------------------------------------------
def _worker(address, store_path, worker_id):
    run_worker(address, store_path=store_path, worker_id=worker_id)


def _worker_dying_mid_group(address, store_path):
    """Exits hard after its first recorded run — mid-lease death."""
    run_worker(
        address,
        store_path=store_path,
        worker_id="dier-mid-group",
        on_record=lambda record: os._exit(17),
    )


def _worker_dying_after_complete(address, store_path):
    """Exits hard after reporting a group complete but before the
    coordinator drains its records — the stranded-records death."""
    run_worker(
        address,
        store_path=store_path,
        worker_id="dier-after-complete",
        after_complete=lambda index: os._exit(18),
    )


@pytest.fixture(scope="module")
def inline_store(tmp_path_factory):
    """The single-process ground truth every executor must reproduce."""
    store = ResultsStore(
        tmp_path_factory.mktemp("inline") / "inline.jsonl"
    )
    ExperimentRunner(store=store).run(_plan())
    return store


def _run_fleet(
    plan,
    store,
    tmp_path,
    targets,
    lease_timeout,
    timeout=180.0,
    scheduling="cost",
):
    """Run a fleet of worker processes against a loopback coordinator."""
    procs: list = []

    def on_bound(address):
        for i, target in enumerate(targets):
            proc = _FORK.Process(
                target=target,
                args=(address, str(tmp_path / f"worker{i}.jsonl")),
            )
            proc.start()
            procs.append(proc)

    executor = FleetExecutor(
        lease_timeout=lease_timeout,
        poll_interval=0.05,
        timeout=timeout,
        scheduling=scheduling,
        on_bound=on_bound,
    )
    try:
        result = ExperimentRunner(store=store).run(plan, executor=executor)
    finally:
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - only on test failure
                proc.kill()
    return result, executor, procs


@needs_fork
class TestExecutorParity:
    def test_all_executors_bitwise_identical(self, inline_store, tmp_path):
        """Acceptance: inline, process shards and a loopback two-worker
        fleet yield bitwise-identical sorted store records (wall-clock
        timing fields excluded — nothing else may differ)."""
        plan = _plan()
        expected_keys = sorted(k.as_tuple() for k in plan.runs())
        reference = _sorted_normalized(inline_store)
        assert [
            record_key(r) for r in sorted(
                inline_store.records(), key=record_key
            )
        ] == expected_keys

        process_store = ResultsStore(tmp_path / "process.jsonl")
        ExperimentRunner(store=process_store).run(
            plan, executor=ProcessShardExecutor(2)
        )
        assert _sorted_normalized(process_store) == reference

        fleet_store = ResultsStore(tmp_path / "fleet.jsonl")
        result, executor, procs = _run_fleet(
            plan,
            fleet_store,
            tmp_path,
            targets=[
                lambda addr, path: _worker(addr, path, "w0"),
                lambda addr, path: _worker(addr, path, "w1"),
            ],
            lease_timeout=15.0,
        )
        assert [p.exitcode for p in procs] == [0, 0]
        assert len(result.records) == plan.n_runs
        assert _sorted_normalized(fleet_store) == reference
        # runner-level view follows plan order, like every executor
        assert [record_key(r) for r in result.records] == [
            k.as_tuple() for k in plan.runs()
        ]

    def test_fleet_resumes_partial_store(self, inline_store, tmp_path):
        """A store written by ANY executor resumes under the fleet:
        resume is the store's key contract, not an executor feature."""
        plan = _plan()
        store = ResultsStore(tmp_path / "resume.jsonl")
        (_, keys0), _ = plan.groups()
        done_inline = {k.as_tuple() for k in keys0}
        # seed the store with group 0 via the inline path
        for record in inline_store.records():
            if record_key(record) in done_inline:
                store.append(record)
        result, executor, procs = _run_fleet(
            plan,
            store,
            tmp_path,
            targets=[lambda addr, path: _worker(addr, path, "w0")],
            lease_timeout=15.0,
        )
        assert result.n_resumed == len(done_inline)
        assert _sorted_normalized(store) == _sorted_normalized(inline_store)


@needs_fork
class TestFleetFailureRecovery:
    @pytest.mark.parametrize("scheduling", ["cost", "halving"])
    @pytest.mark.parametrize(
        "dier",
        [_worker_dying_mid_group, _worker_dying_after_complete],
        ids=["killed-mid-group", "killed-after-complete-undrained"],
    )
    def test_killed_worker_requeues_and_completes(
        self, dier, scheduling, inline_store, tmp_path
    ):
        """Acceptance: a fleet run with one worker killed mid-run
        completes after lease-timeout requeue with zero lost or
        duplicated (system, case, seed, backend) cells — under both
        scheduling policies (under cost/piggyback the after-complete
        death is lossless for the *reported* unit, but the dier also
        abandons its piggybacked next lease, which must requeue)."""
        plan = _plan()
        store = ResultsStore(tmp_path / "fleet.jsonl")
        result, executor, procs = _run_fleet(
            plan,
            store,
            tmp_path,
            targets=[
                dier,
                lambda addr, path: _worker(addr, path, "survivor"),
            ],
            lease_timeout=2.0,
            scheduling=scheduling,
        )
        assert executor.requeues >= 1
        exit_codes = sorted(p.exitcode for p in procs)
        assert exit_codes[0] == 0 and exit_codes[1] in (17, 18)
        records = sorted(store.records(), key=record_key)
        # zero lost, zero duplicated cells
        assert [record_key(r) for r in records] == sorted(
            k.as_tuple() for k in plan.runs()
        )
        # and the re-run groups match the inline ground truth bitwise
        assert _sorted_normalized(store) == _sorted_normalized(inline_store)
        assert len(result.records) == plan.n_runs

    def test_timeout_without_workers_raises(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        executor = FleetExecutor(
            lease_timeout=1.0, poll_interval=0.05, timeout=0.3
        )
        with pytest.raises(FleetError, match="timed out"):
            ExperimentRunner(store=store).run(_plan(), executor=executor)


# ----------------------------------------------------------------------
# Worker against an in-thread coordinator (no subprocess): CLI-free
# round-trip of the welcome payload, including per-system budgets.
# ----------------------------------------------------------------------
class TestWorkerInThread:
    def test_worker_receives_plan_and_budgets_over_the_wire(self, tmp_path):
        plan = _plan(
            cases=(CaseSpec("grassland", size=20, steps=2),),
            budgets={"ess-ns": {"generations": 3}},
        )
        store = ResultsStore(tmp_path / "coord.jsonl")
        summary_box: dict = {}

        def worker(address):
            summary_box.update(
                run_worker(
                    address,
                    store_path=tmp_path / "worker.jsonl",
                    worker_id="in-thread",
                )
            )

        threads: list[threading.Thread] = []

        def on_bound(address):
            thread = threading.Thread(target=worker, args=(address,))
            thread.start()
            threads.append(thread)

        executor = FleetExecutor(
            lease_timeout=10.0,
            poll_interval=0.05,
            timeout=120.0,
            on_bound=on_bound,
        )
        result = ExperimentRunner(store=store).run(plan, executor=executor)
        for thread in threads:
            thread.join(timeout=60)
        # the single 2-cell group split for the lone worker's first ask
        # (work stealing has no victim here, just smaller leases)
        assert summary_box["units"] == 2
        assert summary_box["records"] == plan.n_runs
        assert len(result.records) == plan.n_runs
        # the overridden budget really reached the worker: ess-ns ran
        # one generation more than ess under the same plan
        runs = {r["system"]: r["run"] for r in result.records}
        assert runs["ess-ns"]["steps"][0]["engine"]["evaluations"] > (
            runs["ess"]["steps"][0]["engine"]["evaluations"]
        )


def _run_thread_fleet(
    plan,
    coord_store,
    worker_stores,
    timeout=120.0,
    lease_timeout=10.0,
    min_unit_cells=1,
    auth_token=None,
    worker_tokens=None,
    scheduling="cost",
    worker_throttles=None,
):
    """In-thread fleet: N run_worker threads against a loopback
    coordinator; returns (result, executor, summaries, errors)."""
    threads: list[threading.Thread] = []
    summaries: list[dict] = []
    errors: list[Exception] = []
    tokens = worker_tokens or {}
    throttles = worker_throttles or {}

    def worker(address, index, store_path):
        try:
            summaries.append(
                run_worker(
                    address,
                    store_path=store_path,
                    worker_id=f"thread-w{index}",
                    auth_token=tokens.get(index, auth_token),
                    throttle=throttles.get(index),
                )
            )
        except Exception as exc:  # surfaced to the test thread
            errors.append(exc)

    def on_bound(address):
        for index, store_path in enumerate(worker_stores):
            thread = threading.Thread(
                target=worker, args=(address, index, store_path)
            )
            thread.start()
            threads.append(thread)

    executor = FleetExecutor(
        lease_timeout=lease_timeout,
        poll_interval=0.05,
        timeout=timeout,
        min_unit_cells=min_unit_cells,
        scheduling=scheduling,
        auth_token=auth_token,
        on_bound=on_bound,
    )
    try:
        result = ExperimentRunner(store=coord_store).run(
            plan, executor=executor
        )
    finally:
        for thread in threads:
            thread.join(timeout=60)
    return result, executor, summaries, errors


class TestCellLeasing:
    """Acceptance: cell-level leases spread one group over a fleet."""

    def test_one_group_plan_occupies_every_worker(self, tmp_path):
        """1 case × 2 systems × 8 seeds with 4 workers: every worker
        completes at least one unit (work stealing found them work in a
        single-group plan) and the merged store is bitwise-identical to
        the inline executor in the shared parity view."""
        plan = _one_group_plan(n_seeds=8)
        inline = ResultsStore(tmp_path / "inline.jsonl")
        ExperimentRunner(store=inline).run(
            plan, executor=InlineExecutor()
        )
        store = ResultsStore(tmp_path / "fleet.jsonl")
        result, executor, summaries, errors = _run_thread_fleet(
            plan,
            store,
            [tmp_path / f"w{i}.jsonl" for i in range(4)],
        )
        assert errors == []
        assert len(summaries) == 4
        assert all(s["units"] >= 1 for s in summaries), summaries
        assert sum(s["records"] for s in summaries) == plan.n_runs
        assert executor.steals >= 3  # 16 cells halved across 4 askers
        assert len(result.records) == plan.n_runs
        assert _sorted_normalized(store) == _sorted_normalized(inline)

    def test_forced_mid_group_steal_is_bitwise_clean(self, tmp_path):
        """A second worker stealing cells mid-group changes which
        session computes them — and not a byte of the records."""
        plan = _one_group_plan(n_seeds=2)  # 4 cells, one group
        inline = ResultsStore(tmp_path / "inline.jsonl")
        ExperimentRunner(store=inline).run(plan)
        store = ResultsStore(tmp_path / "fleet.jsonl")
        result, executor, summaries, errors = _run_thread_fleet(
            plan, store, [tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"]
        )
        assert errors == []
        # the first ask always splits the lone pending unit: a steal
        assert executor.steals >= 1
        keys = [record_key(r) for r in store.records()]
        assert sorted(keys) == sorted(k.as_tuple() for k in plan.runs())
        assert len(set(keys)) == len(keys)
        assert _sorted_normalized(store) == _sorted_normalized(inline)


class TestMixedGranularityResume:
    """Resume is the store's cell contract at every unit granularity."""

    def test_group_recorded_store_resumes_under_cell_leases(
        self, inline_store, tmp_path
    ):
        """A store written by whole-group inline execution resumes
        under a cell-leasing fleet: only the missing cells run."""
        plan = _plan()
        store = ResultsStore(tmp_path / "resume.jsonl")
        (_, keys0), _ = plan.groups()
        done = {k.as_tuple() for k in keys0}
        for record in inline_store.records():
            if record_key(record) in done:
                store.append(record)
        result, executor, summaries, errors = _run_thread_fleet(
            plan, store, [tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"]
        )
        assert errors == []
        assert result.n_resumed == len(done)
        # the fleet computed exactly the other group's cells
        assert sum(s["records"] for s in summaries) == plan.n_runs - len(
            done
        )
        assert _sorted_normalized(store) == _sorted_normalized(inline_store)

    def test_cell_recorded_store_resumes_under_group_execution(
        self, inline_store, tmp_path
    ):
        """The inverse: a store holding scattered cell-leased records
        resumes under plain inline whole-group execution."""
        plan = _plan()
        store = ResultsStore(tmp_path / "resume.jsonl")
        runner = ExperimentRunner(store=store)
        # record two scattered single cells, as a cell-leased fleet
        # worker would: one unit per cell, mid-group granularity
        workset = WorkSet.compile(plan, set())
        for unit in workset.units:
            single = unit
            while single.n_cells > 1:
                single = single.split()[0]
            runner.run_units(plan, [single], set())
        assert len(store.records()) == 2
        result = ExperimentRunner(store=store).run(plan)
        assert result.n_resumed == 2
        assert len(result.records) == plan.n_runs
        assert _sorted_normalized(store) == _sorted_normalized(inline_store)


class TestFleetAuth:
    """Shared-secret HMAC challenge-response on the coordinator."""

    def test_authed_fleet_completes(self, tmp_path):
        plan = _one_group_plan(n_seeds=2)
        store = ResultsStore(tmp_path / "coord.jsonl")
        result, executor, summaries, errors = _run_thread_fleet(
            plan,
            store,
            [tmp_path / "w0.jsonl"],
            auth_token="fleet-secret",
        )
        assert errors == []
        assert len(result.records) == plan.n_runs

    def test_worker_without_token_is_rejected_before_plan_bytes(
        self, tmp_path
    ):
        plan = _one_group_plan(n_seeds=2)
        store = ResultsStore(tmp_path / "coord.jsonl")
        with pytest.raises(FleetError, match="timed out"):
            _run_thread_fleet(
                plan,
                store,
                [tmp_path / "w0.jsonl"],
                timeout=3.0,
                lease_timeout=1.0,
                auth_token="fleet-secret",
                worker_tokens={0: None},
            )
        assert store.records() == []  # nothing ever executed

    def test_wrong_token_raises_auth_error_without_retry_loop(
        self, tmp_path
    ):
        plan = _one_group_plan(n_seeds=2)
        store = ResultsStore(tmp_path / "coord.jsonl")
        errors: list[Exception] = []

        def on_bound(address):
            def w():
                try:
                    run_worker(
                        address,
                        store_path=tmp_path / "w.jsonl",
                        worker_id="intruder",
                        auth_token="WRONG",
                        max_failures=1000,  # an auth error must not retry
                    )
                except Exception as exc:
                    errors.append(exc)

            thread = threading.Thread(target=w)
            thread.start()

        executor = FleetExecutor(
            lease_timeout=1.0,
            poll_interval=0.05,
            timeout=3.0,
            auth_token="fleet-secret",
            on_bound=on_bound,
        )
        with pytest.raises(FleetError, match="timed out"):
            ExperimentRunner(store=store).run(plan, executor=executor)
        assert errors and isinstance(errors[0], FleetAuthError)

    def test_rogue_coordinator_never_receives_the_request(self):
        """Mutual auth: a listener that cannot prove token knowledge
        gets an auth-hello (a bare nonce) and nothing else — a worker's
        record upload can never leak to an impersonated coordinator."""
        received: list[dict] = []
        server = socket.create_server(("127.0.0.1", 0))
        address = server.getsockname()

        def rogue():
            conn, _ = server.accept()
            with conn:
                received.append(recv_message(conn))
                # no proof — just an inviting reply
                send_message(conn, {"type": "welcome", "plan": {}})

        thread = threading.Thread(target=rogue)
        thread.start()
        secret_payload = {"type": "records", "records": [{"secret": 1}]}
        try:
            with pytest.raises(FleetAuthError, match="did not prove"):
                request(address, secret_payload, token="fleet-secret")
        finally:
            thread.join(timeout=10)
            server.close()
        assert received == [
            {"type": "auth-hello", "nonce": received[0]["nonce"]}
        ]
        assert "records" not in str(received)

    def test_empty_token_is_rejected_not_silently_disabled(self, tmp_path):
        """REPRO_FLEET_TOKEN="" (the unpopulated-secret foot-gun) must
        fail fast everywhere instead of running the fleet open."""
        with pytest.raises(FleetError, match="non-empty"):
            FleetExecutor(auth_token="")
        with pytest.raises(FleetError, match="non-empty"):
            run_worker(("127.0.0.1", 1), auth_token="")
        with pytest.raises(FleetError, match="non-empty"):
            request(("127.0.0.1", 1), {"type": "hello"}, token="")

    def test_unauthenticated_probe_sees_only_a_challenge(self, tmp_path):
        """The welcome payload (the plan!) must never reach a peer that
        has not answered the challenge."""
        plan = _one_group_plan(n_seeds=2)
        store = ResultsStore(tmp_path / "coord.jsonl")
        probe_replies: list = []

        def on_bound(address):
            def probe():
                # a tokenless client: request() raises on the challenge
                try:
                    request(address, {"type": "hello", "worker": "spy"})
                except FleetAuthError as exc:
                    probe_replies.append(exc)

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(timeout=10)

        executor = FleetExecutor(
            lease_timeout=1.0,
            poll_interval=0.05,
            timeout=2.0,
            auth_token="fleet-secret",
            on_bound=on_bound,
        )
        with pytest.raises(FleetError, match="timed out"):
            ExperimentRunner(store=store).run(plan, executor=executor)
        assert probe_replies, "the probe must have been challenged"
        assert "auth token" in str(probe_replies[0])


class TestWorkerStoreHygiene:
    """A reused worker-local store is held to the store contracts."""

    def _run_in_thread_fleet(
        self, plan, coord_store, worker_store, timeout, worker_errors=None
    ):
        worker_errors = [] if worker_errors is None else worker_errors
        threads: list[threading.Thread] = []

        def worker(address):
            try:
                run_worker(
                    address, store_path=worker_store, worker_id="hygiene"
                )
            except Exception as exc:  # surfaced to the test thread
                worker_errors.append(exc)

        def on_bound(address):
            thread = threading.Thread(target=worker, args=(address,))
            thread.start()
            threads.append(thread)

        executor = FleetExecutor(
            lease_timeout=2.0,
            poll_interval=0.05,
            timeout=timeout,
            on_bound=on_bound,
        )
        try:
            result = ExperimentRunner(store=coord_store).run(
                plan, executor=executor
            )
        finally:
            for thread in threads:
                thread.join(timeout=30)
        return result, worker_errors

    def test_foreign_records_never_reach_the_coordinator(self, tmp_path):
        """Regression: a worker store holding cells of other plans must
        not pollute the coordinator's results artifact on drain."""
        plan = _plan(cases=(CaseSpec("grassland", size=20, steps=2),))
        worker_store = ResultsStore(tmp_path / "worker.jsonl")
        foreign = {
            "plan": "last-week",
            "system": "ess",
            "case": "grassland",
            "seed": 999,  # not one of the plan's cells
            "backend": "vectorized",
            "quality": 0.1,
            "evaluations": 1,
            "seconds": 0.1,
            "run": {"system": "ESS", "steps": [], "session": {}},
        }
        worker_store.append(foreign)
        coord_store = ResultsStore(tmp_path / "coord.jsonl")
        result, worker_errors = self._run_in_thread_fleet(
            plan, coord_store, worker_store.path, timeout=120.0
        )
        assert worker_errors == []
        assert len(result.records) == plan.n_runs
        assert {record_key(r) for r in coord_store.records()} == {
            k.as_tuple() for k in plan.runs()
        }

    def test_rebudgeted_worker_store_is_refused(self, tmp_path):
        """Regression: a worker resuming its local store applies the
        per-system config-digest check — a store recorded under another
        budget is refused instead of silently served."""
        plan_old = _plan(cases=(CaseSpec("grassland", size=20, steps=2),))
        worker_store = ResultsStore(tmp_path / "worker.jsonl")
        ExperimentRunner(store=worker_store).run(plan_old)
        rebudgeted = _plan(
            cases=(CaseSpec("grassland", size=20, steps=2),),
            budget=BudgetSpec(
                population=8, generations=3, session_cache_size=2048
            ),
        )
        coord_store = ResultsStore(tmp_path / "coord.jsonl")
        worker_errors: list[Exception] = []
        with pytest.raises(FleetError, match="timed out"):
            # the only worker refuses its store, so the fleet times out
            self._run_in_thread_fleet(
                rebudgeted,
                coord_store,
                worker_store.path,
                timeout=4.0,
                worker_errors=worker_errors,
            )
        assert worker_errors, "the worker must have refused its store"
        assert "different configuration" in str(worker_errors[0])


# ----------------------------------------------------------------------
# Fleet telemetry: per-worker utilization and the status snapshot
# ----------------------------------------------------------------------
class TestFleetTelemetry:
    def _ledger(self, clock: list, covered: set | None = None):
        covered = set() if covered is None else covered
        return UnitLedger(
            WorkSet.compile(_plan(), set()),
            lease_timeout=5.0,
            completed_cells=lambda: set(covered),
            clock=lambda: clock[0],
            min_unit_cells=0,
        )

    def test_worker_stats_utilization_math(self):
        """busy/idle split over the membership span, fed by the
        telemetry payloads workers attach to heartbeats/completes."""
        clock = [0.0]
        ledger = self._ledger(clock)
        grant = ledger.lease("w")  # first seen at t=0
        clock[0] = 2.0
        ledger.heartbeat("w", grant["lease"], {"busy_seconds": 1.5})
        clock[0] = 4.0
        ledger.complete(
            "w", grant["lease"], {"busy_seconds": 3.5, "records": 2}
        )
        st = ledger.worker_stats()["w"]
        assert st["leases"] == 1 and st["units"] == 1
        assert st["cells"] == 2 and st["records"] == 2
        assert st["busy_seconds"] == pytest.approx(3.5)
        assert st["span_seconds"] == pytest.approx(4.0)
        assert st["idle_seconds"] == pytest.approx(0.5)
        assert st["utilization"] == pytest.approx(3.5 / 4.0)
        assert st["lease_seconds"] == pytest.approx(4.0)
        assert st["live"] is True
        clock[0] = 30.0  # long silent: presumed dead
        assert ledger.worker_stats()["w"]["live"] is False

    def test_cumulative_busy_folds_with_max(self):
        """Late or duplicate reports carry *cumulative* busy time, so
        folding is a max — utilization can never be inflated by a
        heartbeat racing the complete report."""
        clock = [0.0]
        ledger = self._ledger(clock)
        grant = ledger.lease("w")
        clock[0] = 4.0
        ledger.heartbeat("w", grant["lease"], {"busy_seconds": 3.0})
        # a delayed, lower cumulative report arrives after
        ledger.heartbeat("w", grant["lease"], {"busy_seconds": 1.0})
        assert ledger.worker_stats()["w"]["busy_seconds"] == pytest.approx(
            3.0
        )
        # garbage telemetry is ignored, not fatal
        ledger.heartbeat("w", grant["lease"], {"busy_seconds": "soon"})
        ledger.heartbeat("w", grant["lease"], "not a dict")
        assert ledger.worker_stats()["w"]["busy_seconds"] == pytest.approx(
            3.0
        )

    def test_busy_clamped_to_membership_span(self):
        """A worker whose clock disagrees wildly cannot report more
        busy time than it was even a member for."""
        clock = [0.0]
        ledger = self._ledger(clock)
        grant = ledger.lease("w")
        clock[0] = 2.0
        ledger.heartbeat("w", grant["lease"], {"busy_seconds": 100.0})
        st = ledger.worker_stats()["w"]
        assert st["busy_seconds"] == pytest.approx(100.0)  # as reported
        assert st["idle_seconds"] == 0.0  # but never negative idle
        assert st["utilization"] == pytest.approx(1.0)  # clamped to span

    def _server(self, tmp_path, covered: set | None = None):
        from repro.distributed.coordinator import _CoordinatorServer

        plan = _plan()
        workset = WorkSet.compile(plan, set())
        ledger = UnitLedger(
            workset,
            lease_timeout=5.0,
            completed_cells=lambda: set(covered or set()),
        )
        store = ResultsStore(tmp_path / "coord.jsonl")
        return (
            _CoordinatorServer(
                ("127.0.0.1", 0),
                ledger=ledger,
                workset=workset,
                store=store,
                store_lock=threading.Lock(),
                share_sessions=True,
                poll_interval=0.05,
            ),
            plan,
            store,
        )

    def test_status_dispatch_is_read_only(self, tmp_path):
        """The status snapshot reports progress without registering the
        asker as a worker — probing a fleet must never extend its
        shutdown linger."""
        server, plan, store = self._server(tmp_path)
        try:
            ledger = server.ledger
            grant = ledger.lease("w1")
            ledger.complete("w1", grant["lease"], {"records": 2})
            reply = server.dispatch({"type": "status", "worker": "probe"})
            assert reply["type"] == "status"
            assert reply["plan"] == plan.name
            assert reply["expected_cells"] == plan.n_runs
            assert reply["recorded_cells"] == 0  # store still empty
            assert reply["finished"] is False
            assert reply["progress"]["workers"] == 1  # w1, not the probe
            assert set(reply["workers"]) == {"w1"}
            assert reply["workers"]["w1"]["units"] == 1
        finally:
            server.server_close()

    def test_status_counts_only_this_plans_recorded_cells(self, tmp_path):
        server, plan, store = self._server(tmp_path)
        try:
            record = {
                "system": "ess",
                "case": "grassland",
                "seed": 0,
                "backend": "vectorized",
                "run": {"steps": []},
            }
            store.append(record)
            store.append({**record, "case": "other-plan-case"})
            reply = server.dispatch({"type": "status"})
            assert reply["recorded_cells"] == 1
            assert reply["expected_cells"] == plan.n_runs
        finally:
            server.server_close()

    def test_status_cli_against_a_live_coordinator(self, tmp_path, capsys):
        """`repro experiments status` end to end over the real socket."""
        from repro.cli import main

        server, plan, _ = self._server(tmp_path)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            server.ledger.lease("w1")
            host, port = server.server_address[:2]
            assert (
                main(
                    ["experiments", "status", "--connect", f"{host}:{port}"]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert plan.name in out
            assert f"0/{plan.n_runs} cells recorded" in out
            assert "w1" in out
            # the probe itself never became a worker
            assert server.ledger.progress()["workers"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_status_cli_fails_cleanly_without_a_coordinator(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "experiments",
                    "status",
                    "--connect",
                    "127.0.0.1:1",
                    "--request-timeout",
                    "0.5",
                ]
            )

# ----------------------------------------------------------------------
# Cost-aware scheduling: the predictive grant path of the unit ledger
# ----------------------------------------------------------------------
class TestCostLedger:
    """Deterministic (fake-clock) coverage of the cost-mode grant path:
    probe-first sizing, throughput-proportional leases, piggybacked
    granting, fragment re-merge, and snapshot determinism."""

    def _ledger(
        self,
        covered: set,
        clock: list,
        plan=None,
        model: UnitCostModel | None = None,
        target_unit_seconds: float = 1.0,
    ):
        return UnitLedger(
            WorkSet.compile(plan or _one_group_plan(n_seeds=8), set()),
            lease_timeout=5.0,
            completed_cells=lambda: set(covered),
            clock=lambda: clock[0],
            min_unit_cells=1,
            cost_model=model or UnitCostModel(),
            target_unit_seconds=target_unit_seconds,
        )

    def test_unknown_worker_gets_a_probe_lease(self):
        """A worker with no measured throughput gets a small probe (a
        quarter of its fair share), not half of everything — sizing
        information before committing cells."""
        clock = [0.0]
        ledger = self._ledger(set(), clock)  # 16 cells, one group
        grant = ledger.lease("w1")
        assert grant["type"] == "unit"
        unit = WorkUnit.from_dict(grant["unit"])
        assert unit.n_cells == 4  # fair share 16, probe = 16 // 4

    def test_measured_throughput_sizes_leases_proportionally(self):
        """Once both workers have measured throughput, the faster one
        is granted strictly more cells per lease."""
        clock = [0.0]
        ledger = self._ledger(set(), clock)
        g1 = ledger.lease("w1")
        g2 = ledger.lease("w2")
        # identical wall-clock, 4x the cells: w1 measures 4x faster
        ledger.complete(
            "w1", g1["lease"], {"unit_seconds": 1.0}, drained=True
        )
        ledger.complete(
            "w2", g2["lease"], {"unit_seconds": 1.0}, drained=True
        )
        fast = WorkUnit.from_dict(ledger.lease("w1")["unit"])
        slow = WorkUnit.from_dict(ledger.lease("w2")["unit"])
        assert fast.n_cells > slow.n_cells >= 1
        stats = ledger.worker_stats()
        assert stats["w1"]["throughput"] == pytest.approx(4.0)
        assert stats["w2"]["throughput"] == pytest.approx(1.0)

    def test_piggybacked_complete_carries_the_next_lease(self):
        """complete(drained=True, grant_next=True) collapses
        complete -> drain -> lease into one exchange and the round-trip
        accounting shows it."""
        clock = [0.0]
        ledger = self._ledger(set(), clock)
        grant = ledger.lease("w1")
        reply = ledger.complete(
            "w1",
            grant["lease"],
            {"unit_seconds": 0.5},
            drained=True,
            grant_next=True,
        )
        assert reply["type"] == "ok"
        assert reply["next"]["type"] == "unit"
        st = ledger.worker_stats()["w1"]
        assert st["lease_requests"] == 1  # only the explicit ask
        assert st["piggybacked"] == 1
        assert st["completes"] == 1
        assert st["drains"] == 0  # the drain rode the complete
        assert st["round_trips"] == 2

    def test_stale_complete_still_grants_next(self):
        """A worker whose lease expired still wants work: ``next``
        rides the stale reply too."""
        clock = [0.0]
        ledger = self._ledger(set(), clock)
        grant = ledger.lease("w1")
        clock[0] = 20.0  # lease long dead
        reply = ledger.complete(
            "w1", grant["lease"], drained=True, grant_next=True
        )
        assert reply["type"] == "stale"
        assert reply["next"]["type"] == "unit"

    def test_requeued_fragments_remerge_before_regrant(self):
        """Expired sliver leases from the same group fuse back into one
        contiguous unit before the next grant carves it afresh —
        fragmentation does not compound across worker deaths."""
        clock = [0.0]
        ledger = self._ledger(set(), clock)
        a = ledger.lease("w1")
        b = ledger.lease("w2")
        assert a["type"] == b["type"] == "unit"
        clock[0] = 20.0  # both leases expire, fragments requeue
        grant = ledger.lease("w3")
        assert grant["type"] == "unit"
        assert ledger.requeues == 2
        # the two fragments and the remainder merged into one unit
        # before w3's probe was carved from it
        assert ledger.progress()["pending_units"] == 1

    def test_grants_deterministic_from_identical_snapshots(self):
        """Two ledgers seeded from the same serialized cost model and
        driven through the same call sequence make identical grant
        decisions — cell for cell."""
        source = UnitCostModel()
        source.observe("grassland:vectorized", 4, 2.0)
        payload = source.to_dict()
        transcripts = []
        for _ in range(2):
            clock = [0.0]
            ledger = self._ledger(
                set(), clock, model=UnitCostModel.from_dict(payload)
            )
            grants = []
            g1 = ledger.lease("w1")
            grants.append(g1["unit"])
            g2 = ledger.lease("w2")
            grants.append(g2["unit"])
            ledger.complete(
                "w1", g1["lease"], {"unit_seconds": 0.5}, drained=True
            )
            reply = ledger.complete(
                "w2",
                g2["lease"],
                {"unit_seconds": 2.0},
                drained=True,
                grant_next=True,
            )
            grants.append(reply["next"]["unit"])
            grants.append(ledger.lease("w1")["unit"])
            transcripts.append(grants)
        assert transcripts[0] == transcripts[1]

    def test_target_unit_seconds_must_be_positive(self):
        with pytest.raises(FleetError, match="target_unit_seconds"):
            self._ledger(set(), [0.0], target_unit_seconds=0.0)
        with pytest.raises(FleetError, match="scheduling"):
            FleetExecutor(scheduling="bogus")
        with pytest.raises(ReproError, match="scheduling"):
            ProcessShardExecutor(2, scheduling="bogus")


class TestCostFleetEndToEnd:
    """Thread fleets under the default cost scheduling: piggybacked
    round-trips happen, legacy halving still works, and a throttled
    worker receives proportionally fewer cells — all bitwise-clean."""

    def test_cost_fleet_piggybacks_and_matches_inline(self, tmp_path):
        plan = _one_group_plan(n_seeds=8)
        inline = ResultsStore(tmp_path / "inline.jsonl")
        ExperimentRunner(store=inline).run(plan)
        store = ResultsStore(tmp_path / "fleet.jsonl")
        result, executor, summaries, errors = _run_thread_fleet(
            plan, store, [tmp_path / f"w{i}.jsonl" for i in range(2)]
        )
        assert errors == []
        stats = executor.worker_stats
        assert sum(s["piggybacked"] for s in stats.values()) >= 1
        # every completion was reported, none needed a separate drain
        # round-trip afterwards
        assert all(s["drains"] == 0 for s in stats.values()), stats
        assert all(s["round_trips"] >= 1 for s in stats.values())
        assert _sorted_normalized(store) == _sorted_normalized(inline)

    def test_halving_fleet_still_matches_inline(self, tmp_path):
        """scheduling="halving" keeps the PR 6 behaviour end to end:
        no piggybacking, explicit drains, identical records."""
        plan = _one_group_plan(n_seeds=4)
        inline = ResultsStore(tmp_path / "inline.jsonl")
        ExperimentRunner(store=inline).run(plan)
        store = ResultsStore(tmp_path / "fleet.jsonl")
        result, executor, summaries, errors = _run_thread_fleet(
            plan,
            store,
            [tmp_path / f"w{i}.jsonl" for i in range(2)],
            scheduling="halving",
        )
        assert errors == []
        stats = executor.worker_stats
        assert sum(s["piggybacked"] for s in stats.values()) == 0
        assert sum(s["drains"] for s in stats.values()) >= 1
        assert _sorted_normalized(store) == _sorted_normalized(inline)

    def test_heterogeneous_fleet_respects_capacity(self, tmp_path):
        """Acceptance: in a 3-worker fleet with one worker throttled to
        a fraction of the others' speed, capacity-aware sizing hands
        the slow worker proportionally fewer cells, every worker still
        completes at least one unit, and the merged store is
        bitwise-identical to the inline run."""
        plan = _one_group_plan(n_seeds=12)  # 24 cells, one group
        inline = ResultsStore(tmp_path / "inline.jsonl")
        ExperimentRunner(store=inline).run(plan)
        store = ResultsStore(tmp_path / "fleet.jsonl")
        result, executor, summaries, errors = _run_thread_fleet(
            plan,
            store,
            [tmp_path / f"w{i}.jsonl" for i in range(3)],
            worker_throttles={0: 0.5},  # +0.5 s per cell on worker 0
        )
        assert errors == []
        assert len(summaries) == 3
        assert all(s["units"] >= 1 for s in summaries), summaries
        stats = executor.worker_stats
        throttled = stats["thread-w0"]["cells"]
        others = [
            stats[w]["cells"] for w in stats if w != "thread-w0"
        ]
        assert throttled >= 1
        assert throttled < sum(others) / len(others), stats
        assert _sorted_normalized(store) == _sorted_normalized(inline)

    def test_worker_throttle_env_knob_is_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_THROTTLE", "soon")
        with pytest.raises(FleetError, match="REPRO_WORKER_THROTTLE"):
            run_worker(("127.0.0.1", 9))
        monkeypatch.delenv("REPRO_WORKER_THROTTLE")
        with pytest.raises(FleetError, match="throttle"):
            run_worker(("127.0.0.1", 9), throttle=-0.1)
