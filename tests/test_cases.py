"""Tests for the canonical benchmark cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.cases import (
    CASE_BUILDERS,
    dynamic_wind_case,
    grassland_case,
    heterogeneous_case,
    river_gap_case,
)


class TestRegistry:
    def test_four_cases(self):
        assert set(CASE_BUILDERS) == {
            "grassland",
            "heterogeneous",
            "dynamic_wind",
            "river_gap",
        }

    @pytest.mark.parametrize("name", sorted(CASE_BUILDERS))
    def test_every_case_builds_and_grows(self, name):
        fire = CASE_BUILDERS[name](size=36, n_steps=2)
        assert fire.n_steps == 2
        assert fire.terrain.shape == (36, 36)
        for step in (1, 2):
            assert fire.growth_cells(step) > 0
        assert fire.description


class TestCaseProperties:
    def test_grassland_homogeneous(self):
        fire = grassland_case(size=36, n_steps=2)
        assert fire.terrain.fuel is None
        assert fire.terrain.unburnable is None

    def test_heterogeneous_has_fuel_patches(self):
        fire = heterogeneous_case(size=36, n_steps=2)
        assert fire.terrain.fuel is not None
        assert len(np.unique(fire.terrain.fuel)) >= 2

    def test_dynamic_wind_changes_scenario(self):
        fire = dynamic_wind_case(size=36, n_steps=4)
        dirs = {s.wind_dir for s in fire.true_scenarios}
        assert dirs == {90.0, 180.0}
        # same scenario within each half
        assert fire.true_scenarios[0] == fire.true_scenarios[1]
        assert fire.true_scenarios[2] == fire.true_scenarios[3]

    def test_river_gap_blocks_most_of_column(self):
        fire = river_gap_case(size=36, n_steps=2)
        blocked = fire.terrain.blocked_mask()
        river_col = 18
        assert blocked[:, river_col].sum() == 35  # all but the ford

    def test_deterministic_construction(self):
        a = grassland_case(size=36, n_steps=2)
        b = grassland_case(size=36, n_steps=2)
        for ma, mb in zip(a.burned_masks, b.burned_masks):
            assert np.array_equal(ma, mb)
