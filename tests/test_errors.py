"""The exception hierarchy: every subsystem error is a ReproError."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ScenarioError,
    errors.TerrainError,
    errors.SimulationError,
    errors.FitnessError,
    errors.NoveltyError,
    errors.EvolutionError,
    errors.ParallelError,
    errors.CalibrationError,
    errors.WorkloadError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_subclass_of_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_catchable_as_repro_error(exc):
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_distinct_types():
    assert len(set(ALL_ERRORS)) == len(ALL_ERRORS)
