"""Shared fixtures for the test suite.

Everything is deliberately small (grids ≤ 36², few generations) so the
full suite runs in well under a minute; the benchmarks exercise
realistic sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import ParameterSpace, Scenario
from repro.grid.terrain import Terrain
from repro.systems.problem import PredictionStepProblem
from repro.workloads.synthetic import ReferenceFire, make_reference_fire


@pytest.fixture(scope="session")
def space() -> ParameterSpace:
    """The Table I parameter space."""
    return ParameterSpace()


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """A moderate, spreading scenario."""
    return Scenario(
        model=1,
        wind_speed=8.0,
        wind_dir=90.0,
        m1=6.0,
        m10=8.0,
        m100=10.0,
        mherb=60.0,
        slope=5.0,
        aspect=270.0,
    )


@pytest.fixture(scope="session")
def wet_scenario(scenario: Scenario) -> Scenario:
    """A scenario too wet to spread."""
    return scenario.replace(m1=60.0, m10=60.0, m100=60.0, mherb=300.0)


@pytest.fixture(scope="session")
def terrain() -> Terrain:
    """Small homogeneous terrain."""
    return Terrain.uniform(24, 24, cell_size=30.0)


@pytest.fixture(scope="session")
def small_fire(terrain: Terrain, scenario: Scenario) -> ReferenceFire:
    """A 3-step synthetic reference fire on the small terrain."""
    return make_reference_fire(
        terrain,
        scenario,
        ignition=[(12, 6)],
        n_steps=3,
        step_minutes=15.0,
        description="test fire",
    )


@pytest.fixture()
def step1_problem(small_fire: ReferenceFire) -> PredictionStepProblem:
    """The step-1 evaluation problem of the small fire."""
    return PredictionStepProblem(
        terrain=small_fire.terrain,
        start_burned=small_fire.start_mask(1),
        real_burned=small_fire.real_mask(1),
        horizon=small_fire.step_horizon(1),
    )


class ToyDistanceProblem:
    """Picklable toy problem: fitness = 1 − distance to a target genome."""

    def __init__(self, target: np.ndarray) -> None:
        self.target = np.asarray(target, dtype=np.float64)

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        space = ParameterSpace()
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        return 1.0 - np.asarray(
            [space.distance(g, self.target) for g in genomes]
        )


@pytest.fixture(scope="session")
def toy_problem() -> ToyDistanceProblem:
    """Session-wide toy problem with a fixed hidden target."""
    return ToyDistanceProblem(ParameterSpace().sample(1, 12345)[0])
