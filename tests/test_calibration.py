"""Tests for the Calibration Stage (SKign search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitness import jaccard_fitness
from repro.errors import CalibrationError
from repro.stages.calibration import search_kign
from repro.stages.statistical import ProbabilityMap, aggregate_burned_maps


def _brute_force_kign(pm, real, pre=None):
    """Reference implementation: threshold at every level explicitly."""
    best_k, best_f = None, -1.0
    levels = pm.levels()
    for t in levels[levels > 0]:
        predicted = pm.threshold(t)
        f = jaccard_fitness(real, predicted, pre_burned=pre)
        if f >= best_f:
            best_f, best_k = f, float(t)
    return best_k, best_f


class TestSearchKign:
    def test_recovers_exact_region(self):
        # Three maps, the middle region burned in 2/3: threshold 2/3
        # reproduces exactly the real map.
        real = np.zeros((5, 5), dtype=bool)
        real[1:4, 1:4] = True
        wide = np.ones((5, 5), dtype=bool)
        exact = real.copy()
        pm = aggregate_burned_maps(np.asarray([wide, exact, exact]))
        res = search_kign(pm, real)
        assert res.fitness == 1.0
        assert res.kign == pytest.approx(1.0)  # exact region has p=1

    def test_matches_brute_force(self):
        rng = np.random.default_rng(4)
        for trial in range(10):
            stack = rng.random((6, 8, 8)) > 0.5
            real = rng.random((8, 8)) > 0.5
            pm = aggregate_burned_maps(stack)
            res = search_kign(pm, real)
            bk, bf = _brute_force_kign(pm, real)
            assert res.fitness == pytest.approx(bf)
            assert res.kign == pytest.approx(bk)

    def test_matches_brute_force_with_preburn(self):
        rng = np.random.default_rng(5)
        stack = rng.random((5, 7, 7)) > 0.4
        pre = rng.random((7, 7)) > 0.8
        real = pre | (rng.random((7, 7)) > 0.6)
        pm = aggregate_burned_maps(stack)
        res = search_kign(pm, real, pre_burned=pre)
        bk, bf = _brute_force_kign(pm, real, pre=pre)
        assert res.fitness == pytest.approx(bf)
        assert res.kign == pytest.approx(bk)

    def test_kign_is_attainable_level(self):
        rng = np.random.default_rng(6)
        stack = rng.random((4, 6, 6)) > 0.5
        real = rng.random((6, 6)) > 0.5
        pm = aggregate_burned_maps(stack)
        res = search_kign(pm, real)
        assert res.kign in pm.levels()

    def test_all_zero_probability_predicts_nothing(self):
        pm = ProbabilityMap(np.zeros((4, 4)), n_maps=2)
        real = np.zeros((4, 4), dtype=bool)
        real[0, 0] = True
        res = search_kign(pm, real)
        assert res.kign > 1.0  # the "predict nothing" sentinel
        assert res.fitness == 0.0

    def test_all_zero_probability_empty_real_is_perfect(self):
        pm = ProbabilityMap(np.zeros((4, 4)), n_maps=2)
        res = search_kign(pm, np.zeros((4, 4), dtype=bool))
        assert res.fitness == 1.0

    def test_shape_mismatch_raises(self):
        pm = ProbabilityMap(np.zeros((4, 4)), n_maps=1)
        with pytest.raises(CalibrationError):
            search_kign(pm, np.zeros((3, 3), dtype=bool))

    def test_pre_shape_mismatch_raises(self):
        pm = ProbabilityMap(np.zeros((4, 4)), n_maps=1)
        with pytest.raises(CalibrationError):
            search_kign(
                pm,
                np.zeros((4, 4), dtype=bool),
                pre_burned=np.zeros((2, 2), dtype=bool),
            )

    def test_candidates_counted(self):
        pm = ProbabilityMap(np.array([[0.25, 0.5], [0.75, 1.0]]), n_maps=4)
        res = search_kign(pm, np.ones((2, 2), dtype=bool))
        assert res.candidates_tested == 4

    def test_tie_breaks_to_larger_threshold(self):
        # Two thresholds with identical fitness: pick the conservative one.
        pm = ProbabilityMap(
            np.array([[0.5, 1.0], [0.0, 0.0]]), n_maps=2
        )
        real = np.array([[True, True], [False, False]])
        # t=0.5 → predicts both cells (fitness 1); t=1.0 → predicts one
        # (fitness 0.5): no tie here. Build a real tie instead:
        real2 = np.array([[False, False], [False, False]])
        res = search_kign(pm, real2)
        # both thresholds give fitness 0 over-prediction... the larger
        # threshold predicts fewer wrong cells but Jaccard 0 either way;
        # the rule keeps the largest candidate.
        assert res.kign == pytest.approx(1.0)
