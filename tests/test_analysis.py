"""Tests for diversity metrics, run comparisons and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diversity import (
    behavioural_diversity,
    diversity_series,
    genotypic_diversity,
)
from repro.analysis.metrics import compare_runs, speedup_table
from repro.analysis.reporting import format_comparison, format_run, format_table
from repro.core.individual import Individual
from repro.ea.history import EvolutionHistory, GenerationRecord
from repro.errors import ReproError
from repro.parallel.timing import StageTimings
from repro.systems.results import RunResult, StepResult


def _pop(space, n, seed=0, fitness=None):
    genomes = space.sample(n, seed)
    return [
        Individual(genome=g, fitness=(fitness[i] if fitness else 0.5))
        for i, g in enumerate(genomes)
    ]


class TestGenotypicDiversity:
    def test_clones_have_zero(self, space):
        g = space.sample(1, 0)[0]
        pop = [Individual(genome=g.copy(), fitness=0.5) for _ in range(5)]
        assert genotypic_diversity(pop, space) == 0.0

    def test_spread_positive(self, space):
        assert genotypic_diversity(_pop(space, 10, 1), space) > 0

    def test_single_individual_zero(self, space):
        assert genotypic_diversity(_pop(space, 1), space) == 0.0

    def test_accepts_matrix(self, space):
        assert genotypic_diversity(space.sample(5, 2), space) > 0

    def test_empty_raises(self, space):
        with pytest.raises(ReproError):
            genotypic_diversity([], space)


class TestBehaviouralDiversity:
    def test_equal_fitness_zero(self, space):
        pop = _pop(space, 4, fitness=[0.5] * 4)
        assert behavioural_diversity(pop) == 0.0

    def test_two_levels(self, space):
        pop = _pop(space, 2, fitness=[0.2, 0.8])
        assert behavioural_diversity(pop) == pytest.approx(0.6)

    def test_single_zero(self, space):
        assert behavioural_diversity(_pop(space, 1, fitness=[0.4])) == 0.0


class TestDiversitySeries:
    def test_keys_and_lengths(self):
        h = EvolutionHistory()
        for g in (1, 2):
            h.append(
                GenerationRecord(
                    generation=g,
                    max_fitness=0.5,
                    mean_fitness=0.4,
                    fitness_iqr=0.1,
                    mean_novelty=0.2,
                    genotypic_diversity=0.3,
                    archive_size=5,
                    best_set_size=3,
                    evaluations=g * 10,
                )
            )
        series = diversity_series(h)
        assert set(series) == {
            "generation",
            "genotypic_diversity",
            "fitness_iqr",
            "max_fitness",
        }
        assert all(len(v) == 2 for v in series.values())


def _run(name, qualities):
    run = RunResult(system=name)
    for i, q in enumerate(qualities, start=1):
        run.steps.append(
            StepResult(
                step=i,
                kign=0.3,
                calibration_fitness=0.8,
                prediction_quality=q,
                best_scenario_fitness=0.7,
                n_solutions=10,
                evaluations=100,
                timings=StageTimings({"os": 1.0}),
            )
        )
    return run


class TestCompareRuns:
    def test_alignment(self):
        cmp = compare_runs(
            [
                _run("A", [float("nan"), 0.4, 0.6]),
                _run("B", [float("nan"), 0.5, 0.7]),
            ]
        )
        assert cmp.systems == ("A", "B")
        assert cmp.steps == (2, 3)
        assert cmp.quality.shape == (2, 2)
        assert cmp.winner() == "B"

    def test_margin_over(self):
        cmp = compare_runs(
            [_run("A", [float("nan"), 0.4]), _run("B", [float("nan"), 0.8])]
        )
        assert cmp.margin_over("A") == pytest.approx(2.0)
        with pytest.raises(ReproError):
            cmp.margin_over("C")

    def test_mismatched_steps_raise(self):
        with pytest.raises(ReproError):
            compare_runs([_run("A", [0.1]), _run("B", [0.1, 0.2])])

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            compare_runs([])


class TestSpeedupTable:
    def test_rows(self):
        rows = speedup_table(10.0, {2: 6.0, 4: 3.0})
        assert rows[0] == {
            "workers": 1,
            "seconds": 10.0,
            "speedup": 1.0,
            "efficiency": 1.0,
        }
        assert rows[1]["speedup"] == pytest.approx(1.667, abs=1e-3)
        assert rows[2]["efficiency"] == pytest.approx(0.833, abs=1e-3)


class TestFormatting:
    def test_format_table_alignment(self):
        txt = format_table(["a", "bb"], [[1, 2.5], [None, float("nan")]])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "—" in lines[3]

    def test_format_table_markdown(self):
        txt = format_table(["x"], [[1]], markdown=True)
        assert txt.splitlines()[1].startswith("| -")

    def test_format_run(self):
        txt = format_run(_run("ESS-NS", [float("nan"), 0.5]))
        assert "ESS-NS" in txt
        assert "Kign" in txt

    def test_format_comparison(self):
        cmp = compare_runs(
            [_run("A", [float("nan"), 0.4]), _run("B", [float("nan"), 0.8])]
        )
        txt = format_comparison(cmp)
        assert "winner: B" in txt
        assert "step 2" in txt
