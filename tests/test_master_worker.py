"""Tests for the explicit Master/Worker message engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel.executor import SerialEvaluator
from repro.parallel.master_worker import MasterWorkerEngine


class TestEngine:
    def test_matches_serial(self, toy_problem, space):
        genomes = space.sample(13, 2)
        expected = SerialEvaluator(toy_problem)(genomes)
        with MasterWorkerEngine(toy_problem, n_workers=2) as eng:
            assert np.allclose(eng(genomes), expected)

    def test_chunked_dispatch_matches(self, toy_problem, space):
        genomes = space.sample(10, 3)
        expected = SerialEvaluator(toy_problem)(genomes)
        with MasterWorkerEngine(toy_problem, n_workers=2, chunk_size=3) as eng:
            assert np.allclose(eng(genomes), expected)

    def test_multiple_batches(self, toy_problem, space):
        with MasterWorkerEngine(toy_problem, n_workers=2) as eng:
            a = eng(space.sample(5, 0))
            b = eng(space.sample(5, 1))
            assert a.shape == b.shape == (5,)
            assert eng.evaluations == 10

    def test_worker_stats_accumulate(self, toy_problem, space):
        with MasterWorkerEngine(toy_problem, n_workers=2, chunk_size=1) as eng:
            eng(space.sample(8, 0))
            total_tasks = sum(s.tasks_completed for s in eng.stats)
            total_genomes = sum(s.genomes_evaluated for s in eng.stats)
            assert total_tasks == 8
            assert total_genomes == 8

    def test_load_imbalance_at_least_one(self, toy_problem, space):
        with MasterWorkerEngine(toy_problem, n_workers=2) as eng:
            eng(space.sample(6, 0))
            assert eng.load_imbalance() >= 1.0

    def test_empty_batch(self, toy_problem):
        with MasterWorkerEngine(toy_problem, n_workers=2) as eng:
            assert eng(np.zeros((0, 9))).shape == (0,)

    def test_closed_engine_raises(self, toy_problem, space):
        eng = MasterWorkerEngine(toy_problem, n_workers=2)
        eng.close()
        with pytest.raises(ParallelError):
            eng(space.sample(2, 0))

    def test_close_idempotent(self, toy_problem):
        eng = MasterWorkerEngine(toy_problem, n_workers=2)
        eng.close()
        eng.close()

    @pytest.mark.parametrize("kwargs", [{"n_workers": 0}, {"chunk_size": 0}])
    def test_bad_params_raise(self, toy_problem, kwargs):
        defaults = dict(n_workers=2, chunk_size=1)
        defaults.update(kwargs)
        with pytest.raises(ParallelError):
            MasterWorkerEngine(toy_problem, **defaults)

    def test_single_worker_works(self, toy_problem, space):
        genomes = space.sample(4, 0)
        expected = SerialEvaluator(toy_problem)(genomes)
        with MasterWorkerEngine(toy_problem, n_workers=1) as eng:
            assert np.allclose(eng(genomes), expected)
