"""Tests for StepResult / RunResult records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.timing import StageTimings
from repro.systems.results import RunResult, StepResult


def _step(step, quality=0.5, evals=100, kign=0.25):
    t = StageTimings()
    t.add("os", 1.0)
    t.add("ss", 0.5)
    return StepResult(
        step=step,
        kign=kign,
        calibration_fitness=0.8,
        prediction_quality=quality,
        best_scenario_fitness=0.7,
        n_solutions=10,
        evaluations=evals,
        timings=t,
    )


class TestStepResult:
    def test_has_prediction(self):
        assert _step(2).has_prediction
        assert not _step(1, quality=float("nan")).has_prediction


class TestRunResult:
    def test_qualities_with_nan(self):
        run = RunResult(system="X")
        run.steps = [_step(1, quality=float("nan")), _step(2, 0.4), _step(3, 0.6)]
        q = run.qualities()
        assert np.isnan(q[0])
        assert run.mean_quality() == pytest.approx(0.5)

    def test_mean_quality_all_nan(self):
        run = RunResult(system="X")
        run.steps = [_step(1, quality=float("nan"))]
        assert np.isnan(run.mean_quality())

    def test_totals(self):
        run = RunResult(system="X")
        run.steps = [_step(1, evals=100), _step(2, evals=150)]
        assert run.total_evaluations() == 250
        assert run.total_time() == pytest.approx(3.0)

    def test_stage_timings_aggregated(self):
        run = RunResult(system="X")
        run.steps = [_step(1), _step(2)]
        agg = run.stage_timings()
        assert agg.seconds["os"] == pytest.approx(2.0)
        assert agg.seconds["ss"] == pytest.approx(1.0)

    def test_summary_rows_schema(self):
        run = RunResult(system="X")
        run.steps = [_step(1, quality=float("nan")), _step(2, 0.4)]
        rows = run.summary_rows()
        assert rows[0]["quality"] is None
        assert rows[1]["quality"] == 0.4
        assert set(rows[0]) == {
            "step",
            "kign",
            "cal_fitness",
            "quality",
            "best_fitness",
            "evaluations",
            "seconds",
        }
