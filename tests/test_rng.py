"""Tests for repro.rng: determinism, stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import ensure_rng, make_rng, spawn, spawn_seeds, stream_for


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(10)
        b = make_rng(42).random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(10)
        b = make_rng(2).random(10)
        assert not np.array_equal(a, b)


class TestEnsureRng:
    def test_passthrough_generator(self):
        gen = make_rng(0)
        assert ensure_rng(gen) is gen

    def test_int_seed(self):
        assert np.array_equal(ensure_rng(7).random(3), make_rng(7).random(3))

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(make_rng(5), 3)
        draws = [c.random(100) for c in children]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not np.array_equal(draws[i], draws[j])

    def test_children_deterministic(self):
        a = [c.random(5) for c in spawn(make_rng(5), 2)]
        b = [c.random(5) for c in spawn(make_rng(5), 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_zero_children(self):
        assert spawn(make_rng(0), 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        a = spawn_seeds(make_rng(9), 4)
        b = spawn_seeds(make_rng(9), 4)
        assert len(a) == 4
        assert a == b
        assert all(isinstance(s, int) and s >= 0 for s in a)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(make_rng(0), -2)


class TestStreamFor:
    def test_same_tags_same_stream(self):
        a = stream_for(1, 2, 3).random(5)
        b = stream_for(1, 2, 3).random(5)
        assert np.array_equal(a, b)

    def test_different_tags_differ(self):
        a = stream_for(1, 2, 3).random(5)
        b = stream_for(1, 2, 4).random(5)
        assert not np.array_equal(a, b)

    def test_tuple_tags(self):
        a = stream_for(1, (2, 3)).random(5)
        b = stream_for(1, 2, 3).random(5)
        assert np.array_equal(a, b)
