"""Tests for the Statistical Stage (probability matrix)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.stages.statistical import ProbabilityMap, aggregate_burned_maps


def _stack(*masks):
    return np.asarray(masks, dtype=bool)


class TestAggregate:
    def test_uniform_fractions(self):
        a = np.zeros((2, 2), dtype=bool)
        b = np.ones((2, 2), dtype=bool)
        c = np.array([[True, False], [False, False]])
        pm = aggregate_burned_maps(_stack(a, b, c))
        assert pm.n_maps == 3
        assert pm.probabilities[0, 0] == pytest.approx(2 / 3)
        assert pm.probabilities[1, 1] == pytest.approx(1 / 3)

    def test_unanimous_cell_is_one(self):
        b = np.ones((3, 3), dtype=bool)
        pm = aggregate_burned_maps(_stack(b, b))
        assert (pm.probabilities == 1.0).all()

    def test_weighted_aggregation(self):
        a = np.array([[True, False]])
        b = np.array([[False, True]])
        pm = aggregate_burned_maps(_stack(a, b), weights=np.array([3.0, 1.0]))
        assert pm.probabilities[0, 0] == pytest.approx(0.75)
        assert pm.probabilities[0, 1] == pytest.approx(0.25)

    def test_zero_weights_fall_back_to_uniform(self):
        a = np.array([[True, False]])
        b = np.array([[False, True]])
        pm = aggregate_burned_maps(_stack(a, b), weights=np.zeros(2))
        assert pm.probabilities[0, 0] == pytest.approx(0.5)

    def test_negative_weights_raise(self):
        a = np.ones((2, 2), dtype=bool)
        with pytest.raises(CalibrationError):
            aggregate_burned_maps(_stack(a), weights=np.array([-1.0]))

    def test_weight_count_mismatch_raises(self):
        a = np.ones((2, 2), dtype=bool)
        with pytest.raises(CalibrationError):
            aggregate_burned_maps(_stack(a, a), weights=np.ones(3))

    def test_empty_stack_raises(self):
        with pytest.raises(CalibrationError):
            aggregate_burned_maps(np.zeros((0, 2, 2), dtype=bool))

    def test_non_3d_raises(self):
        with pytest.raises(CalibrationError):
            aggregate_burned_maps(np.ones((2, 2), dtype=bool))


class TestProbabilityMap:
    def test_threshold_semantics(self):
        pm = ProbabilityMap(np.array([[0.2, 0.5], [0.8, 1.0]]), n_maps=5)
        assert np.array_equal(
            pm.threshold(0.5), np.array([[False, True], [True, True]])
        )
        assert pm.threshold(0.0).all()  # everything reaches probability 0
        assert not pm.threshold(1.01).any()

    def test_threshold_monotone_in_kign(self):
        rng = np.random.default_rng(0)
        pm = ProbabilityMap(rng.random((6, 6)), n_maps=4)
        prev = pm.threshold(0.1)
        for k in (0.3, 0.6, 0.9):
            cur = pm.threshold(k)
            assert not (cur & ~prev).any()  # higher kign predicts less
            prev = cur

    def test_levels_sorted_unique(self):
        pm = ProbabilityMap(np.array([[0.5, 0.25], [0.25, 1.0]]), n_maps=4)
        assert np.array_equal(pm.levels(), [0.25, 0.5, 1.0])

    def test_invalid_probabilities_raise(self):
        with pytest.raises(CalibrationError):
            ProbabilityMap(np.array([[1.5]]), n_maps=1)
        with pytest.raises(CalibrationError):
            ProbabilityMap(np.array([[-0.1]]), n_maps=1)

    def test_invalid_shape_raises(self):
        with pytest.raises(CalibrationError):
            ProbabilityMap(np.zeros(4), n_maps=1)

    def test_invalid_n_maps_raises(self):
        with pytest.raises(CalibrationError):
            ProbabilityMap(np.zeros((2, 2)), n_maps=0)
