"""Tests for the experiment orchestration layer.

Covers the declarative plan (validation, JSON artifact round-trip), the
streaming results store (crash-tolerant parsing, resume keys), the
runner (shared-session groups, bitwise equivalence to isolated
sessions, cross-system cache reuse, crash-safe resume, session
lifecycle, sharding) and the per-system stat scopes the shared sessions
hand out.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import EngineSession
from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
    RunKey,
    record_key,
)


def _tiny_plan(**overrides) -> ExperimentPlan:
    values = dict(
        name="tiny",
        systems=("ess", "ess-ns"),
        cases=(CaseSpec("grassland", size=20, steps=2),),
        seeds=(0,),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=8, generations=2, session_cache_size=2048
        ),
    )
    values.update(overrides)
    return ExperimentPlan(**values)


class TestExperimentPlan:
    def test_grid_size_and_groups(self):
        plan = _tiny_plan(
            cases=(
                CaseSpec("grassland", size=20, steps=2),
                CaseSpec("river_gap", size=20, steps=2),
            ),
            seeds=(0, 1),
        )
        assert plan.n_runs == 2 * 2 * 2
        groups = plan.groups()
        assert len(groups) == 2  # one per (case, backend)
        (case, backend), keys = groups[0]
        assert case.name == "grassland" and backend == "vectorized"
        # all runs of a group replay the same case on the same backend
        assert {(k.case, k.backend) for k in keys} == {
            ("grassland", "vectorized")
        }
        assert len(keys) == 4
        assert [k.as_tuple() for k in plan.runs()] == [
            k.as_tuple() for _, ks in groups for k in ks
        ]

    def test_json_roundtrip_is_lossless_and_stable(self, tmp_path):
        plan = _tiny_plan(seeds=(3, 1, 2))
        path = tmp_path / "plan.json"
        plan.save_json(path)
        back = ExperimentPlan.load_json(path)
        assert back == plan
        back.save_json(tmp_path / "again.json")
        assert (tmp_path / "again.json").read_text() == path.read_text()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"systems": ()},
            {"systems": ("warp-drive",)},
            {"systems": ("ess", "ess")},
            {"cases": ()},
            {"seeds": ()},
            {"seeds": (1, 1)},
            {"backends": ("quantum",)},
        ],
    )
    def test_invalid_plans_raise(self, overrides):
        with pytest.raises(ReproError):
            _tiny_plan(**overrides)

    def test_unknown_case_raises(self):
        with pytest.raises(ReproError):
            CaseSpec("atlantis")

    def test_malformed_payload_raises(self):
        with pytest.raises(ReproError):
            ExperimentPlan.from_dict({"systems": ["ess"]})

    def test_build_system_applies_budget(self):
        plan = _tiny_plan()
        system = plan.build_system("ess", "vectorized")
        assert system.backend == "vectorized"
        assert system.session_cache_size == 2048


class TestResultsStore:
    def _record(self, seed: int = 0, system: str = "ess") -> dict:
        return {
            "plan": "t",
            "system": system,
            "case": "grassland",
            "seed": seed,
            "backend": "vectorized",
            "quality": 0.5,
            "evaluations": 1,
            "seconds": 0.1,
            "run": {"system": "ESS", "steps": [], "session": {}},
        }

    def test_append_stream_and_completed(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        assert not store.exists() and store.records() == []
        store.append(self._record(0))
        store.append(self._record(1))
        assert len(store) == 2
        assert store.completed() == {
            ("ess", "grassland", 0, "vectorized"),
            ("ess", "grassland", 1, "vectorized"),
        }

    def test_truncated_final_line_is_ignored(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        store.append(self._record(0))
        with open(store.path, "a") as fh:
            fh.write('{"system": "ess", "case": "gr')  # crash mid-append
        records = store.records()
        assert len(records) == 1
        assert record_key(records[0]) == ("ess", "grassland", 0, "vectorized")

    def test_unterminated_but_parseable_tail_is_not_complete(self, tmp_path):
        """Regression: a crash can persist a record's full JSON minus
        the trailing newline; counting it complete and then letting the
        next append truncate it would silently lose the cell."""
        store = ResultsStore(tmp_path / "r.jsonl")
        store.append(self._record(0))
        with open(store.path, "a") as fh:
            fh.write(json.dumps(self._record(1)))  # crash before "\n"
        assert store.completed() == {("ess", "grassland", 0, "vectorized")}
        store.append(self._record(2))  # repairs the tail, then appends
        assert store.completed() == {
            ("ess", "grassland", 0, "vectorized"),
            ("ess", "grassland", 2, "vectorized"),
        }

    def test_interior_corruption_raises(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        store.append(self._record(0))
        with open(store.path, "a") as fh:
            fh.write("not json\n")
        store.append(self._record(1))
        with pytest.raises(ReproError, match="corrupt"):
            store.records()

    def test_record_without_key_rejected(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        with pytest.raises(ReproError):
            store.append({"system": "ess"})
        assert not store.exists()

    def test_append_repairs_a_truncated_tail(self, tmp_path):
        """Regression: a crash's partial final line must be dropped by
        the next append, not merged into it (which would silently lose
        one record and poison every later read)."""
        store = ResultsStore(tmp_path / "r.jsonl")
        store.append(self._record(0))
        with open(store.path, "a") as fh:
            fh.write('{"system": "ess", "case": "gr')  # crash mid-append
        store.append(self._record(1))
        store.append(self._record(2))
        records = store.records()
        assert [record_key(r)[2] for r in records] == [0, 1, 2]
        assert store.completed() == {
            ("ess", "grassland", s, "vectorized") for s in (0, 1, 2)
        }


class TestStoreMerge:
    def _record(self, seed: int, system: str = "ess", quality: float = 0.5):
        return {
            "plan": "t",
            "system": system,
            "case": "grassland",
            "seed": seed,
            "backend": "vectorized",
            "quality": quality,
            "evaluations": 1,
            "seconds": 0.1,
            "run": {"system": "ESS", "steps": [], "session": {}},
        }

    def test_merge_dedupes_first_writer_wins_sorted(self, tmp_path):
        dest = ResultsStore(tmp_path / "dest.jsonl")
        dest.append(self._record(5, quality=0.9))
        a = ResultsStore(tmp_path / "a.jsonl")
        a.append(self._record(5, quality=0.1))  # duplicate of dest's cell
        a.append(self._record(3))
        b = ResultsStore(tmp_path / "b.jsonl")
        b.append(self._record(3, quality=0.2))  # duplicate of a's cell
        b.append(self._record(1))
        summary = dest.merge(a, b)
        assert summary == {"records": 3, "duplicates": 2, "sources": 2}
        records = dest.records()
        # sorted by run key, so merge output is byte-comparable
        assert [record_key(r)[2] for r in records] == [1, 3, 5]
        by_seed = {record_key(r)[2]: r for r in records}
        assert by_seed[5]["quality"] == 0.9  # dest wrote first
        assert by_seed[3]["quality"] == 0.5  # source a beat source b

    def test_merge_accepts_record_iterables(self, tmp_path):
        dest = ResultsStore(tmp_path / "dest.jsonl")
        summary = dest.merge([self._record(2), self._record(0)])
        assert summary["records"] == 2
        assert [record_key(r)[2] for r in dest.records()] == [0, 2]

    def test_merge_compacts_partial_tails(self, tmp_path):
        dest = ResultsStore(tmp_path / "dest.jsonl")
        dest.append(self._record(0))
        src = ResultsStore(tmp_path / "src.jsonl")
        src.append(self._record(1))
        for store in (dest, src):
            with open(store.path, "a") as fh:
                fh.write('{"system": "ess", "case": "gr')  # crash tails
        dest.merge(src)
        with open(dest.path) as fh:
            text = fh.read()
        assert text.endswith("\n")
        assert len(text.splitlines()) == 2
        assert {record_key(r)[2] for r in dest.records()} == {0, 1}

    def test_merge_is_idempotent_and_stable(self, tmp_path):
        dest = ResultsStore(tmp_path / "dest.jsonl")
        dest.append(self._record(1))
        dest.append(self._record(0))
        src = ResultsStore(tmp_path / "src.jsonl")
        src.append(self._record(2))
        dest.merge(src)
        first = dest.path.read_bytes()
        summary = dest.merge(src)
        assert summary["duplicates"] == 1  # src is already folded in
        assert dest.path.read_bytes() == first

    def test_merge_cli(self, tmp_path, capsys):
        from repro.cli import main

        a = ResultsStore(tmp_path / "a.jsonl")
        a.append(self._record(0))
        b = ResultsStore(tmp_path / "b.jsonl")
        b.append(self._record(0, quality=0.0))
        b.append(self._record(1))
        out = tmp_path / "merged.jsonl"
        assert (
            main(
                [
                    "experiments",
                    "merge-stores",
                    "--into",
                    str(out),
                    str(a.path),
                    str(b.path),
                ]
            )
            == 0
        )
        assert "2 records" in capsys.readouterr().out
        assert len(ResultsStore(out).records()) == 2
        with pytest.raises(SystemExit, match="no such results store"):
            main(
                [
                    "experiments",
                    "merge-stores",
                    "--into",
                    str(out),
                    str(tmp_path / "missing.jsonl"),
                ]
            )


class TestBudgetOverrides:
    def test_budget_for_and_build_system(self):
        plan = _tiny_plan(budgets={"ess-ns": {"population": 12}})
        assert plan.budget_for("ess").population == 8
        assert plan.budget_for("ess-ns").population == 12
        assert plan.budget_for("ess-ns").generations == 2  # inherited
        system = plan.build_system("ess-ns", "vectorized")
        assert system.config.nsga.population_size == 12

    def test_json_roundtrip_with_budgets(self, tmp_path):
        plan = _tiny_plan(budgets={"ess": {"generations": 4}})
        path = tmp_path / "plan.json"
        plan.save_json(path)
        back = ExperimentPlan.load_json(path)
        assert back == plan
        assert back.budget_for("ess").generations == 4
        # plans without overrides keep the pre-override artifact shape
        assert "budgets" not in _tiny_plan().to_dict()

    @pytest.mark.parametrize(
        "budgets",
        [
            {"warp-drive": {"population": 12}},  # not a plan system
            {"ess": {"n_workers": 4}},  # session knob is per-group
            {"ess": {"session_cache_size": 1}},
            {"ess": {"flux": 1}},  # unknown key
            {"ess": 12},  # not a mapping
        ],
    )
    def test_invalid_overrides_raise(self, budgets):
        with pytest.raises(ReproError):
            _tiny_plan(budgets=budgets)

    def test_digest_covers_effective_budget(self):
        base = _tiny_plan()
        rebudgeted = _tiny_plan(budgets={"ess": {"population": 12}})
        case = base.cases[0]
        assert base.config_digest(case, "ess") == base.config_digest(
            case, "ess-ns"
        )
        assert rebudgeted.config_digest(case, "ess") != base.config_digest(
            case, "ess"
        )
        # the untouched system's digest is unchanged by the override
        assert rebudgeted.config_digest(case, "ess-ns") == base.config_digest(
            case, "ess-ns"
        )

    def test_rebudgeted_resume_is_refused_per_system(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        ExperimentRunner(store=store).run(_tiny_plan())
        rebudgeted = _tiny_plan(budgets={"ess": {"generations": 3}})
        with pytest.raises(ReproError, match="different configuration"):
            ExperimentRunner(store=store).run(rebudgeted)
        # an override that matches the recorded budget still resumes
        same = _tiny_plan(
            budgets={"ess": {"population": 8, "generations": 2}}
        )
        assert ExperimentRunner(store=store).run(same).n_resumed == 2

    def test_overridden_budget_changes_the_run(self):
        plan = _tiny_plan(budgets={"ess": {"generations": 3}})
        result = ExperimentRunner().run(plan)
        evals = {
            r["system"]: r["evaluations"] for r in result.records
        }
        assert evals["ess"] > evals["ess-ns"]


class TestSharedSessionEquivalence:
    """Acceptance: shared-session grids are bitwise-identical to
    isolated sessions while reusing strictly more from the cache."""

    def test_shared_equals_isolated_with_more_hits(self):
        plan = _tiny_plan()
        shared = ExperimentRunner(share_sessions=True).run(plan)
        isolated = ExperimentRunner(share_sessions=False).run(plan)
        assert len(shared.records) == len(isolated.records) == plan.n_runs
        for a, b in zip(shared.runs(), isolated.runs()):
            assert a.system == b.system
            assert np.array_equal(a.qualities(), b.qualities(), equal_nan=True)
            assert [s.kign for s in a.steps] == [s.kign for s in b.steps]
            assert [s.best_scenario_fitness for s in a.steps] == [
                s.best_scenario_fitness for s in b.steps
            ]
        shared_hits = sum(
            r["run"]["session"]["cache"]["hits"] for r in shared.records
        )
        isolated_hits = sum(
            r["run"]["session"]["cache"]["hits"] for r in isolated.records
        )
        assert shared_hits > isolated_hits
        # the reuse only a shared session can provide, and the summary
        # totals that report it
        assert shared.cross_system_hits() > 0
        assert isolated.cross_system_hits() == 0
        totals = shared.per_system_totals()
        assert totals["ess-ns"]["cross_system_hits"] > 0

    def test_per_system_scope_stats_are_deltas(self):
        plan = _tiny_plan()
        result = ExperimentRunner(share_sessions=True).run(plan)
        sessions = [r["run"]["session"] for r in result.records]
        # each run reports its own scope: 2 steps each, not cumulative
        assert [s["steps"] for s in sessions] == [2, 2]
        assert all(s["systems"] == 1 for s in sessions)

    def test_same_system_repeats_count_no_cross_system_hits(self, small_fire):
        """Regression: repeat seeds of ONE system share a scope label,
        so reuse between them is cross-step, never 'cross-system'."""
        system = _tiny_plan().build_system("ess", "vectorized")
        with EngineSession(
            backend="vectorized", session_cache_size=4096
        ) as session:
            system.run(small_fire, rng=0, session=session)
            again = _tiny_plan().build_system("ess", "vectorized").run(
                small_fire, rng=0, session=session
            )
            stats = session.stats
        # identical seed → every evaluation of the repeat hits the cache
        assert again.session["cache"]["hits"] > 0
        assert again.session["cross_step_hits"] > 0
        assert again.session["cross_system_hits"] == 0
        assert stats.systems == 1  # one distinct label entered twice


class TestRunnerLifecycle:
    def test_crash_mid_group_closes_shared_session(self):
        created: list[EngineSession] = []

        def factory(**kwargs):
            session = EngineSession(**kwargs)
            created.append(session)
            return session

        def boom(record):
            raise RuntimeError("mid-group crash")

        runner = ExperimentRunner(session_factory=factory, progress=boom)
        with pytest.raises(RuntimeError, match="mid-group crash"):
            runner.run(_tiny_plan())
        assert len(created) == 1
        assert created[0].closed

    def test_sessions_closed_on_success_too(self):
        created: list[EngineSession] = []

        def factory(**kwargs):
            session = EngineSession(**kwargs)
            created.append(session)
            return session

        plan = _tiny_plan(
            cases=(
                CaseSpec("grassland", size=20, steps=2),
                CaseSpec("river_gap", size=20, steps=2),
            )
        )
        ExperimentRunner(session_factory=factory).run(plan)
        assert len(created) == 2  # one shared session per (case, backend)
        assert all(s.closed for s in created)

    def test_invalid_shards_raise(self):
        with pytest.raises(ReproError):
            ExperimentRunner().run(_tiny_plan(), shards=0)
        with pytest.raises(ReproError, match="ResultsStore"):
            ExperimentRunner().run(_tiny_plan(), shards=2)


class TestResume:
    def test_killed_sweep_resumes_only_missing_cells(self, tmp_path):
        """Acceptance: re-invoking with the same store completes only
        the missing (system, case, seed) cells."""
        plan = _tiny_plan(seeds=(0, 1))
        store = ResultsStore(tmp_path / "r.jsonl")
        seen: list[tuple] = []

        def die_after_two(record):
            seen.append(record_key(record))
            if len(seen) == 2:
                raise RuntimeError("killed")

        with pytest.raises(RuntimeError):
            ExperimentRunner(store=store, progress=die_after_two).run(plan)
        assert len(store.records()) == 2

        executed: list[tuple] = []
        result = ExperimentRunner(
            store=store, progress=lambda r: executed.append(record_key(r))
        ).run(plan)
        assert len(executed) == plan.n_runs - 2
        assert set(executed).isdisjoint(seen)
        assert result.n_resumed == 2
        # the full grid comes back, in plan order
        assert [record_key(r) for r in result.records] == [
            k.as_tuple() for k in plan.runs()
        ]

    def test_resume_rejects_changed_configuration(self, tmp_path):
        """Regression: the run key alone does not identify a result —
        resuming with a changed case shape or budget must refuse the
        store instead of serving the stale cells."""
        store = ResultsStore(tmp_path / "r.jsonl")
        ExperimentRunner(store=store).run(_tiny_plan())
        bigger_case = _tiny_plan(
            cases=(CaseSpec("grassland", size=28, steps=3),)
        )
        with pytest.raises(ReproError, match="different configuration"):
            ExperimentRunner(store=store).run(bigger_case)
        bigger_budget = _tiny_plan(
            budget=BudgetSpec(
                population=16, generations=2, session_cache_size=2048
            )
        )
        with pytest.raises(ReproError, match="different configuration"):
            ExperimentRunner(store=store).run(bigger_budget)
        # the unchanged plan still resumes cleanly
        assert ExperimentRunner(store=store).run(_tiny_plan()).n_resumed == 2

    def test_fully_recorded_plan_runs_nothing(self, tmp_path):
        plan = _tiny_plan()
        store = ResultsStore(tmp_path / "r.jsonl")
        first = ExperimentRunner(store=store).run(plan)
        executed: list[dict] = []
        second = ExperimentRunner(store=store, progress=executed.append).run(
            plan
        )
        assert executed == []
        assert second.n_resumed == plan.n_runs
        assert [record_key(r) for r in second.records] == [
            record_key(r) for r in first.records
        ]
        for a, b in zip(first.records, second.records):
            assert a["run"] == b["run"]

    def test_resumed_results_match_uninterrupted(self, tmp_path):
        plan = _tiny_plan(seeds=(0, 1))
        straight = ExperimentRunner().run(plan)
        store = ResultsStore(tmp_path / "r.jsonl")
        crash = [0]

        def die_after_one(record):
            crash[0] += 1
            if crash[0] == 1:
                raise RuntimeError("killed")

        with pytest.raises(RuntimeError):
            ExperimentRunner(store=store, progress=die_after_one).run(plan)
        resumed = ExperimentRunner(store=store).run(plan)
        for a, b in zip(straight.runs(), resumed.runs()):
            assert a.system == b.system
            assert np.array_equal(a.qualities(), b.qualities(), equal_nan=True)


class TestSharding:
    def test_sharded_run_covers_the_grid(self, tmp_path):
        plan = _tiny_plan(
            cases=(
                CaseSpec("grassland", size=20, steps=2),
                CaseSpec("river_gap", size=20, steps=2),
            )
        )
        store = ResultsStore(tmp_path / "r.jsonl")
        result = ExperimentRunner(store=store).run(plan, shards=2)
        assert len(result.records) == plan.n_runs
        assert {record_key(r) for r in result.records} == {
            k.as_tuple() for k in plan.runs()
        }
        serial = ExperimentRunner().run(plan)
        for a, b in zip(result.runs(), serial.runs()):
            assert np.array_equal(a.qualities(), b.qualities(), equal_nan=True)


class TestRunBorrowedSession:
    def test_borrowed_session_is_not_closed(self, small_fire):
        plan = _tiny_plan()
        system = plan.build_system("ess", "vectorized")
        with EngineSession(
            backend="vectorized", session_cache_size=256
        ) as session:
            run = system.run(small_fire, rng=0, session=session)
            assert not session.closed
            assert run.session["systems"] == 1
            # a second borrower reuses what the first computed
            other = plan.build_system("ess-ns", "vectorized")
            run2 = other.run(small_fire, rng=0, session=session)
            assert run2.session["cross_system_hits"] > 0

    def test_closed_session_rejected(self, small_fire):
        system = _tiny_plan().build_system("ess", "vectorized")
        session = EngineSession(backend="vectorized")
        session.close()
        with pytest.raises(ReproError, match="closed"):
            system.run(small_fire, rng=0, session=session)

    def test_overlapping_scopes_rejected(self):
        session = EngineSession()
        scope = session.scoped("a")
        with pytest.raises(ReproError, match="still active"):
            session.scoped("b")
        scope.close()
        session.scoped("b").close()
        session.close()


class TestExperimentResult:
    def test_record_lookup_and_json_stream(self, tmp_path):
        plan = _tiny_plan()
        store = ResultsStore(tmp_path / "r.jsonl")
        result = ExperimentRunner(store=store).run(plan)
        record = result.record("ess", "grassland", 0, "vectorized")
        assert record["plan"] == "tiny"
        with pytest.raises(ReproError):
            result.record("ess", "grassland", 99, "vectorized")
        # every stored line is valid standalone JSON (the streaming
        # contract external tools rely on)
        with open(store.path) as fh:
            for line in fh:
                assert isinstance(json.loads(line), dict)

    def test_run_key_tuple(self):
        key = RunKey("ess", "grassland", 3, "reference")
        assert key.as_tuple() == ("ess", "grassland", 3, "reference")
