"""Tests for the elliptical growth model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.firelib.ellipse import (
    backing_ros,
    eccentricity_from_effective_wind,
    flanking_ros,
    length_to_width_ratio,
    ros_at_azimuth,
)


class TestLengthToWidth:
    def test_zero_wind_is_circle(self):
        assert length_to_width_ratio(0.0) == 1.0

    def test_monotone_in_wind(self):
        winds = [0.0, 100.0, 500.0, 2000.0]
        lwrs = [length_to_width_ratio(w) for w in winds]
        assert all(a <= b for a, b in zip(lwrs, lwrs[1:]))

    def test_capped(self):
        assert length_to_width_ratio(1e9) == 25.0

    def test_negative_wind_clamped(self):
        assert length_to_width_ratio(-10.0) == 1.0

    def test_array_input(self):
        out = length_to_width_ratio(np.array([0.0, 352.0]))
        assert out.shape == (2,)
        assert out[0] == 1.0


class TestEccentricity:
    def test_zero_wind_zero_ecc(self):
        assert eccentricity_from_effective_wind(0.0) == 0.0

    def test_in_unit_interval(self):
        for w in (10.0, 100.0, 1000.0, 1e8):
            e = eccentricity_from_effective_wind(w)
            assert 0.0 <= e < 1.0

    def test_monotone(self):
        es = [eccentricity_from_effective_wind(w) for w in (0, 50, 500, 5000)]
        assert all(a <= b for a, b in zip(es, es[1:]))


class TestRosAtAzimuth:
    def test_heading_equals_max(self):
        assert ros_at_azimuth(10.0, 90.0, 0.8, 90.0) == pytest.approx(10.0)

    def test_backing_is_minimum(self):
        head = ros_at_azimuth(10.0, 0.0, 0.7, 0.0)
        back = ros_at_azimuth(10.0, 0.0, 0.7, 180.0)
        flank = ros_at_azimuth(10.0, 0.0, 0.7, 90.0)
        assert back < flank < head
        assert back == pytest.approx(backing_ros(10.0, 0.7))
        assert flank == pytest.approx(flanking_ros(10.0, 0.7))

    def test_symmetry_about_heading(self):
        left = ros_at_azimuth(10.0, 45.0, 0.6, 45.0 - 30.0)
        right = ros_at_azimuth(10.0, 45.0, 0.6, 45.0 + 30.0)
        assert left == pytest.approx(right)

    def test_circle_when_ecc_zero(self):
        for az in (0.0, 90.0, 222.0):
            assert ros_at_azimuth(5.0, 0.0, 0.0, az) == pytest.approx(5.0)

    def test_zero_ros_max_stays_zero(self):
        assert ros_at_azimuth(0.0, 0.0, 0.9, 123.0) == 0.0

    def test_array_broadcast(self):
        az = np.array([0.0, 90.0, 180.0])
        out = ros_at_azimuth(10.0, 0.0, 0.5, az)
        assert out.shape == (3,)
        assert out[0] == pytest.approx(10.0)
        assert out[2] == pytest.approx(10.0 * 0.5 / 1.5)

    def test_near_degenerate_ecc_stable(self):
        # ε extremely close to 1 must not divide by zero
        out = ros_at_azimuth(10.0, 0.0, 1.0 - 1e-15, 180.0)
        assert np.isfinite(out)
        assert out >= 0.0
