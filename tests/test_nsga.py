"""Tests for Algorithm 1 (the Novelty-based GA with Multiple Solutions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.individual import Individual
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.parallel.executor import SerialEvaluator

TERM = Termination(max_generations=10, fitness_threshold=0.99)


def _run(problem, space, seed=0, term=TERM, **cfg):
    defaults = dict(population_size=20, k_neighbors=5, best_set_capacity=8)
    defaults.update(cfg)
    return NoveltyGA(NoveltyGAConfig(**defaults)).run(
        SerialEvaluator(problem), space, term, rng=seed
    )


class TestConfig:
    def test_bad_k_raises(self):
        with pytest.raises(EvolutionError):
            NoveltyGAConfig(k_neighbors=0)

    def test_none_k_means_whole_set(self):
        NoveltyGAConfig(k_neighbors=None)  # must not raise

    def test_ga_validations_inherited(self):
        with pytest.raises(EvolutionError):
            NoveltyGAConfig(population_size=1)
        with pytest.raises(EvolutionError):
            NoveltyGAConfig(crossover_rate=2.0)

    def test_bad_archive_policy_raises(self):
        with pytest.raises(EvolutionError):
            NoveltyGAConfig(archive_policy="bogus")


class TestAlgorithm1:
    def test_returns_best_set(self, toy_problem, space):
        result = _run(toy_problem, space)
        assert len(result.best_set) > 0
        assert result.best_set.max_fitness() > 0.5
        assert result.best_genomes().shape[1] == space.dimension

    def test_best_set_bounded(self, toy_problem, space):
        result = _run(toy_problem, space, best_set_capacity=4)
        assert len(result.best_set) <= 4

    def test_archive_grows_and_bounded(self, toy_problem, space):
        result = _run(toy_problem, space, archive_capacity=30)
        assert 0 < len(result.archive) <= 30

    def test_every_individual_scored(self, toy_problem, space):
        result = _run(toy_problem, space)
        for ind in result.population:
            assert ind.fitness is not None
            assert ind.novelty is not None
            assert ind.novelty >= 0.0

    def test_deterministic(self, toy_problem, space):
        a = _run(toy_problem, space, seed=3)
        b = _run(toy_problem, space, seed=3)
        assert a.best_set.max_fitness() == b.best_set.max_fitness()
        assert np.array_equal(a.best_genomes(), b.best_genomes())

    def test_max_fitness_monotone(self, toy_problem, space):
        # bestSet never forgets: the history's max_fitness (line 18) is
        # non-decreasing by construction.
        result = _run(toy_problem, space)
        mx = result.history.series("max_fitness")
        assert (np.diff(mx) >= -1e-12).all()

    def test_threshold_stops_early(self, toy_problem, space):
        term = Termination(max_generations=50, fitness_threshold=0.5)
        result = _run(toy_problem, space, term=term)
        assert len(result.history) < 50
        assert "threshold" in result.stop_reason

    def test_population_size_constant(self, toy_problem, space):
        result = _run(toy_problem, space)
        assert len(result.population) == 20

    def test_replacement_is_novelty_elitist(self, toy_problem, space):
        # After a run, the surviving population must be the top-N by
        # novelty of the last combined pool — verify survivors are
        # sorted-compatible: every survivor's novelty >= 0 and the
        # population is sorted in the order the replacement produced.
        result = _run(toy_problem, space)
        novs = [ind.novelty for ind in result.population]
        assert novs == sorted(novs, reverse=True)

    def test_evaluation_caching(self, toy_problem, space):
        # Fitness must be computed once per individual: N initial +
        # m per generation.
        result = _run(toy_problem, space)
        assert result.evaluations == 20 + 10 * 20

    def test_best_include_population_flag(self, toy_problem, space):
        with_pop = _run(toy_problem, space, best_include_population=True, seed=1)
        # the initial population is evaluated before the loop in this mode
        assert with_pop.evaluations == 20 + 10 * 20

    def test_initial_population(self, toy_problem, space):
        pop = [Individual(genome=g) for g in space.sample(20, 50)]
        result = NoveltyGA(
            NoveltyGAConfig(population_size=20, k_neighbors=5)
        ).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=2),
            rng=0,
            initial_population=pop,
        )
        assert len(result.history) == 2

    def test_wrong_initial_size_raises(self, toy_problem, space):
        with pytest.raises(EvolutionError):
            NoveltyGA(NoveltyGAConfig(population_size=20)).run(
                SerialEvaluator(toy_problem),
                space,
                TERM,
                initial_population=[Individual(genome=space.sample(1, 0)[0])],
            )

    def test_observer_sees_all_accumulators(self, toy_problem, space):
        captured = []

        def observer(gen, pop, off, archive, best):
            captured.append((gen, len(pop), len(off), len(archive), len(best)))

        _run(toy_problem, space, term=Termination(max_generations=3))
        NoveltyGA(
            NoveltyGAConfig(population_size=10, k_neighbors=3)
        ).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=3),
            rng=0,
            observer=observer,
        )
        assert [c[0] for c in captured] == [1, 2, 3]
        assert all(c[1] == 10 and c[2] == 10 for c in captured)

    def test_history_mean_novelty_finite(self, toy_problem, space):
        result = _run(toy_problem, space)
        assert np.isfinite(result.history.series("mean_novelty")).all()


class TestNoveltyVsFitnessGuidance:
    def test_ns_population_more_diverse_than_ga(self, toy_problem, space):
        """The paper's central §II-B/§III claim at algorithm level."""
        from repro.ea.ga import GAConfig, GeneticAlgorithm

        term = Termination(max_generations=15)
        ga = GeneticAlgorithm(GAConfig(population_size=20)).run(
            SerialEvaluator(toy_problem), space, term, rng=7
        )
        ns = _run(toy_problem, space, seed=7, term=term)
        ga_div = ga.history.records[-1].genotypic_diversity
        ns_div = ns.history.records[-1].genotypic_diversity
        assert ns_div > ga_div

    def test_signed_distance_variant_runs(self, toy_problem, space):
        result = _run(toy_problem, space, signed_distance=True)
        assert len(result.best_set) > 0

    def test_random_archive_policy_runs(self, toy_problem, space):
        result = _run(toy_problem, space, archive_policy="random")
        assert len(result.archive) > 0
