"""Tests for the serial / process-pool fitness backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel.executor import (
    ProcessPoolEvaluator,
    SerialEvaluator,
    default_worker_count,
    make_evaluator,
)


class TestSerialEvaluator:
    def test_matches_problem(self, toy_problem, space):
        genomes = space.sample(10, 0)
        ev = SerialEvaluator(toy_problem)
        assert np.array_equal(ev(genomes), toy_problem.evaluate_batch(genomes))

    def test_counts_evaluations(self, toy_problem, space):
        ev = SerialEvaluator(toy_problem)
        ev(space.sample(4, 0))
        ev(space.sample(6, 1))
        assert ev.evaluations == 10

    def test_single_genome_promoted(self, toy_problem, space):
        ev = SerialEvaluator(toy_problem)
        out = ev(space.sample(1, 0)[0])
        assert out.shape == (1,)

    def test_context_manager(self, toy_problem):
        with SerialEvaluator(toy_problem) as ev:
            assert ev.evaluations == 0

    def test_bad_problem_shape_raises(self, space):
        class Broken:
            def evaluate_batch(self, genomes):
                return np.zeros(1)

        with pytest.raises(ParallelError):
            SerialEvaluator(Broken())(space.sample(3, 0))


class TestProcessPoolEvaluator:
    def test_matches_serial(self, toy_problem, space):
        genomes = space.sample(17, 5)
        expected = SerialEvaluator(toy_problem)(genomes)
        with ProcessPoolEvaluator(toy_problem, n_workers=2) as pool:
            assert np.allclose(pool(genomes), expected)

    def test_empty_batch(self, toy_problem):
        with ProcessPoolEvaluator(toy_problem, n_workers=2) as pool:
            assert pool(np.zeros((0, 9))).shape == (0,)

    def test_closed_pool_raises(self, toy_problem, space):
        pool = ProcessPoolEvaluator(toy_problem, n_workers=2)
        pool.close()
        with pytest.raises(ParallelError):
            pool(space.sample(2, 0))

    def test_close_idempotent(self, toy_problem):
        pool = ProcessPoolEvaluator(toy_problem, n_workers=2)
        pool.close()
        pool.close()

    @pytest.mark.parametrize("bad", [0, -2])
    def test_bad_worker_count_raises(self, toy_problem, bad):
        with pytest.raises(ParallelError):
            ProcessPoolEvaluator(toy_problem, n_workers=bad)

    def test_bad_chunks_raises(self, toy_problem):
        with pytest.raises(ParallelError):
            ProcessPoolEvaluator(toy_problem, n_workers=2, chunks_per_worker=0)

    def test_counts_evaluations(self, toy_problem, space):
        with ProcessPoolEvaluator(toy_problem, n_workers=2) as pool:
            pool(space.sample(7, 0))
            assert pool.evaluations == 7


class TestMakeEvaluator:
    def test_one_worker_is_serial(self, toy_problem):
        assert isinstance(make_evaluator(toy_problem, 1), SerialEvaluator)
        assert isinstance(make_evaluator(toy_problem, None), SerialEvaluator)

    def test_many_workers_is_pool(self, toy_problem):
        ev = make_evaluator(toy_problem, 2)
        try:
            assert isinstance(ev, ProcessPoolEvaluator)
        finally:
            ev.close()

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1
