"""Property tests: the vectorized backend is bitwise-exact.

The acceptance bar for the engine subsystem is that the ``vectorized``
backend matches ``SerialEvaluator`` + :class:`FireSimulator` **bit for
bit** — not approximately — across random scenarios on all 13 NFFL
fuel models, on homogeneous and heterogeneous terrains, under both
stencils. The flat-index Dijkstra kernels are additionally checked
against the reference propagation on random travel-time rasters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import ParameterSpace
from repro.engine import SimulationEngine
from repro.engine.fastprop import propagate_raster, propagate_uniform
from repro.firelib.propagation import (
    _offset_azimuth_deg,
    propagate,
    stencil,
)
from repro.grid.terrain import Terrain
from repro.parallel.executor import SerialEvaluator
from repro.systems.problem import PredictionStepProblem

SPACE = ParameterSpace()


def _problem(terrain: Terrain, n_neighbors: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    start = np.zeros(terrain.shape, dtype=bool)
    r0, c0 = terrain.rows // 2, terrain.cols // 2
    start[r0 - 1 : r0 + 2, c0 - 1 : c0 + 2] = True
    real = start | (rng.random(terrain.shape) < 0.2)
    return PredictionStepProblem(
        terrain=terrain,
        start_burned=start,
        real_burned=real,
        horizon=30.0,
        n_neighbors=n_neighbors,
    )


def _model_genomes(model: int, n: int, seed: int) -> np.ndarray:
    genomes = SPACE.sample(n, seed)
    genomes[:, 0] = model
    return genomes


class TestVectorizedBitwise:
    @pytest.mark.parametrize("model", range(1, 14))
    def test_all_nffl_models_uniform_terrain(self, model):
        problem = _problem(Terrain.uniform(16, 16), seed=model)
        genomes = _model_genomes(model, 5, 100 + model)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    @pytest.mark.parametrize("model", range(1, 14))
    def test_all_nffl_models_fuel_raster(self, model):
        terrain = Terrain.with_fuel_patches(
            16,
            16,
            base_model=model,
            patches=[
                (slice(0, 8), slice(10, 14), (model % 13) + 1),
                (slice(12, 16), slice(0, 4), 0),  # unburnable pocket
            ],
        )
        problem = _problem(terrain, seed=200 + model)
        genomes = _model_genomes(model, 4, 300 + model)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    def test_slope_aspect_rasters(self):
        problem = _problem(Terrain.with_ridge(16, 16), seed=7)
        genomes = SPACE.sample(6, 41)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    @pytest.mark.parametrize("model", range(1, 14))
    def test_all_nffl_models_heterogeneous_rasters(self, model):
        """Batched raster path: non-uniform slope/aspect, bitwise-exact."""
        rng = np.random.default_rng(500 + model)
        terrain = Terrain(
            16,
            16,
            slope=rng.uniform(0.0, 45.0, (16, 16)),
            aspect=rng.uniform(0.0, 360.0, (16, 16)),
        )
        problem = _problem(terrain, seed=600 + model)
        genomes = _model_genomes(model, 5, 700 + model)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    def test_heterogeneous_rasters_mixed_models(self):
        """One batch spanning several fuel beds over shared rasters."""
        rng = np.random.default_rng(81)
        terrain = Terrain(
            14,
            14,
            slope=rng.uniform(0.0, 60.0, (14, 14)),
            aspect=rng.uniform(0.0, 360.0, (14, 14)),
        )
        problem = _problem(terrain, seed=82)
        genomes = SPACE.sample(13, 83)
        genomes[:, 0] = np.arange(1, 14)  # every NFFL model in one batch
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    def test_fuel_raster_with_slope_aspect_rasters(self):
        rng = np.random.default_rng(84)
        fuel = rng.integers(1, 14, (16, 16))
        fuel[2:5, 2:5] = 0  # unburnable pocket
        terrain = Terrain(
            16,
            16,
            fuel=fuel,
            slope=rng.uniform(0.0, 45.0, (16, 16)),
            aspect=rng.uniform(0.0, 360.0, (16, 16)),
        )
        problem = _problem(terrain, seed=85)
        genomes = SPACE.sample(8, 86)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    @pytest.mark.parametrize("raster", ["slope", "aspect"])
    def test_single_raster_with_scenario_scalar(self, raster):
        """Only one raster present: the other comes from each genome."""
        rng = np.random.default_rng(87)
        kwargs = (
            {"slope": rng.uniform(0.0, 45.0, (14, 14))}
            if raster == "slope"
            else {"aspect": rng.uniform(0.0, 360.0, (14, 14))}
        )
        problem = _problem(Terrain(14, 14, **kwargs), seed=88)
        genomes = SPACE.sample(7, 89)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    def test_heterogeneous_rasters_16_neighbors(self):
        rng = np.random.default_rng(90)
        terrain = Terrain(
            12,
            12,
            slope=rng.uniform(0.0, 45.0, (12, 12)),
            aspect=rng.uniform(0.0, 360.0, (12, 12)),
        )
        problem = _problem(terrain, n_neighbors=16, seed=91)
        genomes = SPACE.sample(5, 92)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    def test_heterogeneous_burned_maps_bitwise(self):
        rng = np.random.default_rng(93)
        terrain = Terrain(
            12,
            12,
            slope=rng.uniform(0.0, 45.0, (12, 12)),
            aspect=rng.uniform(0.0, 360.0, (12, 12)),
        )
        problem = _problem(terrain, seed=94)
        genomes = SPACE.sample(4, 95)
        ref = SimulationEngine.from_problem(problem, backend="reference")
        vec = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(
            ref.burned_maps(genomes), vec.burned_maps(genomes)
        )

    def test_heterogeneous_dedupes_repeated_genomes(self):
        rng = np.random.default_rng(96)
        terrain = Terrain(
            12,
            12,
            slope=rng.uniform(0.0, 45.0, (12, 12)),
            aspect=rng.uniform(0.0, 360.0, (12, 12)),
        )
        problem = _problem(terrain, seed=97)
        g = SPACE.sample(3, 98)
        batch = np.vstack([g, g, g[:1]])
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(batch), engine(batch))

    def test_unburnable_river(self):
        problem = _problem(Terrain.with_river(16, 16, gap_row=8), seed=9)
        genomes = SPACE.sample(6, 42)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    def test_16_neighbor_stencil(self):
        problem = _problem(Terrain.uniform(14, 14), n_neighbors=16, seed=11)
        genomes = SPACE.sample(6, 43)
        reference = SerialEvaluator(problem.with_backend("reference"))
        engine = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(reference(genomes), engine(genomes))

    def test_burned_maps_bitwise(self):
        problem = _problem(Terrain.uniform(14, 14), seed=13)
        genomes = SPACE.sample(4, 44)
        ref = SimulationEngine.from_problem(problem, backend="reference")
        vec = SimulationEngine.from_problem(problem, backend="vectorized")
        assert np.array_equal(
            ref.burned_maps(genomes), vec.burned_maps(genomes)
        )


class TestFlatKernelsMatchReference:
    @pytest.mark.parametrize("n_neighbors", [8, 16])
    def test_raster_kernel_random_travel(self, n_neighbors):
        rng = np.random.default_rng(n_neighbors)
        offsets = stencil(n_neighbors)
        travel = rng.uniform(0.5, 5.0, size=(len(offsets), 12, 12))
        travel[rng.random(travel.shape) < 0.1] = np.inf
        blocked = rng.random((12, 12)) < 0.15
        seeds = [(6, 6), (2, 3)]
        blocked[6, 6] = blocked[2, 3] = False
        expected = propagate(travel, seeds, horizon=20.0, blocked=blocked)
        got = propagate_raster(
            travel, offsets, seeds, horizon=20.0, blocked=blocked
        )
        assert np.array_equal(expected, got)

    def test_uniform_kernel_matches_constant_raster(self):
        offsets = stencil(8)
        weights = [1.0, 1.5, 2.0, np.inf, 1.0, 3.0, 0.5, 2.5]
        travel = np.broadcast_to(
            np.asarray(weights)[:, None, None], (8, 10, 10)
        ).copy()
        seeds = {(5, 5): 0.0, (0, 0): 2.0}
        expected = propagate(travel, seeds, horizon=12.0)
        got = propagate_uniform(weights, (10, 10), offsets, seeds, horizon=12.0)
        assert np.array_equal(expected, got)

    def test_no_horizon_propagates_to_exhaustion(self):
        offsets = stencil(8)
        weights = [2.0] * 8
        expected = propagate(
            np.full((8, 6, 6), 2.0), [(0, 0)], horizon=None
        )
        got = propagate_uniform(weights, (6, 6), offsets, [(0, 0)], horizon=None)
        assert np.array_equal(expected, got)

    def test_seed_validation_matches_reference(self):
        from repro.errors import SimulationError

        offsets = stencil(8)
        with pytest.raises(SimulationError):
            propagate_uniform([1.0] * 8, (6, 6), offsets, [])
        with pytest.raises(SimulationError):
            propagate_uniform([1.0] * 8, (6, 6), offsets, [(9, 9)])
        with pytest.raises(SimulationError):
            propagate_uniform([1.0] * 8, (6, 6), offsets, {(1, 1): -1.0})

    def test_blocked_seed_is_noop(self):
        offsets = stencil(8)
        blocked = np.zeros((6, 6), dtype=bool)
        blocked[1, 1] = True
        out = propagate_uniform(
            [1.0] * 8, (6, 6), offsets, [(1, 1), (3, 3)], blocked=blocked
        )
        assert np.isinf(out[1, 1])
        assert out[3, 3] == 0.0

    def test_offset_azimuths_cover_compass(self):
        azimuths = [_offset_azimuth_deg(dr, dc) for dr, dc in stencil(8)]
        assert azimuths == pytest.approx([0, 45, 90, 135, 180, 225, 270, 315])
