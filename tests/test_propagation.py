"""Tests for minimum-travel-time propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.firelib.propagation import (
    NEIGHBORS_8,
    NEIGHBORS_16,
    directional_travel_times,
    propagate,
    stencil,
)


def _uniform_travel(n=7, ros=10.0, cell_ft=100.0, n_neighbors=8):
    shape = (n, n)
    return directional_travel_times(
        np.full(shape, ros),
        np.zeros(shape),
        np.zeros(shape),
        cell_ft,
        n_neighbors=n_neighbors,
    )


class TestStencil:
    def test_sizes(self):
        assert len(NEIGHBORS_8) == 8
        assert len(NEIGHBORS_16) == 16
        assert stencil(8) == NEIGHBORS_8
        assert stencil(16) == NEIGHBORS_16

    def test_invalid_raises(self):
        with pytest.raises(SimulationError):
            stencil(4)

    def test_offsets_unique(self):
        assert len(set(NEIGHBORS_16)) == 16


class TestDirectionalTravelTimes:
    def test_shape(self):
        tt = _uniform_travel(5)
        assert tt.shape == (8, 5, 5)

    def test_uniform_circle_times(self):
        # eccentricity 0: cardinal neighbours take cell/ros, diagonals √2×
        tt = _uniform_travel(3, ros=10.0, cell_ft=100.0)
        assert tt[0, 1, 1] == pytest.approx(10.0)  # N
        assert tt[1, 1, 1] == pytest.approx(10.0 * np.sqrt(2))  # NE

    def test_heading_direction_fastest(self):
        shape = (3, 3)
        tt = directional_travel_times(
            np.full(shape, 10.0),
            np.full(shape, 90.0),  # heading East
            np.full(shape, 0.9),
            100.0,
        )
        east, west = tt[2, 1, 1], tt[6, 1, 1]
        assert east < west

    def test_zero_ros_infinite(self):
        tt = directional_travel_times(
            np.zeros((3, 3)), np.zeros((3, 3)), np.zeros((3, 3)), 100.0
        )
        assert np.isinf(tt).all()

    def test_blocked_source_emits_nothing(self):
        blocked = np.zeros((3, 3), dtype=bool)
        blocked[1, 1] = True
        tt = directional_travel_times(
            np.full((3, 3), 5.0),
            np.zeros((3, 3)),
            np.zeros((3, 3)),
            100.0,
            blocked=blocked,
        )
        assert np.isinf(tt[:, 1, 1]).all()
        assert np.isfinite(tt[:, 0, 0]).all()

    def test_bad_cell_size_raises(self):
        with pytest.raises(SimulationError):
            _uniform_travel(cell_ft=0.0)


class TestPropagate:
    def test_center_ignition_symmetric(self):
        tt = _uniform_travel(7)
        times = propagate(tt, [(3, 3)])
        assert times[3, 3] == 0.0
        assert times[3, 0] == times[3, 6] == times[0, 3] == times[6, 3]
        assert np.isfinite(times).all()

    def test_times_grow_with_distance(self):
        tt = _uniform_travel(9)
        times = propagate(tt, [(4, 4)])
        assert times[4, 5] < times[4, 6] < times[4, 7] < times[4, 8]

    def test_horizon_clips(self):
        tt = _uniform_travel(9, ros=10.0, cell_ft=100.0)  # 10 min/cell
        times = propagate(tt, [(4, 4)], horizon=25.0)
        assert np.isfinite(times[4, 6])  # 2 cells = 20 min
        assert np.isinf(times[4, 7])  # 3 cells = 30 min > horizon

    def test_multiple_ignitions_take_min(self):
        tt = _uniform_travel(9)
        t_one = propagate(tt, [(0, 0)])
        t_two = propagate(tt, [(0, 0), (8, 8)])
        assert (t_two <= t_one + 1e-12).all()

    def test_delayed_ignition_mapping(self):
        tt = _uniform_travel(5, ros=10.0, cell_ft=100.0)
        times = propagate(tt, {(2, 2): 7.0})
        assert times[2, 2] == 7.0
        assert times[2, 3] == pytest.approx(17.0)

    def test_blocked_cells_never_burn(self):
        blocked = np.zeros((7, 7), dtype=bool)
        blocked[:, 3] = True  # wall
        tt = directional_travel_times(
            np.full((7, 7), 10.0),
            np.zeros((7, 7)),
            np.zeros((7, 7)),
            100.0,
            blocked=blocked,
        )
        times = propagate(tt, [(3, 0)], blocked=blocked)
        assert np.isinf(times[:, 3]).all()
        assert np.isinf(times[:, 4:]).all()  # wall separates the halves

    def test_wall_with_gap_leaks(self):
        blocked = np.zeros((7, 7), dtype=bool)
        blocked[:, 3] = True
        blocked[3, 3] = False  # ford
        tt = directional_travel_times(
            np.full((7, 7), 10.0),
            np.zeros((7, 7)),
            np.zeros((7, 7)),
            100.0,
            blocked=blocked,
        )
        times = propagate(tt, [(3, 0)], blocked=blocked)
        assert np.isfinite(times[3, 6])

    def test_igniting_blocked_cell_is_noop(self):
        blocked = np.zeros((3, 3), dtype=bool)
        blocked[1, 1] = True
        tt = _uniform_travel(3)
        times = propagate(tt, [(1, 1)], blocked=blocked)
        assert np.isinf(times).all()

    def test_no_ignitions_raises(self):
        with pytest.raises(SimulationError):
            propagate(_uniform_travel(3), [])

    def test_out_of_bounds_ignition_raises(self):
        with pytest.raises(SimulationError):
            propagate(_uniform_travel(3), [(5, 5)])

    def test_negative_start_time_raises(self):
        with pytest.raises(SimulationError):
            propagate(_uniform_travel(3), {(0, 0): -1.0})

    def test_16_neighbor_rounder_fire(self):
        # The 16-stencil reduces octagonal distortion: the burned disc at
        # a fixed horizon is closer to a true circle (smaller max/min
        # radius ratio along lattice directions).
        def roundness(n_neighbors):
            tt = _uniform_travel(41, ros=10.0, cell_ft=10.0, n_neighbors=n_neighbors)
            times = propagate(tt, [(20, 20)], horizon=15.0)
            b = np.isfinite(times)
            rows, cols = np.nonzero(b)
            r = np.hypot(rows - 20, cols - 20)
            return r.max() / max(r[r > 0].min(), 1)

        assert roundness(16) <= roundness(8) + 1e-9

    def test_dimension_checks(self):
        with pytest.raises(SimulationError):
            propagate(np.zeros((8, 4)), [(0, 0)])
        with pytest.raises(SimulationError):
            propagate(np.zeros((5, 4, 4)), [(0, 0)])  # 5 directions
        with pytest.raises(SimulationError):
            propagate(
                _uniform_travel(4), [(0, 0)], blocked=np.zeros((3, 3), dtype=bool)
            )
