"""Tests for the predictive unit cost model (`repro.experiments.costs`)
and the cost-aware scheduling helpers of `repro.experiments.work`.

The scheduling contract under test: cost estimates decide *where and
in what chunks* cells run — never what they record — so every
cost-driven split/merge/assignment must preserve the exact cell
multiset, be deterministic for a given model snapshot (two schedulers
built from identical state make identical decisions), and produce
bitwise-identical stores in the parity view at any granularity.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
    UnitCostModel,
    WorkSet,
    WorkUnit,
    record_key,
)
from repro.experiments.costs import (
    load_cost_model,
    plan_cost_model,
    save_cost_model,
    seed_plan_priors,
)
from repro.experiments.store import parity_view
from repro.experiments.work import (
    assign_units_by_cost,
    improve_assignment,
    merge_group_units,
    split_units_by_cost,
)


def _plan(**overrides) -> ExperimentPlan:
    values = dict(
        name="costs-test",
        systems=("ess", "ess-ns"),
        cases=(
            CaseSpec("grassland", size=20, steps=2),
            CaseSpec("river_gap", size=20, steps=2),
        ),
        seeds=(0, 1),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=8, generations=2, session_cache_size=2048
        ),
    )
    values.update(overrides)
    return ExperimentPlan(**values)


# ----------------------------------------------------------------------
# The model itself
# ----------------------------------------------------------------------
class TestUnitCostModel:
    def test_validation(self):
        with pytest.raises(ReproError, match="alpha"):
            UnitCostModel(alpha=0.0)
        with pytest.raises(ReproError, match="alpha"):
            UnitCostModel(alpha=1.5)
        with pytest.raises(ReproError, match="positive"):
            UnitCostModel(default_rate=0.0)
        with pytest.raises(ReproError, match="prior work"):
            UnitCostModel().set_prior_work("k", 0.0)

    def test_observe_ema(self):
        model = UnitCostModel(alpha=0.5)
        model.observe("k", 4, 2.0)  # 0.5 s/cell
        assert model.rate("k") == pytest.approx(0.5)
        model.observe("k", 2, 2.0)  # 1.0 s/cell sample
        assert model.rate("k") == pytest.approx(0.75)
        assert model.samples["k"] == 2
        # degenerate reports are dropped, not folded as zeros
        model.observe("k", 0, 1.0)
        model.observe("k", 4, 0.0)
        assert model.samples["k"] == 2

    def test_observe_lower_bound_only_raises_the_estimate(self):
        """An in-flight unit's elapsed time bounds its cost from below:
        a long-running unit teaches the model early, a half-done unit
        never drags the rate down."""
        model = UnitCostModel(alpha=0.5)
        model.observe("k", 1, 1.0)
        model.observe_lower_bound("k", 1, 0.1)  # half-done: ignored
        assert model.rate("k") == pytest.approx(1.0)
        model.observe_lower_bound("k", 1, 3.0)  # running long: folded
        assert model.rate("k") == pytest.approx(2.0)

    def test_rate_fallback_chain(self):
        model = UnitCostModel(
            default_rate=7.0, default_engine_rate=1e-6
        )
        # nothing known at all: the fixed default
        assert model.rate("k") == pytest.approx(7.0)
        # a prior magnitude without engine rates: default engine rate
        model.set_prior_work("k", 2_000_000.0)
        assert model.rate("k") == pytest.approx(2.0)
        # folded engine rates rescale the prior
        model.fold_engine({"kernel": 2e-6})
        assert model.rate("k") == pytest.approx(4.0)
        # measured beats everything
        model.observe("k", 10, 5.0)
        assert model.rate("k") == pytest.approx(0.5)
        # an unknown kernel without a prior borrows the measured mean
        assert model.rate("other") == pytest.approx(0.5)

    def test_fold_engine_ignores_malformed_wire_input(self):
        model = UnitCostModel()
        model.fold_engine(None)
        model.fold_engine("garbage")
        model.fold_engine({"k": "soon", "j": -1.0, "ok": 2e-6})
        assert model.engine == {"ok": pytest.approx(2e-6)}

    def test_min_cells_for_tracks_measured_rate(self):
        model = UnitCostModel()
        model.observe("k", 10, 1.0)  # 0.1 s/cell
        assert model.min_cells_for("k", 1.0) == 10
        assert model.min_cells_for("k", 1.0, floor=16) == 16
        assert model.min_cells_for("k", 0.0, floor=3) == 3
        assert model.min_cells_for("k", 1e-9) == 1

    def test_dict_round_trip(self):
        model = UnitCostModel(alpha=0.4)
        model.observe("a:ref", 4, 2.0)
        model.set_prior_work("b:ref", 100.0)
        model.fold_engine({"kernel": 3e-7})
        clone = UnitCostModel.from_dict(model.to_dict())
        assert clone.to_dict() == model.to_dict()
        assert clone.rate("a:ref") == model.rate("a:ref")
        assert clone.rate("b:ref") == model.rate("b:ref")

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ReproError, match="malformed cost model"):
            UnitCostModel.from_dict({"rates": {"k": "soon"}})

    def test_plan_cost_model_seeds_priors_per_group(self):
        plan = _plan()
        model = plan_cost_model(plan)
        keys = {
            UnitCostModel.kernel_key(case.name, backend)
            for (case, backend), _ in plan.groups()
        }
        assert set(model.prior_work) == keys
        # a bigger case must carry a bigger prior (relative ordering is
        # the whole point of plan seeding)
        big = _plan(
            cases=(
                CaseSpec("grassland", size=20, steps=2),
                CaseSpec("river_gap", size=40, steps=2),
            )
        )
        big_model = plan_cost_model(big)
        assert (
            big_model.prior_work["river_gap:vectorized"]
            > big_model.prior_work["grassland:vectorized"]
        )


# ----------------------------------------------------------------------
# Cost-aware splitting / merging / assignment
# ----------------------------------------------------------------------
def _units(*sizes: int) -> list[WorkUnit]:
    return [
        WorkUnit(g, tuple(("s", f"c{g}", i, "b") for i in range(n)))
        for g, n in enumerate(sizes)
    ]


class TestCostScheduling:
    def test_split_preserves_cells_exactly(self):
        units = _units(7, 3, 5)
        rate_of = {0: 1.0, 1: 10.0, 2: 0.1}.__getitem__
        out = split_units_by_cost(units, 4, rate_of)
        assert sorted(c for u in out for c in u.cells) == sorted(
            c for u in units for c in u.cells
        )
        for piece in out:
            assert set(piece.cells) <= set(units[piece.group].cells)

    def test_expensive_groups_yield_more_pieces(self):
        units = _units(8, 8)
        rate_of = {0: 10.0, 1: 0.01}.__getitem__
        out = split_units_by_cost(units, 4, rate_of)
        pieces = {g: [u for u in out if u.group == g] for g in (0, 1)}
        assert len(pieces[0]) > len(pieces[1])
        assert len(pieces[1]) == 1  # the cheap group stays whole

    def test_split_floor_semantics_match_split_units(self):
        units = _units(8)
        out = split_units_by_cost(units, 8, lambda g: 1.0, 3)
        assert all(u.n_cells >= 3 for u in out)
        assert split_units_by_cost(units, 8, lambda g: 1.0, 0) == list(
            units
        )
        with pytest.raises(ReproError, match="parts"):
            split_units_by_cost(units, 0, lambda g: 1.0)

    def test_split_deterministic_from_identical_snapshots(self):
        """Two schedulers built from identical serialized cost state
        must carve identically — the property that makes cost-aware
        scheduling reproducible and debuggable."""
        source = UnitCostModel()
        source.observe("g0", 4, 2.0)
        source.observe("g1", 4, 0.1)
        payload = source.to_dict()
        units = _units(9, 6)
        results = []
        for _ in range(2):
            model = UnitCostModel.from_dict(payload)
            rate_of = lambda g: model.rate(f"g{g}")  # noqa: E731
            split = split_units_by_cost(units, 3, rate_of)
            results.append(
                (
                    [u.to_dict() for u in split],
                    [
                        [u.to_dict() for u in bucket]
                        for bucket in assign_units_by_cost(
                            split, 3, rate_of
                        )
                    ],
                )
            )
        assert results[0] == results[1]

    def test_merge_group_units(self):
        units = _units(6, 2)
        a, b = units[0].split()
        merged = merge_group_units([a, units[1], b])
        assert [u.group for u in merged] == [0, 1]  # first-seen order
        assert sorted(merged[0].cells) == sorted(units[0].cells)
        assert merged[1] == units[1]

    def test_improve_assignment_reduces_makespan(self):
        units = _units(1, 1, 1, 1)
        cost = {0: 8.0, 1: 7.0, 2: 1.0, 3: 1.0}

        def cost_of(u: WorkUnit) -> float:
            return cost[u.group]

        # a deliberately bad seed: both heavy units in one bucket
        bad = [[units[0], units[1]], [units[2], units[3]]]
        out = improve_assignment(bad, cost_of)
        loads = [sum(cost_of(u) for u in b) for b in out]
        assert max(loads) < 15.0
        assert sorted(u.group for b in out for u in b) == [0, 1, 2, 3]

    def test_assign_units_by_cost_balances_time_not_cells(self):
        # 1 expensive 4-cell unit vs 4 cheap 4-cell units: count-based
        # assignment would pair the expensive one with a cheap one
        units = _units(4, 4, 4, 4, 4)
        rate_of = {0: 10.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}.__getitem__
        buckets = assign_units_by_cost(units, 2, rate_of)
        assert all(buckets)
        heavy = next(
            b for b in buckets if any(u.group == 0 for u in b)
        )
        assert len(heavy) == 1  # the expensive unit rides alone
        with pytest.raises(ReproError, match="parts"):
            assign_units_by_cost(units, 0, rate_of)

    def test_never_more_buckets_than_units(self):
        buckets = assign_units_by_cost(_units(2, 2), 5, lambda g: 1.0)
        assert len(buckets) == 2 and all(buckets)


# ----------------------------------------------------------------------
# Parity: cost-driven unit boundaries never change any record
# ----------------------------------------------------------------------
class TestCostSplitParity:
    def test_forced_uneven_cost_split_is_results_inert(self, tmp_path):
        """Property: run the same plan whole and carved by a wildly
        uneven cost model; the stores agree bitwise in the parity
        view, cell for cell."""
        plan = _plan(seeds=(0,))
        whole = ResultsStore(tmp_path / "whole.jsonl")
        ExperimentRunner(store=whole).run(plan)

        rate_of = {0: 50.0, 1: 0.001}.__getitem__
        units = split_units_by_cost(
            WorkSet.compile(plan, set()).pending(), 4, rate_of
        )
        assert len(units) > len(plan.groups()) - 1  # actually split
        carved = ResultsStore(tmp_path / "carved.jsonl")
        runner = ExperimentRunner(store=carved)
        # buckets run sequentially in-process: same records must land
        # regardless of the assignment shape
        for bucket in assign_units_by_cost(units, 3, rate_of):
            runner.run_units(plan, bucket, carved.completed())

        def normalized(store: ResultsStore) -> list[dict]:
            return [
                parity_view(r)
                for r in sorted(store.records(), key=record_key)
            ]

        assert normalized(carved) == normalized(whole)


# ----------------------------------------------------------------------
# Snapshot persistence: the sidecar a coordinator leaves for its heir
# ----------------------------------------------------------------------
class TestCostSnapshotPersistence:
    def test_save_load_round_trip(self, tmp_path):
        model = UnitCostModel()
        model.observe("grassland:vectorized", 10, 2.0)
        model.observe("river_gap:vectorized", 4, 1.0)
        model.fold_engine({"spread": 1e-7})
        model.set_prior_work("forest:vectorized", 123.0)
        path = tmp_path / "costs.json"
        save_cost_model(model, path)
        restored = load_cost_model(path)
        assert restored is not None
        assert restored.to_dict() == model.to_dict()
        # identical snapshots make identical scheduling decisions
        assert restored.estimate("grassland:vectorized", 7) == (
            model.estimate("grassland:vectorized", 7)
        )

    def test_missing_snapshot_is_a_cold_start(self, tmp_path):
        assert load_cost_model(tmp_path / "absent.json") is None

    def test_corrupt_snapshot_is_a_cold_start(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        assert load_cost_model(path) is None
        path.write_text('["a", "list"]', encoding="utf-8")
        assert load_cost_model(path) is None

    def test_seed_plan_priors_overwrite_modes(self):
        plan = _plan()
        model = UnitCostModel()
        seed_plan_priors(model, plan)
        kernel = UnitCostModel.kernel_key("grassland", "vectorized")
        assert kernel in model.prior_work
        original = model.prior_work[kernel]
        model.prior_work[kernel] = original * 10
        # overwrite=False respects the refined prior...
        seed_plan_priors(model, plan, overwrite=False)
        assert model.prior_work[kernel] == original * 10
        # ...overwrite=True resets it to the plan's budget estimate
        seed_plan_priors(model, plan, overwrite=True)
        assert model.prior_work[kernel] == original

    def test_fleet_executor_restores_and_persists_snapshot(self, tmp_path):
        """A FleetExecutor pointed at a sidecar restores its measured
        rates before serving and writes the refined model on finish."""
        import threading

        from repro.distributed import FleetExecutor, run_worker

        snapshot = tmp_path / "fleet-costs.json"
        primed = UnitCostModel()
        primed.observe("grassland:vectorized", 100, 5.0)
        save_cost_model(primed, snapshot)

        plan = _plan(
            seeds=(0,), cases=(CaseSpec("grassland", size=20, steps=2),)
        )
        store = ResultsStore(tmp_path / "results.jsonl")
        threads: list[threading.Thread] = []

        def on_bound(address):
            thread = threading.Thread(
                target=run_worker,
                args=(address,),
                kwargs={
                    "store_path": tmp_path / "worker.jsonl",
                    "worker_id": "snapshot-w0",
                },
            )
            thread.start()
            threads.append(thread)

        executor = FleetExecutor(
            lease_timeout=10.0,
            poll_interval=0.05,
            timeout=120.0,
            cost_snapshot=snapshot,
            on_bound=on_bound,
        )
        result = ExperimentRunner(store=store).run(plan, executor=executor)
        for thread in threads:
            thread.join(timeout=60)
        assert len(result.records) == plan.n_runs
        assert executor.cost_model is not None
        # the restored measured rate was live while serving (it was
        # then refined by this run's own unit timings)
        assert "grassland:vectorized" in executor.cost_model.rates
        # and the refined model was written back on finish
        rewritten = load_cost_model(snapshot)
        assert rewritten is not None
        assert rewritten.samples["grassland:vectorized"] >= 1
