"""Tests for the FireSimulator facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.firelib.simulator import METERS_TO_FEET, FireSimulator
from repro.grid.terrain import Terrain


class TestSimulate:
    def test_basic_run(self, terrain, scenario):
        sim = FireSimulator(terrain)
        res = sim.simulate(scenario, [terrain.center()], horizon=30.0)
        assert res.ignition.shape == terrain.shape
        assert res.burned().sum() > 1
        assert res.ros_max_ftmin > 0
        assert res.horizon == 30.0

    def test_deterministic(self, terrain, scenario):
        sim = FireSimulator(terrain)
        a = sim.simulate(scenario, [(5, 5)], horizon=20.0)
        b = sim.simulate(scenario, [(5, 5)], horizon=20.0)
        assert np.array_equal(a.ignition.times, b.ignition.times)

    def test_wind_biases_direction(self, terrain, scenario):
        sim = FireSimulator(terrain)
        east = sim.simulate(
            scenario.replace(wind_dir=90.0, slope=0.0), [(12, 12)], horizon=25.0
        )
        rows, cols = np.nonzero(east.burned())
        assert cols.mean() > 12.5  # pushed east
        assert abs(rows.mean() - 12.0) < 1.0

    def test_wet_scenario_does_not_spread(self, terrain, wet_scenario):
        sim = FireSimulator(terrain)
        res = sim.simulate(wet_scenario, [(12, 12)], horizon=60.0)
        assert res.burned().sum() == 1  # only the ignition cell

    def test_longer_horizon_burns_more(self, terrain, scenario):
        sim = FireSimulator(terrain)
        short = sim.simulate(scenario, [(12, 12)], horizon=10.0)
        long = sim.simulate(scenario, [(12, 12)], horizon=30.0)
        assert long.burned().sum() > short.burned().sum()
        # growth is monotone: everything burned early is burned late
        assert not (short.burned() & ~long.burned()).any()

    @pytest.mark.parametrize("horizon", [0.0, -5.0, float("inf")])
    def test_bad_horizon_raises(self, terrain, scenario, horizon):
        with pytest.raises(SimulationError):
            FireSimulator(terrain).simulate(scenario, [(1, 1)], horizon)

    def test_bad_stencil_raises(self, terrain):
        with pytest.raises(SimulationError):
            FireSimulator(terrain, n_neighbors=6)

    def test_unburnable_mask_respected(self, scenario):
        t = Terrain.with_river(20, 20, river_col=10, width=1)
        sim = FireSimulator(t)
        res = sim.simulate(
            scenario.replace(wind_speed=20.0), [(10, 2)], horizon=120.0
        )
        assert not res.burned()[:, 10].any()
        assert not res.burned()[:, 11:].any()

    def test_heterogeneous_fuel_changes_speed(self, scenario):
        # left half grass (1), right half timber litter (8): fire
        # ignited at the boundary moves farther into the grass.
        t = Terrain.with_fuel_patches(
            21, 21, base_model=1, patches=[(slice(None), slice(10, None), 8)]
        )
        sim = FireSimulator(t)
        res = sim.simulate(
            scenario.replace(wind_speed=0.0, slope=0.0), [(10, 9)], horizon=120.0
        )
        b = res.burned()
        left = b[:, :9].sum()
        right = b[:, 10:].sum()
        assert left > right

    def test_terrain_slope_raster_overrides_scenario(self, scenario):
        # Per-cell aspect raster makes the east half upslope-east; fire
        # ignited center drifts east even with the scenario saying flat.
        slope = np.full((21, 21), 30.0)
        aspect = np.full((21, 21), 270.0)  # faces west → upslope east
        t = Terrain(rows=21, cols=21, cell_size=30.0, slope=slope, aspect=aspect)
        sim = FireSimulator(t)
        res = sim.simulate(
            scenario.replace(wind_speed=0.0, slope=0.0), [(10, 10)], horizon=20.0
        )
        rows, cols = np.nonzero(res.burned())
        assert cols.mean() > 10.2


class TestSimulateFromBurned:
    def test_continues_fire(self, terrain, scenario):
        sim = FireSimulator(terrain)
        first = sim.simulate(scenario, [(12, 12)], horizon=15.0)
        cont = sim.simulate_from_burned(scenario, first.burned(), horizon=15.0)
        assert cont.burned().sum() > first.burned().sum()
        # everything already burned stays burned (seeded at t=0)
        assert (cont.burned() & first.burned()).sum() == first.burned().sum()

    def test_empty_mask_raises(self, terrain, scenario):
        with pytest.raises(SimulationError):
            FireSimulator(terrain).simulate_from_burned(
                scenario, np.zeros(terrain.shape, dtype=bool), 10.0
            )

    def test_shape_mismatch_raises(self, terrain, scenario):
        with pytest.raises(SimulationError):
            FireSimulator(terrain).simulate_from_burned(
                scenario, np.ones((3, 3), dtype=bool), 10.0
            )


class TestUnits:
    def test_meters_to_feet(self):
        assert METERS_TO_FEET == pytest.approx(3.280839895)

    def test_smaller_cells_same_physical_spread(self, scenario):
        # Halving the cell size while doubling the cell count keeps the
        # physical burned extent roughly constant.
        t30 = Terrain.uniform(31, 31, cell_size=30.0)
        t15 = Terrain.uniform(61, 61, cell_size=15.0)
        b30 = FireSimulator(t30).simulate(scenario, [(15, 15)], 20.0).burned()
        b15 = FireSimulator(t15).simulate(scenario, [(30, 30)], 20.0).burned()
        area30 = b30.sum() * 30.0**2
        area15 = b15.sum() * 15.0**2
        assert area15 == pytest.approx(area30, rel=0.35)
