"""Tests for the sweep harness and the ESSIM-DE solution policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweeps import SweepResult, run_sweep
from repro.ea.de import DEConfig
from repro.ea.ga import GAConfig
from repro.errors import ReproError
from repro.parallel.islands import IslandModelConfig
from repro.systems import ESS, ESSIMDE, ESSConfig, ESSIMDEConfig


def _factories():
    return {
        "ESS": lambda: ESS(
            ESSConfig(ga=GAConfig(population_size=8), max_generations=2)
        ),
    }


class TestRunSweep:
    def test_cells_cover_grid(self, small_fire):
        sweep = run_sweep(
            _factories(), {"small": small_fire}, seeds=[0, 1]
        )
        assert len(sweep.cells) == 1
        cell = sweep.cell("ESS", "small")
        assert len(cell.qualities) == 2
        assert 0.0 <= cell.mean <= 1.0
        assert cell.std >= 0.0
        assert cell.evaluations > 0

    def test_labels(self, small_fire):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0])
        assert sweep.systems() == ["ESS"]
        assert sweep.cases() == ["small"]
        assert sweep.winner("small") == "ESS"

    def test_missing_cell_raises(self, small_fire):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0])
        with pytest.raises(ReproError):
            sweep.cell("ESS", "other")
        with pytest.raises(ReproError):
            sweep.winner("other")

    @pytest.mark.parametrize(
        "factories,cases,seeds",
        [({}, {"x": None}, [0]), ({"a": None}, {}, [0]), ({"a": None}, {"x": None}, [])],
    )
    def test_empty_inputs_raise(self, factories, cases, seeds):
        with pytest.raises(ReproError):
            run_sweep(factories, cases, seeds)

    def test_table_rows_schema(self, small_fire):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0])
        rows = sweep.table_rows()
        assert rows[0][0] == "ESS"
        assert "±" in rows[0][2]

    def test_json_roundtrip(self, small_fire, tmp_path):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0, 1])
        path = tmp_path / "sweep.json"
        sweep.save_json(path)
        back = SweepResult.load_json(path)
        assert back.cell("ESS", "small").qualities == sweep.cell(
            "ESS", "small"
        ).qualities

    def test_malformed_payload_raises(self):
        with pytest.raises(ReproError):
            SweepResult.from_dict({"cells": [{"system": "x"}]})


class TestESSIMDESolutionPolicy:
    def _system(self, policy):
        return ESSIMDE(
            ESSIMDEConfig(
                de=DEConfig(population_size=8),
                islands=IslandModelConfig(n_islands=2, migration_interval=2),
                max_generations=2,
                solution_policy=policy,
            )
        )

    def test_best_only_halves_solution_set(self, small_fire):
        full = self._system("population").run(small_fire, rng=3)
        half = self._system("best_only").run(small_fire, rng=3)
        for f, h in zip(full.steps, half.steps):
            assert h.n_solutions == f.n_solutions // 2

    def test_bad_policy_raises(self):
        with pytest.raises(ValueError):
            ESSIMDEConfig(solution_policy="bogus")

    def test_both_policies_produce_predictions(self, small_fire):
        for policy in ("population", "best_only"):
            run = self._system(policy).run(small_fire, rng=1)
            q = run.qualities()
            assert np.isfinite(q[1:]).all()
