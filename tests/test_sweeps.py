"""Tests for the sweep harness and the ESSIM-DE solution policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweeps import SweepResult, run_sweep
from repro.ea.de import DEConfig
from repro.ea.ga import GAConfig
from repro.errors import ReproError
from repro.parallel.islands import IslandModelConfig
from repro.systems import ESS, ESSIMDE, ESSConfig, ESSIMDEConfig


def _factories():
    return {
        "ESS": lambda: ESS(
            ESSConfig(ga=GAConfig(population_size=8), max_generations=2)
        ),
    }


class TestRunSweep:
    def test_cells_cover_grid(self, small_fire):
        sweep = run_sweep(
            _factories(), {"small": small_fire}, seeds=[0, 1]
        )
        assert len(sweep.cells) == 1
        cell = sweep.cell("ESS", "small")
        assert len(cell.qualities) == 2
        assert 0.0 <= cell.mean <= 1.0
        assert cell.std >= 0.0
        assert cell.evaluations > 0

    def test_labels(self, small_fire):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0])
        assert sweep.systems() == ["ESS"]
        assert sweep.cases() == ["small"]
        assert sweep.winner("small") == "ESS"

    def test_missing_cell_raises(self, small_fire):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0])
        with pytest.raises(ReproError):
            sweep.cell("ESS", "other")
        with pytest.raises(ReproError):
            sweep.winner("other")

    @pytest.mark.parametrize(
        "factories,cases,seeds",
        [({}, {"x": None}, [0]), ({"a": None}, {}, [0]), ({"a": None}, {"x": None}, [])],
    )
    def test_empty_inputs_raise(self, factories, cases, seeds):
        with pytest.raises(ReproError):
            run_sweep(factories, cases, seeds)

    def test_table_rows_schema(self, small_fire):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0])
        rows = sweep.table_rows()
        assert rows[0][0] == "ESS"
        assert "±" in rows[0][2]

    def test_json_roundtrip(self, small_fire, tmp_path):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0, 1])
        path = tmp_path / "sweep.json"
        sweep.save_json(path)
        back = SweepResult.load_json(path)
        assert back.cell("ESS", "small").qualities == sweep.cell(
            "ESS", "small"
        ).qualities

    def test_malformed_payload_raises(self):
        with pytest.raises(ReproError):
            SweepResult.from_dict({"cells": [{"system": "x"}]})

    def test_serialization_order_is_deterministic(self):
        """Regression: cell order in the payload must not depend on
        construction (dict/iteration) order — serialize sorts by
        (system, case) so round-trips agree across Python versions."""
        from repro.analysis.sweeps import SweepCell

        cells = [
            SweepCell("B", "y", (0.1,), 1, 0.1),
            SweepCell("A", "z", (0.2,), 1, 0.1),
            SweepCell("B", "x", (0.3,), 1, 0.1),
            SweepCell("A", "x", (0.4,), 1, 0.1),
        ]
        forward = SweepResult(cells=list(cells))
        shuffled = SweepResult(cells=list(reversed(cells)))
        assert forward.to_dict() == shuffled.to_dict()
        ordered = [
            (c["system"], c["case"]) for c in forward.to_dict()["cells"]
        ]
        assert ordered == sorted(ordered)
        back = SweepResult.from_dict(forward.to_dict())
        assert back.to_dict() == forward.to_dict()
        assert back.systems() == ["A", "B"]  # first-seen == sorted now
        for cell in cells:
            assert (
                back.cell(cell.system, cell.case).qualities == cell.qualities
            )

    def test_save_json_bytes_stable(self, small_fire, tmp_path):
        sweep = run_sweep(_factories(), {"small": small_fire}, seeds=[0])
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        sweep.save_json(a)
        SweepResult.load_json(a).save_json(b)
        assert a.read_text() == b.read_text()


class TestSweepExperimentIntegration:
    def test_sweep_matches_pre_experiment_layer_execution(self, small_fire):
        """Delegating to the shared-session runner must not change the
        aggregated numbers: same seeds → same per-run qualities."""
        factories = _factories()
        delegated = run_sweep(factories, {"small": small_fire}, seeds=[0, 1])
        isolated = run_sweep(
            factories, {"small": small_fire}, seeds=[0, 1],
            share_sessions=False,
        )
        assert (
            delegated.cell("ESS", "small").qualities
            == isolated.cell("ESS", "small").qualities
        )
        expected = tuple(
            factories["ESS"]().run(small_fire, rng=s).mean_quality()
            for s in (0, 1)
        )
        assert delegated.cell("ESS", "small").qualities == expected

    def test_sweep_streams_and_resumes_through_store(self, small_fire, tmp_path):
        from repro.experiments import ResultsStore

        store = ResultsStore(tmp_path / "sweep.jsonl")
        first = run_sweep(
            _factories(), {"small": small_fire}, seeds=[0, 1], store=store
        )
        assert len(store.records()) == 2
        again = run_sweep(
            _factories(), {"small": small_fire}, seeds=[0, 1], store=store
        )
        assert len(store.records()) == 2  # nothing re-ran
        assert (
            again.cell("ESS", "small").qualities
            == first.cell("ESS", "small").qualities
        )
        rebuilt = SweepResult.from_store(store)
        assert (
            rebuilt.cell("ESS", "small").qualities
            == first.cell("ESS", "small").qualities
        )

    def test_multi_backend_records_keep_separate_cells(self):
        """Regression: records from different backends must not merge
        into one cell (duplicated qualities, halved std)."""
        records = [
            {
                "system": "ess", "case": "c", "seed": s, "backend": b,
                "quality": q, "evaluations": 10, "run_seconds": 1.0,
            }
            for b, q in (("reference", 0.5), ("vectorized", 0.5))
            for s in (0, 1)
        ]
        sweep = SweepResult.from_records(records, systems=["ess"], cases=["c"])
        assert sweep.systems() == ["ess[reference]", "ess[vectorized]"]
        for cell in sweep.cells:
            assert len(cell.qualities) == 2  # one entry per seed, not four
            assert cell.evaluations == 20
        single = SweepResult.from_records(
            [r for r in records if r["backend"] == "reference"]
        )
        assert single.systems() == ["ess"]  # no decoration for one backend

    def test_duplicate_records_count_once(self):
        """Regression: concatenated stores can repeat a run key; each
        seed must contribute exactly one quality to its cell."""
        record = {
            "system": "ess", "case": "c", "seed": 0, "backend": "reference",
            "quality": 0.5, "evaluations": 10, "run_seconds": 1.0,
        }
        sweep = SweepResult.from_records([record, dict(record)])
        cell = sweep.cell("ess", "c")
        assert cell.qualities == (0.5,)
        assert cell.evaluations == 10

    def test_winner_skips_nan_cells(self):
        """Regression: a NaN-mean cell listed first must not beat a
        cell with a real quality (max over raw floats keeps NaN)."""
        from repro.analysis.sweeps import SweepCell

        sweep = SweepResult(
            cells=[
                SweepCell("bad", "c", (float("nan"),), 1, 0.1),
                SweepCell("good", "c", (0.9,), 1, 0.1),
            ]
        )
        assert sweep.winner("c") == "good"
        all_nan = SweepResult(
            cells=[SweepCell("bad", "c", (float("nan"),), 1, 0.1)]
        )
        with pytest.raises(ReproError, match="valid mean"):
            all_nan.winner("c")
        from repro.analysis.reporting import format_sweep

        assert "c: —" in format_sweep(all_nan)  # report, don't crash

    def test_distinct_single_backend_labels_stay_plain(self):
        """Labels each pinned to one backend keep their names even when
        the record set spans several backends overall."""
        records = [
            {
                "system": sys_, "case": "c", "seed": 0, "backend": b,
                "quality": 0.5, "evaluations": 10, "run_seconds": 1.0,
            }
            for sys_, b in (("ESS-ref", "reference"), ("ESS-vec", "vectorized"))
        ]
        sweep = SweepResult.from_records(
            records, systems=["ESS-ref", "ESS-vec"], cases=["c"]
        )
        assert sweep.systems() == ["ESS-ref", "ESS-vec"]
        assert len(sweep.cell("ESS-ref", "c").qualities) == 1

    def test_mixed_config_records_refuse_one_cell(self):
        """Regression: disjoint-seed records from different budgets
        share no resume key, so aggregation is the last line of defence
        against silently averaging incomparable runs."""
        records = [
            {
                "system": "ess", "case": "c", "seed": s, "backend": "reference",
                "config": cfg, "quality": 0.5, "evaluations": 10,
                "run_seconds": 1.0,
            }
            for cfg, s in (("aaaa", 0), ("bbbb", 1))
        ]
        with pytest.raises(ReproError, match="mix different configurations"):
            SweepResult.from_records(records)

    def test_sweep_store_rejects_rebudgeted_factories(self, small_fire, tmp_path):
        """Regression: the resume digest must cover the EA budget, not
        just the engine config — a re-budgeted factory over an old
        store must refuse instead of serving stale cells."""
        from repro.experiments import ResultsStore

        store = ResultsStore(tmp_path / "sweep.jsonl")
        run_sweep(_factories(), {"small": small_fire}, seeds=[0], store=store)
        rebudgeted = {
            "ESS": lambda: ESS(
                ESSConfig(ga=GAConfig(population_size=8), max_generations=4)
            ),
        }
        with pytest.raises(ReproError, match="different configuration"):
            run_sweep(rebudgeted, {"small": small_fire}, seeds=[0], store=store)


class TestESSIMDESolutionPolicy:
    def _system(self, policy):
        return ESSIMDE(
            ESSIMDEConfig(
                de=DEConfig(population_size=8),
                islands=IslandModelConfig(n_islands=2, migration_interval=2),
                max_generations=2,
                solution_policy=policy,
            )
        )

    def test_best_only_halves_solution_set(self, small_fire):
        full = self._system("population").run(small_fire, rng=3)
        half = self._system("best_only").run(small_fire, rng=3)
        for f, h in zip(full.steps, half.steps):
            assert h.n_solutions == f.n_solutions // 2

    def test_bad_policy_raises(self):
        with pytest.raises(ValueError):
            ESSIMDEConfig(solution_policy="bogus")

    def test_both_policies_produce_predictions(self, small_fire):
        for policy in ("population", "best_only"):
            run = self._system(policy).run(small_fire, rng=1)
            q = run.qualities()
            assert np.isfinite(q[1:]).all()
