"""Tests for the Table I parameter space and Scenario codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import TABLE_I_SPECS, ParameterSpace, ParamSpec, Scenario
from repro.errors import ScenarioError


class TestTableISpecs:
    def test_nine_parameters_in_paper_order(self):
        names = [s.name for s in TABLE_I_SPECS]
        assert names == [
            "Model",
            "WindSpd",
            "WindDir",
            "M1",
            "M10",
            "M100",
            "Mherb",
            "Slope",
            "Aspect",
        ]

    def test_exact_paper_ranges(self):
        ranges = {s.name: (s.low, s.high) for s in TABLE_I_SPECS}
        assert ranges == {
            "Model": (1, 13),
            "WindSpd": (0, 80),
            "WindDir": (0, 360),
            "M1": (1, 60),
            "M10": (1, 60),
            "M100": (1, 60),
            "Mherb": (30, 300),
            "Slope": (0, 81),
            "Aspect": (0, 360),
        }

    def test_units_match_paper(self):
        units = {s.name: s.unit for s in TABLE_I_SPECS}
        assert units["WindSpd"] == "miles/hour"
        assert units["M1"] == "percent"
        assert units["Slope"] == "degrees"
        assert "clockwise" in units["WindDir"].lower()

    def test_model_is_integer_parameter(self):
        assert TABLE_I_SPECS[0].integer

    def test_angles_are_circular(self):
        circular = {s.name for s in TABLE_I_SPECS if s.circular}
        assert circular == {"WindDir", "Aspect"}


class TestParamSpec:
    def test_invalid_range_raises(self):
        with pytest.raises(ScenarioError):
            ParamSpec("x", "", 5, 5, "u")

    def test_clip_clamps(self):
        spec = ParamSpec("x", "", 0, 10, "u")
        assert spec.clip(-1.0) == 0.0
        assert spec.clip(11.0) == 10.0
        assert spec.clip(5.0) == 5.0

    def test_clip_wraps_circular(self):
        spec = ParamSpec("a", "", 0, 360, "deg", circular=True)
        assert spec.clip(370.0) == pytest.approx(10.0)
        assert spec.clip(-10.0) == pytest.approx(350.0)

    def test_clip_rounds_integer(self):
        spec = ParamSpec("m", "", 1, 13, "", integer=True)
        assert spec.clip(3.4) == 3.0
        assert spec.clip(3.6) == 4.0
        assert spec.clip(0.2) == 1.0
        assert spec.clip(13.9) == 13.0

    def test_contains(self):
        spec = ParamSpec("x", "", 0, 10, "u")
        assert spec.contains(0.0) and spec.contains(10.0)
        assert not spec.contains(10.1)


class TestParameterSpace:
    def test_dimension(self, space):
        assert space.dimension == 9

    def test_sample_within_bounds(self, space):
        g = space.sample(200, 1)
        assert g.shape == (200, 9)
        assert (g >= space.lower_bounds).all()
        assert (g <= space.upper_bounds).all()

    def test_sample_deterministic(self, space):
        assert np.array_equal(space.sample(5, 42), space.sample(5, 42))

    def test_sample_model_is_integral(self, space):
        g = space.sample(50, 2)
        assert np.array_equal(g[:, 0], np.rint(g[:, 0]))

    def test_sample_negative_raises(self, space):
        with pytest.raises(ScenarioError):
            space.sample(-1, 0)

    def test_clip_single_vector(self, space):
        g = np.array([99.0, 99.0, 361.0, 0.0, 0.0, 0.0, 999.0, 99.0, -1.0])
        c = space.clip(g)
        assert c.shape == (9,)
        space.validate(c)

    def test_clip_dimension_mismatch_raises(self, space):
        with pytest.raises(ScenarioError):
            space.clip(np.zeros(5))

    def test_validate_reports_offender(self, space):
        g = space.sample(1, 0)[0]
        g[1] = 500.0
        with pytest.raises(ScenarioError, match="WindSpd"):
            space.validate(g)

    def test_contains(self, space):
        g = space.sample(1, 3)[0]
        assert space.contains(g)
        g[7] = 90.0
        assert not space.contains(g)

    def test_names(self, space):
        assert space.names()[0] == "Model"

    def test_wrong_spec_count_raises(self):
        with pytest.raises(ScenarioError):
            ParameterSpace(TABLE_I_SPECS[:5])


class TestCodec:
    def test_roundtrip(self, space):
        genome = space.sample(1, 11)[0]
        scenario = space.decode(genome)
        back = space.encode(scenario)
        assert np.allclose(back, genome)

    def test_decode_model_int(self, space):
        genome = space.sample(1, 4)[0]
        genome[0] = 7.2
        s = space.decode(genome)
        assert s.model == 7
        assert isinstance(s.model, int)

    def test_decode_many(self, space):
        scenarios = space.decode_many(space.sample(5, 8))
        assert len(scenarios) == 5
        assert all(isinstance(s, Scenario) for s in scenarios)

    def test_scenario_replace(self, scenario):
        s2 = scenario.replace(wind_speed=33.0)
        assert s2.wind_speed == 33.0
        assert s2.model == scenario.model
        assert scenario.wind_speed != 33.0  # original untouched

    def test_to_genome_order(self, scenario):
        g = scenario.to_genome()
        assert g[0] == scenario.model
        assert g[1] == scenario.wind_speed
        assert g[8] == scenario.aspect


class TestDistance:
    def test_zero_for_identical(self, space):
        g = space.sample(1, 5)[0]
        assert space.distance(g, g) == 0.0

    def test_symmetric(self, space):
        a, b = space.sample(2, 6)
        assert space.distance(a, b) == pytest.approx(space.distance(b, a))

    def test_normalised_upper_bound(self, space):
        lo = space.lower_bounds
        hi = space.upper_bounds
        # circular dims contribute at most 0.5 span
        d = space.distance(lo, hi)
        assert 0 < d <= 1.0

    def test_circular_wraparound(self, space):
        a = space.sample(1, 7)[0].copy()
        b = a.copy()
        a[2], b[2] = 10.0, 350.0  # WindDir wraps: distance 20°, not 340°
        expected = (20.0 / 360.0) / 9
        assert space.distance(a, b) == pytest.approx(expected)

    def test_pairwise_matches_scalar(self, space):
        g = space.sample(4, 9)
        mat = space.pairwise_distances(g)
        assert mat.shape == (4, 4)
        assert np.allclose(np.diag(mat), 0.0)
        assert mat[1, 2] == pytest.approx(space.distance(g[1], g[2]))
        assert np.allclose(mat, mat.T)
