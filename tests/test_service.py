"""Tests of the always-on prediction service (:mod:`repro.service`).

Three properties carry the subsystem:

* **fair share is parity-inert** — plans submitted concurrently by
  different tenants, interleaved over one worker pool by the deficit
  scheduler, each produce a store bitwise-identical (parity view) to
  the same plan run inline;
* **priority means overtaking** — a high-priority late submission is
  granted before a queued bulk plan that has been soaking up the
  fleet;
* **drain is lossless** — a worker retired mid-run finishes its lease,
  uploads its records, exits with ``drained: true``, and the run
  completes with zero requeued cells and zero lost or duplicated
  records.

Plus the satellite pieces: connect-retry backoff shape, admission
backpressure over HTTP, record streaming with resume-by-offset, and
spool persistence across service restarts.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.distributed import FleetError, FleetExecutor, run_worker
from repro.distributed.protocol import request as fleet_request
from repro.distributed.worker import backoff_delay
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
    record_key,
)
from repro.experiments.store import parity_view
from repro.service import (
    AdmissionError,
    PlanQueue,
    PredictionService,
    ServiceError,
    UnknownPlanError,
    plan_job_id,
)


def _plan(**overrides) -> ExperimentPlan:
    """Tiny real plan: 1 case x 2 systems x 1 seed = 2 cells."""
    values = dict(
        name="service-test",
        systems=("ess", "ess-ns"),
        cases=(CaseSpec("grassland", size=20, steps=2),),
        seeds=(0,),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=8, generations=2, session_cache_size=2048
        ),
    )
    values.update(overrides)
    return ExperimentPlan(**values)


def _normalized(store: ResultsStore) -> list[dict]:
    return [
        parity_view(r) for r in sorted(store.records(), key=record_key)
    ]


def _get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url) as resp:
        return resp.status, json.loads(resp.read())


def _post(url: str, payload: dict | None = None) -> tuple[int, dict]:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, json.loads(resp.read())


# ----------------------------------------------------------------------
# Connect-retry backoff (satellite: worker resilience)
# ----------------------------------------------------------------------
class TestBackoffDelay:
    def test_ceiling_doubles_to_the_cap(self):
        # jitter pinned high: the delay IS the ceiling
        delays = [
            backoff_delay(n, base=0.5, cap=5.0, jitter=lambda: 1.0)
            for n in range(1, 7)
        ]
        assert delays == [0.5, 1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_spans_half_to_full_ceiling(self):
        low = backoff_delay(3, base=1.0, cap=60.0, jitter=lambda: 0.0)
        high = backoff_delay(3, base=1.0, cap=60.0, jitter=lambda: 1.0)
        assert low == pytest.approx(2.0)  # ceiling 4.0, half
        assert high == pytest.approx(4.0)

    def test_random_jitter_stays_in_range(self):
        for n in range(1, 10):
            delay = backoff_delay(n, base=0.5, cap=5.0)
            ceiling = min(5.0, 0.5 * 2 ** (n - 1))
            assert ceiling / 2 <= delay <= ceiling

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(FleetError, match="positive"):
            backoff_delay(1, base=0.0)
        with pytest.raises(FleetError, match="positive"):
            backoff_delay(1, cap=-1.0)


# ----------------------------------------------------------------------
# The PlanQueue scheduler, scripted (no sockets, no engine)
# ----------------------------------------------------------------------
class TestPlanQueueScheduling:
    def test_job_ids_are_keyed_and_idempotent(self, tmp_path):
        queue = PlanQueue(tmp_path / "spool")
        payload = _plan().to_dict()
        job, created = queue.submit(payload, tenant="alice")
        again, created_again = queue.submit(payload, tenant="alice")
        assert created and not created_again
        assert again is job
        assert job.id == plan_job_id(payload, "alice")
        # a different tenant's identical plan is a different job
        other, _ = queue.submit(payload, tenant="bob")
        assert other.id != job.id

    def test_rejects_nonpositive_priority(self, tmp_path):
        queue = PlanQueue(tmp_path / "spool")
        with pytest.raises(ServiceError, match="priority"):
            queue.submit(_plan().to_dict(), priority=0.0)

    def test_admission_backpressure_predicts_retry(self, tmp_path):
        queue = PlanQueue(tmp_path / "spool", max_active=1)
        first = _plan(name="first").to_dict()
        queue.submit(first, tenant="alice")
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(_plan(name="second").to_dict(), tenant="bob")
        assert excinfo.value.retry_after >= 1.0
        # resubmission of an admitted plan never bounces: idempotency
        # beats the admission bound
        _, created = queue.submit(first, tenant="alice")
        assert not created

    def test_unknown_plan_raises(self, tmp_path):
        queue = PlanQueue(tmp_path / "spool")
        with pytest.raises(UnknownPlanError):
            queue.job("no-such-job")

    def test_high_priority_late_submission_overtakes_bulk(self, tmp_path):
        """The fair-share core: a bulk plan soaking up the fleet is
        overtaken by an interactive tenant's late, high-priority
        submission — the bulk plan's deficit went negative with every
        grant it took, the newcomer starts at zero and earns credit
        four times faster."""
        queue = PlanQueue(tmp_path / "spool", lease_timeout=60.0)
        bulk, _ = queue.submit(
            _plan(name="bulk", seeds=tuple(range(8))).to_dict(),
            tenant="batch",
            priority=1.0,
        )
        # the bulk plan monopolises the pool while it is alone — and,
        # being alone, earns back exactly what it is charged
        for i in range(3):
            grant = queue.lease(f"w{i}")
            assert grant["type"] == "unit"
            assert grant["plan_id"] == bulk.id
        assert bulk.deficit == pytest.approx(0.0)
        urgent, _ = queue.submit(
            _plan(name="urgent", seeds=(99,)).to_dict(),
            tenant="interactive",
            priority=4.0,
        )
        # the very next grants flip to the newcomer: its 4x weight
        # earns credit faster than the bulk plan which pays full price
        # for everything it takes, despite bulk's 16-cell backlog
        grants = [queue.lease(f"w{3 + i}") for i in range(2)]
        assert urgent.id in [g["plan_id"] for g in grants]
        # and its grant ships everything a plan-less worker needs
        urgent_grant = next(
            g for g in grants if g["plan_id"] == urgent.id
        )
        assert urgent_grant["plan"]["name"] == "urgent"
        assert urgent_grant["unit"]["cells"]

    def test_weighted_shares_follow_priority(self, tmp_path):
        """Over many grants of equal-cost units, a priority-3 tenant
        receives about three times the work of a priority-1 tenant."""
        queue = PlanQueue(tmp_path / "spool", lease_timeout=60.0)
        heavy, _ = queue.submit(
            _plan(name="heavy", seeds=tuple(range(30))).to_dict(),
            tenant="a",
            priority=3.0,
        )
        light, _ = queue.submit(
            _plan(name="light", seeds=tuple(range(100, 130))).to_dict(),
            tenant="b",
            priority=1.0,
        )
        taken = {heavy.id: 0, light.id: 0}
        for i in range(16):
            grant = queue.lease(f"w{i}")
            assert grant["type"] == "unit"
            taken[grant["plan_id"]] += len(grant["unit"]["cells"])
        assert taken[heavy.id] > taken[light.id]
        ratio = taken[heavy.id] / max(taken[light.id], 1)
        assert 1.5 <= ratio <= 6.0  # ~3, loose bounds for unit sizing

    def test_cancel_stops_grants_and_spool_resurrection(self, tmp_path):
        queue = PlanQueue(tmp_path / "spool")
        job, _ = queue.submit(_plan(name="doomed").to_dict())
        queue.cancel(job.id)
        assert job.status() == "cancelled"
        assert queue.lease("w0")["type"] == "wait"
        # cancelled plans do not come back on restart
        reborn = PlanQueue(tmp_path / "spool")
        with pytest.raises(UnknownPlanError):
            reborn.job(job.id)

    def test_spool_restores_admitted_plans(self, tmp_path):
        queue = PlanQueue(tmp_path / "spool")
        job, _ = queue.submit(
            _plan(name="persistent").to_dict(), tenant="alice"
        )
        restarted = PlanQueue(tmp_path / "spool")
        restored = restarted.job(job.id)
        assert restored.plan.name == "persistent"
        assert restored.tenant == "alice"
        assert restored.status() == "queued"

    def test_drained_worker_gets_bye_only_when_clean(self, tmp_path):
        queue = PlanQueue(tmp_path / "spool", lease_timeout=60.0)
        queue.submit(_plan(name="drainer", seeds=(0, 1, 2)).to_dict())
        grant = queue.lease("w0")
        assert grant["type"] == "unit"
        queue.drain_worker("w0")
        # still holding a lease: not released yet
        assert queue.lease("w0")["type"] == "wait"
        # completing the unit (records inline) clears the way out
        reply = queue.complete(
            "w0", grant["plan_id"], grant["lease"], None, []
        )
        assert reply["next"]["type"] == "bye"
        # an undrained fleet keeps being served by other workers
        assert queue.lease("w1")["type"] == "unit"


# ----------------------------------------------------------------------
# End-to-end over HTTP: two tenants, one worker pool, full parity
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_concurrent_plans_complete_with_inline_parity(self, tmp_path):
        plan_a = _plan(name="tenant-a", seeds=(0, 1))
        plan_b = _plan(
            name="tenant-b",
            systems=("ess",),
            cases=(CaseSpec("river_gap", size=20, steps=2),),
            seeds=(7,),
        )
        service = PredictionService(
            tmp_path / "spool",
            lease_timeout=10.0,
            poll_interval=0.05,
            housekeep_interval=0.2,
        )
        (gw_host, gw_port), fleet = service.start()
        base = f"http://{gw_host}:{gw_port}"
        summaries: dict[str, dict] = {}
        errors: list[Exception] = []
        try:
            status, job_a = _post(
                base + "/plans",
                {"plan": plan_a.to_dict(), "tenant": "alice"},
            )
            assert status == 201
            status, job_b = _post(
                base + "/plans",
                {
                    "plan": plan_b.to_dict(),
                    "tenant": "bob",
                    "priority": 2.0,
                },
            )
            assert status == 201
            # idempotent resubmission: 200, same job
            status, again = _post(
                base + "/plans",
                {"plan": plan_a.to_dict(), "tenant": "alice"},
            )
            assert status == 200
            assert again["id"] == job_a["id"]

            def work(wid: str) -> None:
                try:
                    summaries[wid] = run_worker(
                        fleet, worker_id=wid, poll_interval=0.05
                    )
                except Exception as exc:  # surfaced to the test thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=work, args=(f"svc-w{i}",))
                for i in range(2)
            ]
            for t in threads:
                t.start()

            deadline = time.time() + 120
            while time.time() < deadline:
                _, a = _get(base + f"/plans/{job_a['id']}")
                _, b = _get(base + f"/plans/{job_b['id']}")
                if a["status"] == "done" and b["status"] == "done":
                    break
                time.sleep(0.2)
            assert a["status"] == "done", a
            assert b["status"] == "done", b
            assert a["recorded_cells"] == a["expected_cells"] == 4
            assert b["recorded_cells"] == b["expected_cells"] == 1

            # records stream with a resume cursor
            with urllib.request.urlopen(
                base + f"/plans/{job_a['id']}/records"
            ) as resp:
                lines = resp.read().decode().strip().splitlines()
                cursor = resp.headers["X-Repro-Next-Offset"]
            assert len(lines) == 4
            assert cursor == "4"
            streamed_keys = {
                record_key(json.loads(line)) for line in lines
            }
            assert len(streamed_keys) == 4
            with urllib.request.urlopen(
                base + f"/plans/{job_a['id']}/records?offset={cursor}"
            ) as resp:
                assert resp.read().decode().strip() == ""

            # queue gauges are exposed on /metrics
            with urllib.request.urlopen(base + "/metrics") as resp:
                metrics = resp.read().decode()
            assert "repro_service_queue_depth" in metrics
            assert 'repro_service_plans{state="done"}' in metrics

            # drain both workers: graceful exits, nothing requeued
            for wid in ("svc-w0", "svc-w1"):
                status, body = _post(base + f"/workers/{wid}/drain")
                assert status == 202 and body["draining"] == wid
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            assert set(summaries) == {"svc-w0", "svc-w1"}
            assert all(s["drained"] for s in summaries.values())
            _, status_body = _get(base + "/status")
            for job in status_body["plans"]:
                assert job["progress"]["requeues"] == 0
        finally:
            service.close()

        # the service store is bitwise-identical (parity view) to the
        # same plan run inline, for both tenants
        for plan, job in ((plan_a, job_a), (plan_b, job_b)):
            inline = ResultsStore(tmp_path / f"inline-{plan.name}.jsonl")
            ExperimentRunner(store=inline).run(plan)
            served = ResultsStore(
                tmp_path / "spool" / "stores" / f"{job['id']}.jsonl"
            )
            assert _normalized(served) == _normalized(inline)

    def test_gateway_rejects_and_backpressures(self, tmp_path):
        service = PredictionService(
            tmp_path / "spool",
            lease_timeout=5.0,
            housekeep_interval=0.5,
            max_active=1,
        )
        (host, port), _fleet = service.start()
        base = f"http://{host}:{port}"
        try:
            # malformed body -> 400
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                req = urllib.request.Request(
                    base + "/plans", data=b"{nope", method="POST"
                )
                urllib.request.urlopen(req)
            assert excinfo.value.code == 400
            # well-formed JSON, malformed plan -> 400, not 500
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    base + "/plans",
                    {"plan": {"cases": [{"case": "grassland"}]}},
                )
            assert excinfo.value.code == 400
            # unknown plan -> 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/plans/feedfacedead")
            assert excinfo.value.code == 404
            # full queue -> 429 with a Retry-After hint
            status, _ = _post(
                base + "/plans", {"plan": _plan(name="one").to_dict()}
            )
            assert status == 201
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    base + "/plans",
                    {"plan": _plan(name="two").to_dict()},
                )
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        finally:
            service.close()

    def test_service_restart_resumes_spool_and_costs(self, tmp_path):
        """Stop a service mid-queue; its heir re-admits the spooled
        plan, reloads the cost snapshot, and a worker completes the
        run with the records recorded before the restart intact."""
        plan = _plan(name="survivor", seeds=(0, 1))
        first = PredictionService(
            tmp_path / "spool", lease_timeout=5.0, housekeep_interval=0.2
        )
        (host, port), _fleet = first.start()
        status, job = _post(
            f"http://{host}:{port}/plans",
            {"plan": plan.to_dict(), "tenant": "alice"},
        )
        assert status == 201
        first.close()
        assert (tmp_path / "spool" / "costs.json").exists()

        second = PredictionService(
            tmp_path / "spool",
            lease_timeout=10.0,
            poll_interval=0.05,
            housekeep_interval=0.2,
        )
        (host, port), fleet = second.start()
        base = f"http://{host}:{port}"
        try:
            _, revived = _get(base + f"/plans/{job['id']}")
            assert revived["status"] == "queued"
            worker = threading.Thread(
                target=run_worker,
                args=(fleet,),
                kwargs={"worker_id": "heir-w0", "poll_interval": 0.05},
            )
            worker.start()
            deadline = time.time() + 120
            while time.time() < deadline:
                _, snap = _get(base + f"/plans/{job['id']}")
                if snap["status"] == "done":
                    break
                time.sleep(0.2)
            assert snap["status"] == "done"
            _post(base + "/workers/heir-w0/drain")
            worker.join(timeout=60)
        finally:
            second.close()
        served = ResultsStore(
            tmp_path / "spool" / "stores" / f"{job['id']}.jsonl"
        )
        inline = ResultsStore(tmp_path / "inline.jsonl")
        ExperimentRunner(store=inline).run(plan)
        assert _normalized(served) == _normalized(inline)


# ----------------------------------------------------------------------
# Drain is lossless: mid-run retirement requeues and duplicates nothing
# ----------------------------------------------------------------------
class TestDrainLifecycle:
    def test_mid_run_drain_loses_and_duplicates_nothing(self, tmp_path):
        """Retire one of two workers after its first completed unit.
        The drained worker exits gracefully (``drained: true``), the
        survivor finishes the plan, zero cells requeue, and the store
        matches an inline run record for record."""
        plan = _plan(seeds=tuple(range(6)))  # 12 cells to spread
        store = ResultsStore(tmp_path / "coord.jsonl")
        summaries: list[dict] = []
        errors: list[Exception] = []
        threads: list[threading.Thread] = []
        drained_once = threading.Event()
        address_box: dict = {}

        def drain_after_first_complete(_group: int) -> None:
            # fires on w0's thread right after its first complete
            # exchange: the drain lands mid-run, deterministically
            if not drained_once.is_set():
                drained_once.set()
                reply = fleet_request(
                    address_box["addr"],
                    {"type": "drain", "target": "drain-w0"},
                )
                assert reply.get("type") == "ok"

        def worker(index: int) -> None:
            try:
                summaries.append(
                    run_worker(
                        address_box["addr"],
                        store_path=tmp_path / f"worker{index}.jsonl",
                        worker_id=f"drain-w{index}",
                        poll_interval=0.05,
                        after_complete=(
                            drain_after_first_complete
                            if index == 0
                            else None
                        ),
                    )
                )
            except Exception as exc:
                errors.append(exc)

        def on_bound(address):
            address_box["addr"] = address
            for index in range(2):
                thread = threading.Thread(target=worker, args=(index,))
                thread.start()
                threads.append(thread)

        executor = FleetExecutor(
            lease_timeout=10.0,
            poll_interval=0.05,
            timeout=120.0,
            on_bound=on_bound,
        )
        result = ExperimentRunner(store=store).run(plan, executor=executor)
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert drained_once.is_set()
        # a drain moves zero cells: nothing requeued, nothing lost
        assert executor.requeues == 0
        assert len(result.records) == plan.n_runs
        by_worker = {s["worker"]: s for s in summaries}
        assert by_worker["drain-w0"]["drained"] is True
        assert by_worker["drain-w1"]["drained"] is False  # saw "done"
        # every expected cell exactly once in the coordinator store
        keys = [record_key(r) for r in store.records()]
        assert len(keys) == len(set(keys)) == plan.n_runs
        # and byte-for-byte what an inline run records
        inline = ResultsStore(tmp_path / "inline.jsonl")
        ExperimentRunner(store=inline).run(plan)
        assert _normalized(store) == _normalized(inline)
