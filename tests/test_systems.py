"""Integration tests: the four prediction systems end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ea.de import DEConfig
from repro.ea.ga import GAConfig
from repro.ea.nsga import NoveltyGAConfig
from repro.parallel.islands import IslandModelConfig
from repro.systems import (
    ESS,
    ESSIMDE,
    ESSIMEA,
    ESSNS,
    ESSConfig,
    ESSIMDEConfig,
    ESSIMEAConfig,
    ESSNSConfig,
)


def _small_ess(n_workers=1):
    return ESS(
        ESSConfig(ga=GAConfig(population_size=10), max_generations=3),
        n_workers=n_workers,
    )


def _small_essns(n_workers=1):
    return ESSNS(
        ESSNSConfig(
            nsga=NoveltyGAConfig(
                population_size=10, k_neighbors=4, best_set_capacity=8
            ),
            max_generations=3,
        ),
        n_workers=n_workers,
    )


def _small_islands():
    return IslandModelConfig(n_islands=2, migration_interval=2, n_migrants=1)


class TestESS:
    def test_run_structure(self, small_fire):
        run = _small_ess().run(small_fire, rng=0)
        assert run.system == "ESS"
        assert len(run.steps) == small_fire.n_steps
        assert not run.steps[0].has_prediction  # paper: no PS at step 1
        assert all(s.has_prediction for s in run.steps[1:])

    def test_kign_chained(self, small_fire):
        run = _small_ess().run(small_fire, rng=0)
        for s in run.steps:
            assert s.kign > 0
            assert 0 <= s.calibration_fitness <= 1

    def test_deterministic(self, small_fire):
        a = _small_ess().run(small_fire, rng=3)
        b = _small_ess().run(small_fire, rng=3)
        assert np.array_equal(a.qualities(), b.qualities(), equal_nan=True)

    def test_timings_recorded(self, small_fire):
        run = _small_ess().run(small_fire, rng=0)
        for s in run.steps:
            assert s.timings.seconds["os"] > 0
            assert s.timings.seconds["ss"] > 0
            assert s.timings.seconds["cs"] > 0
        # PS exists from step 2 on
        assert "ps" in run.steps[1].timings.seconds

    def test_solution_set_is_population(self, small_fire):
        run = _small_ess().run(small_fire, rng=0)
        assert all(s.n_solutions == 10 for s in run.steps)


class TestESSNS:
    def test_run_structure(self, small_fire):
        run = _small_essns().run(small_fire, rng=0)
        assert run.system == "ESS-NS"
        assert len(run.steps) == small_fire.n_steps
        assert run.mean_quality() > 0

    def test_solution_set_is_best_set(self, small_fire):
        run = _small_essns().run(small_fire, rng=0)
        # bestSet capacity 8 with dedupe: at most 8 solutions per step
        assert all(1 <= s.n_solutions <= 8 for s in run.steps)

    def test_deterministic(self, small_fire):
        a = _small_essns().run(small_fire, rng=5)
        b = _small_essns().run(small_fire, rng=5)
        assert np.array_equal(a.qualities(), b.qualities(), equal_nan=True)

    def test_parallel_matches_serial(self, small_fire):
        serial = _small_essns(n_workers=1).run(small_fire, rng=7)
        parallel = _small_essns(n_workers=2).run(small_fire, rng=7)
        assert np.array_equal(
            serial.qualities(), parallel.qualities(), equal_nan=True
        )


class TestESSIMEA:
    def test_run_structure(self, small_fire):
        system = ESSIMEA(
            ESSIMEAConfig(
                ga=GAConfig(population_size=8),
                islands=_small_islands(),
                max_generations=4,
            )
        )
        run = system.run(small_fire, rng=0)
        assert run.system == "ESSIM-EA"
        # two islands of 8 each feed the Monitor
        assert all(s.n_solutions == 16 for s in run.steps)
        assert run.mean_quality() >= 0


class TestESSIMDE:
    @pytest.mark.parametrize("tuning", ["none", "restart", "iqr", "both"])
    def test_all_tuning_modes_run(self, small_fire, tuning):
        system = ESSIMDE(
            ESSIMDEConfig(
                de=DEConfig(population_size=8),
                islands=_small_islands(),
                max_generations=4,
                tuning=tuning,
            )
        )
        run = system.run(small_fire, rng=1)
        assert len(run.steps) == small_fire.n_steps
        expected_name = "ESSIM-DE" if tuning == "none" else f"ESSIM-DE+{tuning}"
        assert run.system == expected_name

    def test_bad_tuning_mode_raises(self):
        with pytest.raises(ValueError):
            ESSIMDEConfig(tuning="bogus")


class TestCrossSystem:
    def test_all_systems_comparable(self, small_fire):
        """The E1 harness shape: same fire, same step count, aligned rows."""
        from repro.analysis import compare_runs

        runs = [
            _small_ess().run(small_fire, rng=2),
            _small_essns().run(small_fire, rng=2),
        ]
        cmp = compare_runs(runs)
        assert cmp.systems == ("ESS", "ESS-NS")
        assert cmp.quality.shape == (2, small_fire.n_steps - 1)
        assert cmp.winner() in cmp.systems

    def test_invalid_worker_count_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            ESS(n_workers=0)
