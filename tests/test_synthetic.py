"""Tests for synthetic reference fires."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import Scenario
from repro.errors import WorkloadError
from repro.grid.terrain import Terrain
from repro.workloads.synthetic import ReferenceFire, make_reference_fire


class TestMakeReferenceFire:
    def test_static_fire(self, terrain, scenario):
        fire = make_reference_fire(
            terrain, scenario, [(12, 6)], n_steps=3, step_minutes=15.0
        )
        assert fire.n_steps == 3
        assert len(fire.burned_masks) == 4
        assert fire.instants == (0.0, 15.0, 30.0, 45.0)
        assert all(s == scenario for s in fire.true_scenarios)

    def test_masks_monotone(self, small_fire):
        for i in range(1, len(small_fire.burned_masks)):
            prev, cur = small_fire.burned_masks[i - 1], small_fire.burned_masks[i]
            assert not (prev & ~cur).any()

    def test_growth_positive_each_step(self, small_fire):
        for step in range(1, small_fire.n_steps + 1):
            assert small_fire.growth_cells(step) > 0

    def test_dynamic_schedule(self, terrain, scenario):
        shifted = scenario.replace(wind_dir=180.0)
        fire = make_reference_fire(
            terrain, [scenario, shifted], [(12, 6)], n_steps=2, step_minutes=15.0
        )
        assert fire.true_scenarios == (scenario, shifted)

    def test_schedule_length_mismatch_raises(self, terrain, scenario):
        with pytest.raises(WorkloadError):
            make_reference_fire(
                terrain, [scenario], [(12, 6)], n_steps=3, step_minutes=15.0
            )

    def test_wet_scenario_raises_no_growth(self, terrain, wet_scenario):
        with pytest.raises(WorkloadError, match="did not grow"):
            make_reference_fire(
                terrain, wet_scenario, [(12, 6)], n_steps=2, step_minutes=15.0
            )

    def test_saturation_raises(self, scenario):
        tiny = Terrain.uniform(6, 6, cell_size=10.0)
        with pytest.raises(WorkloadError, match="saturated"):
            make_reference_fire(
                tiny,
                scenario.replace(wind_speed=40.0),
                [(3, 3)],
                n_steps=3,
                step_minutes=60.0,
            )

    def test_bad_ignition_raises(self, terrain, scenario):
        with pytest.raises(WorkloadError):
            make_reference_fire(
                terrain, scenario, [(99, 99)], n_steps=2, step_minutes=15.0
            )

    def test_unburnable_ignition_raises(self, scenario):
        t = Terrain.with_river(20, 20, river_col=10)
        with pytest.raises(WorkloadError):
            make_reference_fire(
                t, scenario, [(5, 10)], n_steps=2, step_minutes=15.0
            )

    @pytest.mark.parametrize("n_steps", [0, 1])
    def test_too_few_steps_raises(self, terrain, scenario, n_steps):
        with pytest.raises(WorkloadError):
            make_reference_fire(
                terrain, scenario, [(12, 6)], n_steps=n_steps, step_minutes=15.0
            )


class TestReferenceFireAccessors:
    def test_step_masks(self, small_fire):
        assert np.array_equal(small_fire.start_mask(1), small_fire.burned_masks[0])
        assert np.array_equal(small_fire.real_mask(1), small_fire.burned_masks[1])
        assert np.array_equal(
            small_fire.start_mask(2), small_fire.real_mask(1)
        )

    def test_step_horizon(self, small_fire):
        assert small_fire.step_horizon(1) == 15.0

    @pytest.mark.parametrize("step", [0, 4])
    def test_invalid_step_raises(self, small_fire, step):
        with pytest.raises(WorkloadError):
            small_fire.start_mask(step)

    def test_validation_instants_increase(self, terrain, scenario):
        masks = (np.zeros(terrain.shape, bool),) * 3
        with pytest.raises(WorkloadError):
            ReferenceFire(
                terrain=terrain,
                instants=(0.0, 10.0, 5.0),
                burned_masks=masks,
                true_scenarios=(scenario, scenario),
            )

    def test_validation_shrinking_masks(self, terrain, scenario):
        a = np.zeros(terrain.shape, bool)
        a[0, 0] = True
        b = np.zeros(terrain.shape, bool)  # shrank
        with pytest.raises(WorkloadError):
            ReferenceFire(
                terrain=terrain,
                instants=(0.0, 10.0),
                burned_masks=(a, b),
                true_scenarios=(scenario,),
            )
