"""Deep integration tests: the full Figs. 1–3 data flow.

These pin the properties the architecture promises, beyond what any
single module guarantees:

* a search that contains the hidden true scenario calibrates to a
  near-perfect Kign;
* serial and parallel execution of a whole system run are bit-identical;
* the ESS-NS bestSet spans more diverse scenarios than the converged
  ESS population on the same budget;
* the Kign chain works: step i's prediction uses step i−1's threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.individual import genomes_matrix
from repro.ea.ga import GAConfig
from repro.ea.nsga import NoveltyGAConfig
from repro.parallel.executor import SerialEvaluator
from repro.stages.calibration import search_kign
from repro.stages.prediction import predict
from repro.stages.statistical import aggregate_burned_maps
from repro.systems import ESS, ESSNS, ESSConfig, ESSNSConfig
from repro.systems.problem import PredictionStepProblem


class TestOracleCalibration:
    def test_true_scenario_in_solution_set_gives_high_calibration(
        self, small_fire, space
    ):
        """If the OS hands the SS the true scenario (plus noise), the CS
        must recover a threshold that reproduces reality almost exactly."""
        problem = PredictionStepProblem(
            small_fire.terrain,
            small_fire.start_mask(1),
            small_fire.real_mask(1),
            small_fire.step_horizon(1),
        )
        true_genome = space.encode(small_fire.true_scenarios[0])
        noise = space.sample(6, 3)
        genomes = np.vstack([true_genome, noise])
        maps = problem.burned_maps(genomes)
        pm = aggregate_burned_maps(maps)
        cal = search_kign(
            pm, small_fire.real_mask(1), pre_burned=small_fire.start_mask(1)
        )
        assert cal.fitness > 0.9

    def test_kign_chain_predicts_future_step(self, small_fire, space):
        """Manual two-step pipeline: calibrate at step 1, predict step 2."""
        # Step 1: calibrate.
        p1 = PredictionStepProblem(
            small_fire.terrain,
            small_fire.start_mask(1),
            small_fire.real_mask(1),
            small_fire.step_horizon(1),
        )
        # Solution set: the truth plus small perturbations of it — the
        # shape a well-converged OS hands to the SS.
        truth = small_fire.true_scenarios[0]
        rng = np.random.default_rng(1)
        variants = [
            truth.replace(
                wind_speed=truth.wind_speed + float(rng.uniform(-2, 2)),
                m1=truth.m1 + float(rng.uniform(-1, 1)),
            )
            for _ in range(5)
        ]
        genomes = np.vstack(
            [space.encode(s) for s in [truth, *variants]]
        )
        pm1 = aggregate_burned_maps(p1.burned_maps(genomes))
        kign1 = search_kign(
            pm1, small_fire.real_mask(1), pre_burned=small_fire.start_mask(1)
        ).kign

        # Step 2: same solution set re-simulated from the new fire line,
        # thresholded with the step-1 Kign.
        p2 = PredictionStepProblem(
            small_fire.terrain,
            small_fire.start_mask(2),
            small_fire.real_mask(2),
            small_fire.step_horizon(2),
        )
        pm2 = aggregate_burned_maps(p2.burned_maps(genomes))
        out = predict(
            pm2,
            kign1,
            real_burned=small_fire.real_mask(2),
            pre_burned=small_fire.start_mask(2),
        )
        # with the true scenario in the set the prediction is strong
        assert out.quality > 0.5


class TestSerialParallelEquivalence:
    def test_full_run_bit_identical(self, small_fire):
        config = ESSConfig(ga=GAConfig(population_size=8), max_generations=2)
        serial = ESS(config, n_workers=1).run(small_fire, rng=13)
        parallel = ESS(config, n_workers=2).run(small_fire, rng=13)
        for s, p in zip(serial.steps, parallel.steps):
            assert s.kign == p.kign
            assert s.calibration_fitness == p.calibration_fitness
            assert (
                np.isnan(s.prediction_quality)
                and np.isnan(p.prediction_quality)
            ) or s.prediction_quality == p.prediction_quality


class TestBestSetDiversity:
    def test_essns_solutions_more_diverse_than_ess(self, small_fire, space):
        """Fig. 3's payoff: the bestSet spans different regions of the
        scenario space, the converged GA population does not."""
        from repro.analysis.diversity import genotypic_diversity
        from repro.ea.nsga import NoveltyGA
        from repro.ea.ga import GeneticAlgorithm
        from repro.ea.termination import Termination

        problem = PredictionStepProblem(
            small_fire.terrain,
            small_fire.start_mask(1),
            small_fire.real_mask(1),
            small_fire.step_horizon(1),
        )
        term = Termination(max_generations=6)
        ga_divs, ns_divs = [], []
        for seed in (21, 22, 23):
            ga = GeneticAlgorithm(GAConfig(population_size=12)).run(
                SerialEvaluator(problem), space, term, rng=seed
            )
            ns = NoveltyGA(
                NoveltyGAConfig(
                    population_size=12, k_neighbors=5, best_set_capacity=12
                )
            ).run(SerialEvaluator(problem), space, term, rng=seed)
            ga_divs.append(
                genotypic_diversity(genomes_matrix(ga.population), space)
            )
            ns_divs.append(genotypic_diversity(ns.best_genomes(), space))
        assert min(ns_divs) > 0
        # On matched budgets the bestSet should not be *less* diverse
        # than the converged population (usually far more); averaged
        # over seeds so one unlucky draw cannot flip the comparison.
        assert np.mean(ns_divs) > 0.5 * np.mean(ga_divs)


class TestDynamicConditions:
    def test_systems_track_wind_shift(self):
        """On the dynamic case the pipeline keeps producing predictions
        after the wind shift (quality may dip but must stay defined)."""
        from repro.workloads import dynamic_wind_case

        fire = dynamic_wind_case(size=30, n_steps=4)
        run = ESSNS(
            ESSNSConfig(
                nsga=NoveltyGAConfig(
                    population_size=10, k_neighbors=4, best_set_capacity=8
                ),
                max_generations=3,
            )
        ).run(fire, rng=2)
        q = run.qualities()
        assert np.isnan(q[0])
        assert np.isfinite(q[1:]).all()
        assert (q[1:] >= 0).all()


class TestPublicAPI:
    def test_quickstart_snippet(self):
        """The README quickstart must work verbatim (scaled down)."""
        from repro import ESSNS as API_ESSNS, grassland_case

        fire = grassland_case(size=28, n_steps=2)
        result = API_ESSNS(
            ESSNSConfig(
                nsga=NoveltyGAConfig(
                    population_size=8, k_neighbors=3, best_set_capacity=6
                ),
                max_generations=2,
            )
        ).run(fire, rng=42)
        assert 0.0 <= result.mean_quality() <= 1.0

    def test_all_exports_resolvable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
