"""Tests for repro.grid.terrain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.grid.terrain import Terrain


class TestConstruction:
    def test_uniform(self):
        t = Terrain.uniform(10, 12, cell_size=25.0)
        assert t.shape == (10, 12)
        assert t.n_cells == 120
        assert t.cell_size == 25.0
        assert t.fuel is None and t.slope is None and t.aspect is None

    def test_extent(self):
        t = Terrain.uniform(10, 20, cell_size=30.0)
        assert t.extent_m == (300.0, 600.0)

    def test_center_and_contains(self):
        t = Terrain.uniform(9, 9)
        assert t.center() == (4, 4)
        assert t.contains(0, 0) and t.contains(8, 8)
        assert not t.contains(9, 0) and not t.contains(0, -1)

    @pytest.mark.parametrize("rows,cols", [(1, 5), (5, 1), (0, 0)])
    def test_too_small_raises(self, rows, cols):
        with pytest.raises(TerrainError):
            Terrain(rows=rows, cols=cols)

    @pytest.mark.parametrize("cell", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_cell_size_raises(self, cell):
        with pytest.raises(TerrainError):
            Terrain(rows=4, cols=4, cell_size=cell)

    def test_raster_shape_mismatch_raises(self):
        with pytest.raises(TerrainError):
            Terrain(rows=4, cols=4, fuel=np.ones((3, 4), dtype=int))

    def test_invalid_fuel_codes_raise(self):
        fuel = np.full((4, 4), 14)
        with pytest.raises(TerrainError):
            Terrain(rows=4, cols=4, fuel=fuel)

    def test_fuel_zero_is_allowed_and_blocked(self):
        fuel = np.ones((4, 4), dtype=int)
        fuel[1, 1] = 0
        t = Terrain(rows=4, cols=4, fuel=fuel)
        assert t.blocked_mask()[1, 1]
        assert not t.blocked_mask()[0, 0]

    def test_slope_out_of_range_raises(self):
        slope = np.full((4, 4), 95.0)
        with pytest.raises(TerrainError):
            Terrain(rows=4, cols=4, slope=slope)

    def test_aspect_wraps(self):
        aspect = np.full((4, 4), 450.0)
        t = Terrain(rows=4, cols=4, aspect=aspect)
        assert np.allclose(t.aspect, 90.0)


class TestBlockedMask:
    def test_unburnable_mask_combined_with_fuel(self):
        fuel = np.ones((4, 4), dtype=int)
        fuel[0, 0] = 0
        unb = np.zeros((4, 4), dtype=bool)
        unb[3, 3] = True
        t = Terrain(rows=4, cols=4, fuel=fuel, unburnable=unb)
        blocked = t.blocked_mask()
        assert blocked[0, 0] and blocked[3, 3]
        assert blocked.sum() == 2

    def test_default_nothing_blocked(self):
        assert Terrain.uniform(5, 5).blocked_mask().sum() == 0


class TestBuilders:
    def test_with_fuel_patches(self):
        t = Terrain.with_fuel_patches(
            8, 8, base_model=1, patches=[(slice(0, 4), slice(0, 4), 5)]
        )
        assert t.fuel[0, 0] == 5
        assert t.fuel[7, 7] == 1

    def test_patches_overwrite_in_order(self):
        t = Terrain.with_fuel_patches(
            6,
            6,
            base_model=1,
            patches=[
                (slice(0, 6), slice(0, 6), 5),
                (slice(2, 4), slice(2, 4), 8),
            ],
        )
        assert t.fuel[3, 3] == 8
        assert t.fuel[0, 0] == 5

    def test_with_ridge_slope_peaks_at_center(self):
        t = Terrain.with_ridge(6, 11, max_slope=30.0)
        assert t.slope[0, 5] == pytest.approx(30.0)
        assert t.slope[0, 0] == pytest.approx(0.0)
        assert t.aspect[0, 2] == 270.0
        assert t.aspect[0, 8] == 90.0

    def test_with_river_blocks_column(self):
        t = Terrain.with_river(8, 8, river_col=4, width=1)
        assert t.blocked_mask()[:, 4].all()
        assert not t.blocked_mask()[:, 3].any()

    def test_with_river_gap(self):
        t = Terrain.with_river(8, 8, river_col=4, width=1, gap_row=2)
        blocked = t.blocked_mask()
        assert not blocked[2, 4]
        assert blocked[3, 4]
