"""Tests for timing utilities and speedup metrics."""

from __future__ import annotations

import time

import pytest

from repro.errors import ParallelError
from repro.parallel.timing import StageTimings, Timer, efficiency, speedup


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first


class TestStageTimings:
    def test_add_accumulates(self):
        st = StageTimings()
        st.add("os", 1.0)
        st.add("os", 0.5)
        assert st.seconds["os"] == 1.5

    def test_measure_context(self):
        st = StageTimings()
        with st.measure("ss"):
            time.sleep(0.005)
        assert st.seconds["ss"] > 0

    def test_total_and_fractions(self):
        st = StageTimings()
        st.add("a", 3.0)
        st.add("b", 1.0)
        assert st.total() == 4.0
        fr = st.fractions()
        assert fr["a"] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert StageTimings().fractions() == {}

    def test_merge(self):
        a = StageTimings()
        a.add("x", 1.0)
        b = StageTimings()
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a.seconds == {"x": 3.0, "y": 1.0}


class TestSpeedup:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_efficiency(self):
        assert efficiency(10.0, 5.0, 4) == 0.5

    @pytest.mark.parametrize("s,p", [(-1.0, 1.0), (1.0, 0.0)])
    def test_invalid_raises(self, s, p):
        with pytest.raises(ParallelError):
            speedup(s, p)

    def test_bad_workers_raises(self):
        with pytest.raises(ParallelError):
            efficiency(1.0, 1.0, 0)
