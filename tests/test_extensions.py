"""Tests for the §IV future-work extensions.

Covers hybrid fitness/novelty guidance, accumulator continuation across
epochs, the dynamic novelty-threshold archive, solution-set mixing and
the island ESS-NS system.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.archive import BestSet, NoveltyArchive, ThresholdArchive
from repro.core.individual import Individual
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.parallel.executor import SerialEvaluator
from repro.parallel.islands import IslandModelConfig
from repro.systems import ESSNS, ESSNSIM, ESSNSConfig, ESSNSIMConfig


def _ind(fit, nov, seed=0):
    rng = np.random.default_rng(seed)
    return Individual(genome=rng.random(4), fitness=fit, novelty=nov)


class TestHybridGuidance:
    @pytest.mark.parametrize("w", [-0.1, 1.1])
    def test_bad_weight_raises(self, w):
        with pytest.raises(EvolutionError):
            NoveltyGAConfig(fitness_weight=w)

    def test_pure_fitness_weight_converges_harder(self, toy_problem, space):
        term = Termination(max_generations=12)
        runs = {}
        for w in (0.0, 1.0):
            cfg = NoveltyGAConfig(
                population_size=20, k_neighbors=5, fitness_weight=w
            )
            runs[w] = NoveltyGA(cfg).run(
                SerialEvaluator(toy_problem), space, term, rng=6
            )
        # w=1 behaves like a fitness-guided GA: lower final diversity.
        div0 = runs[0.0].history.records[-1].genotypic_diversity
        div1 = runs[1.0].history.records[-1].genotypic_diversity
        assert div1 < div0
        # and it should climb the easy toy problem at least as well
        assert runs[1.0].best_set.max_fitness() >= 0.7

    def test_intermediate_weight_runs(self, toy_problem, space):
        cfg = NoveltyGAConfig(population_size=12, k_neighbors=4, fitness_weight=0.5)
        result = NoveltyGA(cfg).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=3),
            rng=0,
        )
        assert len(result.best_set) > 0


class TestAccumulatorContinuation:
    def test_best_set_survives_across_runs(self, toy_problem, space):
        cfg = NoveltyGAConfig(population_size=10, k_neighbors=4)
        archive = NoveltyArchive(cfg.archive_capacity)
        best = BestSet(cfg.best_set_capacity)
        term = Termination(max_generations=2)
        ev = SerialEvaluator(toy_problem)

        r1 = NoveltyGA(cfg).run(
            ev, space, term, rng=1, archive=archive, best_set=best
        )
        peak_after_first = best.max_fitness()
        assert peak_after_first > 0
        # Second epoch continues the same accumulators.
        NoveltyGA(cfg).run(
            ev, space, term, rng=2,
            initial_population=r1.population,
            archive=archive, best_set=best,
        )
        assert best.max_fitness() >= peak_after_first
        assert len(archive) > 0

    def test_external_archive_is_the_result_archive(self, toy_problem, space):
        cfg = NoveltyGAConfig(population_size=10, k_neighbors=4)
        archive = NoveltyArchive(cfg.archive_capacity)
        result = NoveltyGA(cfg).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=1),
            rng=0,
            archive=archive,
        )
        assert result.archive is archive


class TestThresholdArchive:
    def test_admission_semantics(self):
        ta = ThresholdArchive(threshold=0.5)
        ta.update([_ind(0.5, 0.6, 1), _ind(0.5, 0.4, 2)])
        assert len(ta) == 1
        assert ta.admissions_total == 1

    def test_threshold_rises_on_flood(self):
        ta = ThresholdArchive(
            threshold=0.1, adjust_every=1, target_admissions=1
        )
        before = ta.threshold
        ta.update([_ind(0.5, 0.9, i) for i in range(5)])  # 5 admissions > 1
        assert ta.threshold > before

    def test_threshold_lowers_on_drought(self):
        ta = ThresholdArchive(threshold=0.9, adjust_every=1)
        before = ta.threshold
        ta.update([_ind(0.5, 0.1, 1)])  # no admission
        assert ta.threshold < before

    def test_max_size_trims_least_novel(self):
        ta = ThresholdArchive(threshold=0.01, max_size=3, adjust_every=100)
        ta.update([_ind(0.5, 0.1 * i, i) for i in range(1, 7)])
        assert len(ta) == 3
        kept = sorted(ind.novelty for ind in ta)
        assert kept == pytest.approx([0.4, 0.5, 0.6])

    def test_unbounded_by_default(self):
        ta = ThresholdArchive(threshold=0.01, adjust_every=1000)
        ta.update([_ind(0.5, 0.5, i) for i in range(50)])
        assert len(ta) == 50

    def test_requires_scores(self):
        ta = ThresholdArchive()
        with pytest.raises(EvolutionError):
            ta.update([Individual(genome=np.zeros(3), fitness=0.5)])

    def test_fitness_values_interface(self):
        ta = ThresholdArchive(threshold=0.1)
        ta.update([_ind(0.3, 0.5, 1), _ind(0.8, 0.6, 2)])
        assert sorted(ta.fitness_values()) == [0.3, 0.8]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0.0},
            {"adjust_every": 0},
            {"raise_factor": 1.0},
            {"lower_factor": 1.0},
            {"target_admissions": 0},
            {"max_size": 0},
        ],
    )
    def test_invalid_params_raise(self, kwargs):
        with pytest.raises(EvolutionError):
            ThresholdArchive(**kwargs)

    def test_plugs_into_novelty_ga(self, toy_problem, space):
        ta = ThresholdArchive(threshold=0.01, max_size=20)
        cfg = NoveltyGAConfig(population_size=10, k_neighbors=4)
        result = NoveltyGA(cfg).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=3),
            rng=0,
            archive=ta,
        )
        assert result.archive is ta
        assert len(result.best_set) > 0


class TestSolutionMixing:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"novel_fraction": -0.1},
            {"random_fraction": 1.0},
            {"novel_fraction": 0.6, "random_fraction": 0.5},
            {"archive_kind": "bogus"},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(EvolutionError):
            ESSNSConfig(**kwargs)

    def test_mixed_solution_set_is_larger(self, small_fire):
        base_cfg = NoveltyGAConfig(
            population_size=10, k_neighbors=4, best_set_capacity=8
        )
        plain = ESSNS(
            ESSNSConfig(nsga=base_cfg, max_generations=2)
        ).run(small_fire, rng=4)
        mixed = ESSNS(
            ESSNSConfig(
                nsga=base_cfg,
                max_generations=2,
                novel_fraction=0.25,
                random_fraction=0.25,
            )
        ).run(small_fire, rng=4)
        for p, m in zip(plain.steps, mixed.steps):
            assert m.n_solutions >= p.n_solutions

    def test_threshold_archive_kind_runs(self, small_fire):
        cfg = ESSNSConfig(
            nsga=NoveltyGAConfig(
                population_size=10, k_neighbors=4, best_set_capacity=8
            ),
            max_generations=2,
            archive_kind="threshold",
        )
        run = ESSNS(cfg).run(small_fire, rng=4)
        assert len(run.steps) == small_fire.n_steps


class TestESSNSIM:
    def _config(self, **over):
        defaults = dict(
            nsga=NoveltyGAConfig(
                population_size=8, k_neighbors=3, best_set_capacity=6
            ),
            islands=IslandModelConfig(
                n_islands=2, migration_interval=2, n_migrants=1
            ),
            max_generations=4,
        )
        defaults.update(over)
        return ESSNSIMConfig(**defaults)

    def test_run_structure(self, small_fire):
        run = ESSNSIM(self._config()).run(small_fire, rng=0)
        assert run.system == "ESSNS-IM"
        assert len(run.steps) == small_fire.n_steps
        # one bestSet per island feeds the Monitor
        assert all(2 <= s.n_solutions <= 12 for s in run.steps)

    def test_hybrid_name(self, small_fire):
        system = ESSNSIM(
            self._config(
                nsga=NoveltyGAConfig(
                    population_size=8,
                    k_neighbors=3,
                    best_set_capacity=6,
                    fitness_weight=0.5,
                )
            )
        )
        assert system.name == "ESSNS-IM(w=0.5)"

    def test_deterministic(self, small_fire):
        a = ESSNSIM(self._config()).run(small_fire, rng=9)
        b = ESSNSIM(self._config()).run(small_fire, rng=9)
        assert np.array_equal(a.qualities(), b.qualities(), equal_nan=True)

    def test_broadcast_topology(self, small_fire):
        cfg = self._config(
            islands=IslandModelConfig(
                n_islands=2,
                migration_interval=2,
                n_migrants=1,
                topology="broadcast",
            )
        )
        run = ESSNSIM(cfg).run(small_fire, rng=1)
        assert len(run.steps) == small_fire.n_steps

    def test_quality_in_range(self, small_fire):
        run = ESSNSIM(self._config()).run(small_fire, rng=2)
        q = run.qualities()
        assert np.isnan(q[0])
        assert ((q[1:] >= 0) & (q[1:] <= 1)).all()
