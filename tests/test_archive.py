"""Tests for NoveltyArchive and BestSet (Algorithm 1 accumulators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.archive import BestSet, NoveltyArchive
from repro.core.individual import Individual
from repro.errors import EvolutionError


def _ind(fit, nov=None, seed=None):
    rng = np.random.default_rng(seed if seed is not None else int(fit * 1e6) % 2**31)
    return Individual(genome=rng.random(9), fitness=fit, novelty=nov)


class TestNoveltyArchive:
    def test_fills_up_to_capacity(self):
        arch = NoveltyArchive(capacity=3)
        arch.update([_ind(0.1, nov=0.5), _ind(0.2, nov=0.4)])
        assert len(arch) == 2
        arch.update([_ind(0.3, nov=0.3), _ind(0.4, nov=0.2)])
        assert len(arch) == 3

    def test_novelty_policy_keeps_most_novel(self):
        arch = NoveltyArchive(capacity=2)
        arch.update([_ind(0.1, nov=0.1), _ind(0.2, nov=0.9)])
        arch.update([_ind(0.3, nov=0.5)])
        novelties = sorted(ind.novelty for ind in arch)
        assert novelties == [0.5, 0.9]  # the 0.1-novelty member was evicted

    def test_min_novelty(self):
        arch = NoveltyArchive(capacity=5)
        assert arch.min_novelty() == 0.0
        arch.update([_ind(0.1, nov=0.3), _ind(0.2, nov=0.7)])
        assert arch.min_novelty() == 0.3

    def test_random_policy_bounded(self):
        arch = NoveltyArchive(capacity=4, policy="random", rng=0)
        for i in range(20):
            arch.update([_ind(i / 20, nov=0.5, seed=i)])
        assert len(arch) == 4

    def test_random_policy_replaces(self):
        arch = NoveltyArchive(capacity=2, policy="random", rng=1)
        arch.update([_ind(0.1, nov=0.1, seed=1), _ind(0.2, nov=0.2, seed=2)])
        before = {id(m) for m in arch.members()}
        for i in range(10):
            arch.update([_ind(0.5, nov=0.9, seed=100 + i)])
        after = {id(m) for m in arch.members()}
        assert before != after

    def test_requires_scores(self):
        arch = NoveltyArchive(capacity=2)
        with pytest.raises(EvolutionError):
            arch.update([Individual(genome=np.zeros(3), fitness=0.5)])  # no novelty
        with pytest.raises(EvolutionError):
            arch.update([Individual(genome=np.zeros(3), novelty=0.5)])  # no fitness

    def test_stores_copies(self):
        ind = _ind(0.5, nov=0.5)
        arch = NoveltyArchive(capacity=2)
        arch.update([ind])
        ind.genome[0] = 999.0
        assert arch.members()[0].genome[0] != 999.0

    def test_fitness_values(self):
        arch = NoveltyArchive(capacity=3)
        arch.update([_ind(0.3, nov=0.2), _ind(0.8, nov=0.9)])
        assert sorted(arch.fitness_values()) == [0.3, 0.8]

    @pytest.mark.parametrize("cap", [0, -1])
    def test_bad_capacity_raises(self, cap):
        with pytest.raises(EvolutionError):
            NoveltyArchive(capacity=cap)

    def test_bad_policy_raises(self):
        with pytest.raises(EvolutionError):
            NoveltyArchive(capacity=2, policy="fifo")

    def test_empty_update_noop(self):
        arch = NoveltyArchive(capacity=2)
        arch.update([])
        assert len(arch) == 0


class TestBestSet:
    def test_keeps_the_fittest(self):
        bs = BestSet(capacity=2)
        bs.update([_ind(0.3), _ind(0.9), _ind(0.1)])
        fits = [ind.fitness for ind in bs]
        assert fits == [0.9, 0.3]

    def test_max_fitness_empty_is_zero(self):
        assert BestSet(capacity=2).max_fitness() == 0.0  # Algorithm 1 line 5

    def test_max_fitness_tracks_all_time_best(self):
        bs = BestSet(capacity=1)
        bs.update([_ind(0.7)])
        bs.update([_ind(0.4)])  # worse later candidates don't displace
        assert bs.max_fitness() == 0.7

    def test_accumulates_across_generations(self):
        # The defining property vs a final population: early good
        # solutions survive arbitrarily many later updates.
        bs = BestSet(capacity=3)
        bs.update([_ind(0.95, seed=1)])
        for g in range(10):
            bs.update([_ind(0.1 + g * 0.01, seed=100 + g)])
        assert bs.max_fitness() == 0.95

    def test_dedupes_identical_genomes(self):
        ind = _ind(0.5, seed=7)
        clone = ind.copy()
        bs = BestSet(capacity=3)
        bs.update([ind, clone])
        assert len(bs) == 1

    def test_dedupe_disabled(self):
        ind = _ind(0.5, seed=7)
        bs = BestSet(capacity=3, dedupe=False)
        bs.update([ind, ind.copy()])
        assert len(bs) == 2

    def test_requires_fitness(self):
        with pytest.raises(EvolutionError):
            BestSet(capacity=2).update([Individual(genome=np.zeros(3))])

    def test_genomes_matrix(self):
        bs = BestSet(capacity=2)
        bs.update([_ind(0.3, seed=1), _ind(0.9, seed=2)])
        g = bs.genomes()
        assert g.shape == (2, 9)

    def test_genomes_empty(self):
        assert BestSet(capacity=2).genomes().shape == (0, 0)

    def test_stores_copies(self):
        ind = _ind(0.5)
        bs = BestSet(capacity=2)
        bs.update([ind])
        ind.fitness = 0.0
        assert bs.max_fitness() == 0.5

    def test_bad_capacity_raises(self):
        with pytest.raises(EvolutionError):
            BestSet(capacity=0)
