"""Tests for the shared unit-conversion constants."""

from __future__ import annotations

import pytest

from repro.units import METERS_TO_FEET, MPH_TO_FTMIN


class TestUnits:
    def test_values(self):
        assert METERS_TO_FEET == pytest.approx(3.280839895)
        assert MPH_TO_FTMIN == 88.0

    def test_firelib_reexports_are_the_same_object(self):
        # The firelib modules must not keep private copies of the
        # constants — bitwise backend identity depends on one value.
        from repro.firelib import rothermel, simulator

        assert simulator.METERS_TO_FEET is METERS_TO_FEET
        assert rothermel.MPH_TO_FTMIN is MPH_TO_FTMIN
