"""Tests for the Rothermel spread kernel (physics sanity + invariants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.firelib.moisture import Moisture
from repro.firelib.rothermel import MPH_TO_FTMIN, FuelBed, SpreadResult, spread

DRY = Moisture.from_percent(5, 6, 8, 50)
DAMP = Moisture.from_percent(10, 11, 12, 80)


class TestFuelBed:
    @pytest.mark.parametrize("code", range(1, 14))
    def test_intermediates_positive(self, code):
        bed = FuelBed.for_model(code)
        assert bed.sigma > 0
        assert bed.beta > 0
        assert bed.gamma > 0
        assert 0 < bed.xi < 1
        assert bed.wind_b > 0 and bed.wind_k > 0
        assert bed.slope_k > 0
        assert bed.rho_b > 0

    def test_cached_instance(self):
        assert FuelBed.for_model(3) is FuelBed.for_model(3)

    @pytest.mark.parametrize("code", range(1, 14))
    def test_dry_fuel_spreads(self, code):
        assert FuelBed.for_model(code).no_wind_rate(DRY) > 0

    def test_wetter_is_slower(self):
        bed = FuelBed.for_model(1)
        assert bed.no_wind_rate(DRY) > bed.no_wind_rate(DAMP)

    def test_extinction_moisture_stops_spread(self):
        bed = FuelBed.for_model(1)  # mext 12%
        soaked = Moisture.from_percent(30, 30, 30, 200)
        assert bed.no_wind_rate(soaked) == 0.0

    def test_grass_faster_than_timber_litter(self):
        # Model 1 (short grass) is the classic fast fuel; model 8
        # (closed timber litter) the classic slow one.
        assert FuelBed.for_model(1).no_wind_rate(DRY) > FuelBed.for_model(
            8
        ).no_wind_rate(DRY)

    def test_phi_wind_monotone(self):
        bed = FuelBed.for_model(1)
        winds = [0.0, 100.0, 400.0, 800.0]
        phis = [bed.phi_wind(w) for w in winds]
        assert phis[0] == 0.0
        assert all(a < b for a, b in zip(phis, phis[1:]))

    def test_phi_slope_monotone(self):
        bed = FuelBed.for_model(1)
        phis = [bed.phi_slope(s) for s in (0.0, 10.0, 30.0, 50.0)]
        assert phis[0] == 0.0
        assert all(a < b for a, b in zip(phis, phis[1:]))

    def test_effective_wind_inverts_phi(self):
        bed = FuelBed.for_model(1)
        wind = 300.0  # ft/min
        phi = bed.phi_wind(wind)
        assert bed.effective_wind(phi) == pytest.approx(wind, rel=1e-9)


class TestSpread:
    def test_no_wind_no_slope_is_circular(self):
        r = spread(1, DRY, 0.0, 0.0, 0.0, 0.0)
        assert r.ros_max == pytest.approx(r.ros_no_wind)
        assert r.eccentricity == 0.0

    def test_wind_sets_heading(self):
        r = spread(1, DRY, 10.0, 135.0, 0.0, 0.0)
        assert r.dir_max_deg == pytest.approx(135.0)
        assert r.ros_max > r.ros_no_wind
        assert 0 < r.eccentricity < 1

    def test_slope_pushes_upslope(self):
        # aspect 270 (faces west) → upslope is 90 (east)
        r = spread(1, DRY, 0.0, 0.0, 30.0, 270.0)
        assert r.dir_max_deg == pytest.approx(90.0)
        assert r.ros_max > r.ros_no_wind

    def test_wind_against_slope_partial_cancel(self):
        with_wind = spread(1, DRY, 5.0, 90.0, 20.0, 270.0)  # aligned
        against = spread(1, DRY, 5.0, 270.0, 20.0, 270.0)  # opposed
        assert with_wind.ros_max > against.ros_max

    def test_stronger_wind_faster_and_more_eccentric(self):
        slow = spread(1, DRY, 3.0, 0.0, 0.0, 0.0)
        fast = spread(1, DRY, 20.0, 0.0, 0.0, 0.0)
        assert fast.ros_max > slow.ros_max
        assert fast.eccentricity > slow.eccentricity

    def test_wet_fuel_yields_zero_everywhere(self):
        r = spread(1, Moisture.from_percent(40, 40, 40, 250), 10.0, 0.0, 10.0, 0.0)
        assert r.ros_no_wind == 0.0
        assert r.ros_max == 0.0
        assert not r.is_spreading()

    def test_array_terrain_broadcasts(self):
        slope = np.array([[0.0, 10.0], [20.0, 30.0]])
        aspect = np.full((2, 2), 180.0)
        r = spread(1, DRY, 5.0, 0.0, slope, aspect)
        assert np.asarray(r.ros_max).shape == (2, 2)
        # steeper cells spread faster: wind(N) + upslope(N) aligned
        ros = np.asarray(r.ros_max)
        assert ros[0, 0] < ros[0, 1] < ros[1, 0] < ros[1, 1]

    def test_scalar_output_types(self):
        r = spread(1, DRY, 5.0, 0.0, 10.0, 180.0)
        assert isinstance(r.ros_max, float)
        assert isinstance(r.dir_max_deg, float)
        assert isinstance(r.eccentricity, float)

    def test_result_is_spreading_flag(self):
        assert spread(1, DRY, 0.0, 0.0, 0.0, 0.0).is_spreading()

    def test_mph_constant(self):
        assert MPH_TO_FTMIN == 88.0

    def test_plausible_grass_magnitude(self):
        # Model 1 at ~5% moisture, no wind: literature puts R0 in the
        # low single digits of ft/min. Guard the order of magnitude so a
        # units regression (e.g. mph vs ft/min) cannot slip through.
        r = spread(1, DRY, 0.0, 0.0, 0.0, 0.0)
        assert 1.0 < r.ros_no_wind < 20.0
        windy = spread(1, DRY, 15.0, 0.0, 0.0, 0.0)
        assert 100.0 < windy.ros_max < 2000.0
