"""Tests for the novelty score (Eqs. 1–2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.novelty import (
    behaviour_distance_matrix,
    knn_novelty,
    novelty_scores,
)
from repro.errors import NoveltyError


class TestBehaviourDistanceMatrix:
    def test_absolute_by_default(self):
        d = behaviour_distance_matrix([0.2], [0.5, 0.1])
        assert np.allclose(d, [[0.3, 0.1]])

    def test_signed_variant(self):
        d = behaviour_distance_matrix([0.2], [0.5, 0.1], signed=True)
        assert np.allclose(d, [[-0.3, 0.1]])

    def test_shape(self):
        d = behaviour_distance_matrix(np.zeros(3), np.zeros(5))
        assert d.shape == (3, 5)

    def test_self_distance_zero(self):
        f = np.array([0.3, 0.7])
        d = behaviour_distance_matrix(f, f)
        assert np.allclose(np.diag(d), 0.0)


class TestKnnNovelty:
    def test_average_of_k_smallest(self):
        d = np.array([[0.5, 0.1, 0.3]])
        assert knn_novelty(d, 2)[0] == pytest.approx(0.2)

    def test_k_clipped_to_row_length(self):
        d = np.array([[0.5, 0.1]])
        assert knn_novelty(d, 10)[0] == pytest.approx(0.3)

    def test_k_one_is_nearest(self):
        d = np.array([[0.5, 0.1, 0.3]])
        assert knn_novelty(d, 1)[0] == pytest.approx(0.1)

    def test_invalid_k_raises(self):
        with pytest.raises(NoveltyError):
            knn_novelty(np.ones((2, 2)), 0)

    def test_empty_reference_raises(self):
        with pytest.raises(NoveltyError):
            knn_novelty(np.zeros((2, 0)), 1)


class TestNoveltyScores:
    def test_unique_behaviour_is_most_novel(self):
        # Four clones at fitness 0.5 and one outlier at 0.9: the outlier
        # must receive the highest novelty (Eq. 1 with Eq. 2 distances).
        fitness = np.array([0.5, 0.5, 0.5, 0.5, 0.9])
        rho = novelty_scores(fitness, fitness, k=2)
        assert np.argmax(rho) == 4
        assert rho[0] == pytest.approx(0.0)  # has exact-behaviour peers

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        f = rng.random(20)
        rho = novelty_scores(f, f, k=5)
        assert (rho >= 0).all()

    def test_self_exclusion_matters(self):
        f = np.array([0.1, 0.9])
        with_self = novelty_scores(f, f, k=1, exclude_self=False)
        without = novelty_scores(f, f, k=1, exclude_self=True)
        # with self included, everyone's nearest neighbour is themselves
        assert np.allclose(with_self, 0.0)
        assert np.allclose(without, 0.8)

    def test_candidates_disjoint_from_reference(self):
        rho = novelty_scores([0.5], [0.1, 0.9], k=2, exclude_self=False)
        assert rho[0] == pytest.approx(0.4)

    def test_single_member_reference(self):
        # Only itself to compare against → novelty defined as 0.
        rho = novelty_scores([0.4], [0.4], k=3, exclude_self=True)
        assert rho[0] == 0.0

    def test_empty_reference_raises(self):
        with pytest.raises(NoveltyError):
            novelty_scores([0.5], [], k=1)

    def test_whole_population_k(self):
        # k = reference size reproduces the "entire population" variant.
        f = np.array([0.0, 0.5, 1.0])
        rho = novelty_scores(f, f, k=len(f))
        assert rho[1] == pytest.approx(0.5)
        assert rho[0] == pytest.approx((0.5 + 1.0) / 2)

    def test_signed_scores_can_be_negative(self):
        f = np.array([0.1, 0.9])
        rho = novelty_scores(f, f, k=1, signed=True)
        assert rho[0] == pytest.approx(-0.8)  # 0.1 − 0.9
        assert rho[1] == pytest.approx(0.8)

    def test_archive_extends_reference(self):
        # An individual unique in the population but common in the
        # archive must not look novel (the archive's whole purpose).
        pop = np.array([0.5, 0.5, 0.9])
        archive = np.array([0.9, 0.9, 0.9])
        rho_no_arch = novelty_scores(pop, pop, k=2)
        rho_arch = novelty_scores(pop, np.concatenate([pop, archive]), k=2)
        assert rho_arch[2] < rho_no_arch[2]
