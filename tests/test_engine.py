"""Tests for the batched simulation engine (facade, backends, cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_engine_totals
from repro.core.scenario import ParameterSpace
from repro.engine import (
    ScenarioResultCache,
    SimulationEngine,
    StepSpec,
    backend_names,
    create_backend,
    register_backend,
)
from repro.engine.cache import CacheStats
from repro.errors import ParallelError, ReproError, SimulationError
from repro.grid.terrain import Terrain
from repro.systems.problem import PredictionStepProblem
from repro.systems.results import RunResult, StepResult

SPACE = ParameterSpace()


@pytest.fixture()
def spec(step1_problem) -> StepSpec:
    p = step1_problem
    return StepSpec(
        terrain=p.terrain,
        start_burned=p.start_burned,
        real_burned=p.real_burned,
        horizon=p.horizon,
        space=p.space,
    )


class TestCache:
    def test_disabled_by_default(self):
        cache = ScenarioResultCache()
        assert not cache.enabled
        key = cache.key(SPACE.sample(1, 0)[0])
        cache.put(key, 0.5)
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_hit_after_put(self):
        cache = ScenarioResultCache(capacity=4)
        g = SPACE.sample(1, 1)[0]
        key = cache.key(g)
        assert cache.get(key) is None
        cache.put(key, 0.75)
        assert cache.get(key) == 0.75
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_quantization_merges_close_genomes(self):
        cache = ScenarioResultCache(capacity=4, decimals=4)
        g = SPACE.sample(1, 2)[0]
        cache.put(cache.key(g), 0.5)
        assert cache.get(cache.key(g + 1e-9)) == 0.5
        assert cache.get(cache.key(g + 1e-2)) is None

    def test_negative_zero_folds_into_zero(self):
        cache = ScenarioResultCache(capacity=2)
        assert cache.key(np.array([-0.0, 1.0])) == cache.key(np.array([0.0, 1.0]))

    def test_lru_eviction_order(self):
        cache = ScenarioResultCache(capacity=2)
        keys = [cache.key(np.full(9, float(i))) for i in range(3)]
        cache.put(keys[0], 0.0)
        cache.put(keys[1], 1.0)
        assert cache.get(keys[0]) == 0.0  # refresh 0 → 1 becomes LRU
        cache.put(keys[2], 2.0)
        assert cache.get(keys[1]) is None  # evicted
        assert cache.get(keys[0]) == 0.0
        assert cache.stats.evictions == 1

    def test_invalid_params_raise(self):
        with pytest.raises(ReproError):
            ScenarioResultCache(capacity=-1)
        with pytest.raises(ReproError):
            ScenarioResultCache(capacity=1, decimals=-2)

    def test_stats_merge_and_rate(self):
        a = CacheStats(hits=3, misses=1)
        b = CacheStats(hits=1, misses=3, evictions=2)
        a.merge(b)
        assert (a.hits, a.misses, a.evictions) == (4, 4, 2)
        assert a.hit_rate() == 0.5
        assert CacheStats().hit_rate() == 0.0


class TestRegistry:
    def test_builtin_names(self):
        assert {"reference", "vectorized", "process"} <= set(backend_names())

    def test_unknown_backend_raises(self, spec):
        with pytest.raises(ReproError, match="unknown engine backend"):
            create_backend("gpu", spec)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ReproError, match="already registered"):
            register_backend("reference")(type("Dup", (), {}))

    def test_process_cannot_nest_itself(self, spec):
        with pytest.raises(ReproError, match="cannot nest"):
            create_backend("process", spec, inner="process")


class TestStepSpec:
    def test_validates_shapes_and_horizon(self, terrain):
        good = np.zeros(terrain.shape, dtype=bool)
        good[0, 0] = True
        with pytest.raises(SimulationError):
            StepSpec(terrain, np.zeros((2, 2), bool), good, 10.0, SPACE)
        with pytest.raises(SimulationError):
            StepSpec(terrain, good, np.zeros((2, 2), bool), 10.0, SPACE)
        with pytest.raises(SimulationError):
            StepSpec(terrain, np.zeros(terrain.shape, bool), good, 10.0, SPACE)
        with pytest.raises(SimulationError):
            StepSpec(terrain, good, good, 0.0, SPACE)
        with pytest.raises(SimulationError):
            StepSpec(terrain, good, good, float("inf"), SPACE)


class TestSimulationEngine:
    def test_callable_matches_problem(self, step1_problem):
        genomes = SPACE.sample(6, 3)
        engine = SimulationEngine.from_problem(step1_problem)
        direct = np.array(
            [step1_problem.evaluate_one(g) for g in genomes]
        )
        assert np.array_equal(engine(genomes), direct)
        assert engine.evaluations == 6
        assert engine.stats.simulations == 6

    def test_backends_bitwise_equal(self, step1_problem):
        genomes = SPACE.sample(10, 4)
        ref = SimulationEngine.from_problem(step1_problem, backend="reference")
        vec = SimulationEngine.from_problem(step1_problem, backend="vectorized")
        assert np.array_equal(ref(genomes), vec(genomes))
        assert np.array_equal(
            ref.burned_maps(genomes[:4]), vec.burned_maps(genomes[:4])
        )

    def test_unknown_backend_raises(self, step1_problem):
        with pytest.raises(ReproError):
            SimulationEngine.from_problem(step1_problem, backend="nope")

    def test_empty_batch(self, step1_problem):
        engine = SimulationEngine.from_problem(step1_problem)
        assert engine(np.zeros((0, 9))).shape == (0,)

    def test_cache_skips_repeat_simulations(self, step1_problem):
        engine = SimulationEngine.from_problem(
            step1_problem, backend="vectorized", cache_size=64
        )
        genomes = SPACE.sample(5, 5)
        first = engine(genomes)
        second = engine(genomes)
        assert np.array_equal(first, second)
        assert engine.stats.evaluations == 10
        assert engine.stats.simulations == 5
        assert engine.cache_stats.hits == 5

    def test_cache_dedupes_within_batch(self, step1_problem):
        engine = SimulationEngine.from_problem(
            step1_problem, backend="reference", cache_size=64
        )
        g = SPACE.sample(3, 6)
        batch = np.vstack([g, g])
        values = engine(batch)
        assert np.array_equal(values[:3], values[3:])
        assert engine.stats.simulations == 3

    def test_closed_engine_rejects_calls(self, step1_problem):
        engine = SimulationEngine.from_problem(step1_problem)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ParallelError):
            engine(SPACE.sample(1, 0))

    def test_process_backend_matches_serial(self, step1_problem):
        genomes = SPACE.sample(8, 8)
        expected = SimulationEngine.from_problem(step1_problem)(genomes)
        with SimulationEngine.from_problem(
            step1_problem, backend="process", n_workers=2
        ) as engine:
            assert np.array_equal(engine(genomes), expected)

    def test_n_workers_wraps_any_backend_in_pool(self, step1_problem):
        genomes = SPACE.sample(6, 9)
        expected = SimulationEngine.from_problem(step1_problem)(genomes)
        with SimulationEngine.from_problem(
            step1_problem, backend="vectorized", n_workers=2
        ) as engine:
            assert np.array_equal(engine(genomes), expected)


class TestProblemIntegration:
    def test_with_backend_copies(self, step1_problem):
        fast = step1_problem.with_backend("vectorized", cache_size=16)
        assert fast.backend == "vectorized"
        assert fast.cache_size == 16
        assert step1_problem.backend == "reference"
        genomes = SPACE.sample(4, 10)
        assert np.array_equal(
            step1_problem.evaluate_batch(genomes), fast.evaluate_batch(genomes)
        )

    def test_pickle_roundtrip_drops_engine(self, step1_problem):
        import pickle

        genomes = SPACE.sample(3, 11)
        before = step1_problem.evaluate_batch(genomes)
        clone = pickle.loads(pickle.dumps(step1_problem))
        assert clone._engine is None and clone._simulator is None
        assert np.array_equal(clone.evaluate_batch(genomes), before)

    def test_process_backend_maps_to_local_vectorized(self, step1_problem):
        prob = step1_problem.with_backend("process")
        assert prob.engine.backend_name == "vectorized"


class TestEngineReporting:
    def _run_with_engine(self) -> RunResult:
        run = RunResult(system="ESS")
        for step in (1, 2):
            run.steps.append(
                StepResult(
                    step=step,
                    kign=0.1,
                    calibration_fitness=0.5,
                    prediction_quality=float("nan") if step == 1 else 0.5,
                    best_scenario_fitness=0.6,
                    n_solutions=4,
                    evaluations=20,
                    engine={
                        "backend": "vectorized",
                        "n_workers": 1,
                        "evaluations": 20,
                        "simulations": 15,
                        "cache": {"hits": 5, "misses": 15, "evictions": 1},
                    },
                )
            )
        return run

    def test_engine_totals_aggregates(self):
        totals = self._run_with_engine().engine_totals()
        assert totals["backend"] == "vectorized"
        assert totals["evaluations"] == 40
        assert totals["simulations"] == 30
        assert totals["cache"] == {"hits": 10, "misses": 30, "evictions": 2}

    def test_engine_totals_empty_without_stats(self):
        run = RunResult(system="ESS")
        assert run.engine_totals() == {}
        assert format_engine_totals(run) == ""

    def test_format_engine_totals_line(self):
        line = format_engine_totals(self._run_with_engine())
        assert "backend=vectorized" in line
        assert "cache-hits=10/40" in line

    def test_step_result_engine_roundtrip(self):
        run = self._run_with_engine()
        back = RunResult.from_dict(run.to_dict())
        assert back.steps[0].engine == run.steps[0].engine

    def test_legacy_payload_without_engine_key(self):
        run = self._run_with_engine()
        data = run.to_dict()
        for s in data["steps"]:
            s.pop("engine")
        back = RunResult.from_dict(data)
        assert back.engine_totals() == {}


class TestSystemRunEngine:
    def test_run_records_engine_stats(self, small_fire):
        from repro.ea.ga import GAConfig
        from repro.systems import ESS, ESSConfig

        system = ESS(
            ESSConfig(ga=GAConfig(population_size=6), max_generations=2),
            backend="vectorized",
            cache_size=128,
        )
        run = system.run(small_fire, rng=2)
        totals = run.engine_totals()
        assert totals["backend"] == "vectorized"
        assert totals["evaluations"] >= totals["simulations"] > 0
        # the Statistical Stage maps run through the same engine
        assert totals["map_simulations"] > 0

    def test_backend_does_not_change_results(self, small_fire):
        from repro.ea.ga import GAConfig
        from repro.systems import ESS, ESSConfig

        def result(backend):
            return ESS(
                ESSConfig(ga=GAConfig(population_size=6), max_generations=2),
                backend=backend,
            ).run(small_fire, rng=3)

        ref, vec = result("reference"), result("vectorized")
        assert np.array_equal(ref.qualities(), vec.qualities(), equal_nan=True)
        assert [s.kign for s in ref.steps] == [s.kign for s in vec.steps]

    def test_invalid_backend_rejected(self):
        from repro.systems import ESS

        with pytest.raises(ReproError):
            ESS(backend="warp-drive")
        with pytest.raises(ReproError):
            ESS(cache_size=-5)


class TestMasterWorkerBackend:
    def test_backend_retarget(self, step1_problem):
        from repro.parallel.master_worker import MasterWorkerEngine

        genomes = SPACE.sample(6, 12)
        expected = SimulationEngine.from_problem(step1_problem)(genomes)
        with MasterWorkerEngine(
            step1_problem, n_workers=2, chunk_size=2, backend="vectorized"
        ) as engine:
            assert np.array_equal(engine(genomes), expected)

    def test_backend_requires_retargetable_problem(self, toy_problem):
        from repro.parallel.master_worker import MasterWorkerEngine

        with pytest.raises(ParallelError, match="with_backend"):
            MasterWorkerEngine(toy_problem, n_workers=1, backend="vectorized")


class TestAdaptiveKernelChoice:
    """The measured-cost kernel model of the heterogeneous-raster path."""

    @pytest.fixture()
    def ridge_problem(self):
        from repro.core.scenario import Scenario
        from repro.workloads.synthetic import make_reference_fire

        terrain = Terrain.with_ridge(24, 24, max_slope=35.0)
        scenario = Scenario(
            model=1, wind_speed=8.0, wind_dir=90.0, m1=6.0, m10=8.0,
            m100=10.0, mherb=60.0, slope=5.0, aspect=270.0,
        )
        fire = make_reference_fire(
            terrain, scenario, ignition=[(12, 6)], n_steps=2,
            step_minutes=25.0, description="ridge",
        )
        return PredictionStepProblem(
            terrain, fire.start_mask(1), fire.real_mask(1),
            fire.step_horizon(1),
        )

    @pytest.fixture(autouse=True)
    def _fresh_model(self, monkeypatch):
        from repro.engine.backends import FORCE_KERNEL_ENV, reset_kernel_costs

        monkeypatch.delenv(FORCE_KERNEL_ENV, raising=False)
        reset_kernel_costs()
        yield
        reset_kernel_costs()

    def _values_and_calls(self, problem, genomes):
        with SimulationEngine.from_problem(
            problem, backend="vectorized"
        ) as engine:
            values = engine(genomes)
            calls = dict(engine._backend.kernel_calls)
        return values, calls

    def test_force_hatch_pins_each_kernel_bitwise_equal(
        self, ridge_problem, monkeypatch
    ):
        from repro.engine.backends import FORCE_KERNEL_ENV

        genomes = SPACE.sample(12, 31)
        monkeypatch.setenv(FORCE_KERNEL_ENV, "table")
        table_values, table_calls = self._values_and_calls(
            ridge_problem, genomes
        )
        assert table_calls == {"table": 12, "raster": 0}
        monkeypatch.setenv(FORCE_KERNEL_ENV, "raster")
        raster_values, raster_calls = self._values_and_calls(
            ridge_problem, genomes
        )
        assert raster_calls == {"table": 0, "raster": 12}
        assert np.array_equal(table_values, raster_values)

    def test_adaptive_choice_measures_both_then_matches(self, ridge_problem):
        genomes = SPACE.sample(16, 32)
        adaptive_values, calls = self._values_and_calls(ridge_problem, genomes)
        from repro.engine.backends import _KERNEL_COSTS, FORCE_KERNEL_ENV

        # after a deduplicated batch both kernels have measured rates
        assert set(_KERNEL_COSTS.rates) == {"table", "raster"}
        assert calls["table"] + calls["raster"] == 16
        import os

        os.environ[FORCE_KERNEL_ENV] = "table"
        try:
            forced_values, _ = self._values_and_calls(ridge_problem, genomes)
        finally:
            del os.environ[FORCE_KERNEL_ENV]
        assert np.array_equal(adaptive_values, forced_values)

    def test_cost_model_prediction_logic(self):
        from repro.engine.backends import KernelCostModel

        model = KernelCostModel(alpha=0.5)
        # un-primed: static ratio rule
        assert model.choose(10, 1000, 8) == "table"  # 4·10 ≤ 1000
        assert model.choose(500, 100, 8) == "raster"
        # one sample: measure the unsampled kernel next
        model.observe("raster", 500, 100, 8, seconds=1e-3)
        assert model.choose(500, 100, 8) == "table"
        # both sampled: argmin of predicted cost wins
        model.observe("table", 10, 100, 8, seconds=1e-6)
        assert model.choose(10, 1000, 8) == "table"
        model.observe("table", 10, 100, 8, seconds=10.0)
        assert model.choose(10, 1000, 8) == "raster"

    def test_cost_model_validates_alpha(self):
        from repro.engine.backends import KernelCostModel

        with pytest.raises(ReproError):
            KernelCostModel(alpha=0.0)
        with pytest.raises(ReproError):
            KernelCostModel(probe_interval=-1)

    def test_periodic_probe_keeps_both_kernels_measured(self):
        """An outlier EMA cannot permanently exclude a kernel: every
        probe_interval-th adaptive choice takes the other one."""
        from repro.engine.backends import KernelCostModel

        model = KernelCostModel(alpha=0.5, probe_interval=4)
        model.observe("table", 10, 100, 8, seconds=1e-6)
        model.observe("raster", 10, 100, 8, seconds=10.0)  # outlier
        choices = [model.choose(10, 100, 8) for _ in range(8)]
        assert choices.count("raster") == 2  # probed, not abandoned
        assert choices.count("table") == 6
        no_probe = KernelCostModel(alpha=0.5, probe_interval=0)
        no_probe.observe("table", 10, 100, 8, seconds=1e-6)
        no_probe.observe("raster", 10, 100, 8, seconds=10.0)
        assert all(
            no_probe.choose(10, 100, 8) == "table" for _ in range(8)
        )
