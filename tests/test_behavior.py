"""Tests for the derived fire-behaviour outputs (Byram/Van Wagner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.firelib.behavior import (
    FireBehavior,
    behavior_at_head,
    fireline_intensity,
    flame_length,
    heat_per_unit_area,
    reaction_intensity,
    residence_time,
    scorch_height,
)
from repro.firelib.moisture import Moisture
from repro.firelib.rothermel import spread

DRY = Moisture.from_percent(5, 6, 8, 50)
DAMP = Moisture.from_percent(11, 12, 13, 90)


class TestReactionIntensity:
    @pytest.mark.parametrize("code", range(1, 14))
    def test_positive_when_dry(self, code):
        assert reaction_intensity(code, DRY) > 0

    def test_zero_above_extinction(self):
        soaked = Moisture.from_percent(40, 40, 40, 250)
        assert reaction_intensity(1, soaked) == 0.0

    def test_wetter_is_weaker(self):
        assert reaction_intensity(1, DRY) > reaction_intensity(1, DAMP)

    def test_heavy_slash_most_intense(self):
        # model 13 carries far more fuel than model 1
        assert reaction_intensity(13, DRY) > reaction_intensity(1, DRY)


class TestResidenceAndHPA:
    def test_residence_time_finer_fuel_shorter(self):
        # model 1 (sigma 3500) burns out faster than model 13 (sigma ~1500s)
        assert residence_time(1) < residence_time(13)

    def test_hpa_composition(self):
        hpa = heat_per_unit_area(4, DRY)
        assert hpa == pytest.approx(
            reaction_intensity(4, DRY) * residence_time(4)
        )


class TestByram:
    def test_fireline_intensity_linear_in_ros(self):
        assert fireline_intensity(600.0, 20.0) == pytest.approx(200.0)
        assert fireline_intensity(600.0, 40.0) == pytest.approx(400.0)

    def test_negative_hpa_raises(self):
        with pytest.raises(SimulationError):
            fireline_intensity(-1.0, 5.0)

    def test_flame_length_monotone(self):
        lengths = [flame_length(i) for i in (10, 100, 1000)]
        assert lengths[0] < lengths[1] < lengths[2]

    def test_flame_length_magnitude(self):
        # Byram: 100 Btu/ft/s ≈ 3.7 ft flame
        assert flame_length(100.0) == pytest.approx(0.45 * 100**0.46, rel=1e-9)
        assert 3.0 < flame_length(100.0) < 5.0

    def test_zero_intensity_zero_flame(self):
        assert flame_length(0.0) == 0.0

    def test_array_support(self):
        out = flame_length(np.array([0.0, 100.0]))
        assert out.shape == (2,)


class TestScorch:
    def test_zero_intensity_no_scorch(self):
        assert scorch_height(0.0) == 0.0

    def test_monotone_in_intensity(self):
        a = scorch_height(50.0)
        b = scorch_height(500.0)
        assert b > a > 0

    def test_hotter_air_scorches_higher(self):
        assert scorch_height(100.0, air_temp_f=95.0) > scorch_height(
            100.0, air_temp_f=60.0
        )

    def test_lethal_air_temperature_raises(self):
        with pytest.raises(SimulationError):
            scorch_height(100.0, air_temp_f=140.0)


class TestBehaviorAtHead:
    def test_bundle_consistent(self):
        result = spread(1, DRY, 10.0, 0.0, 0.0, 0.0)
        b = behavior_at_head(1, DRY, result, wind_speed_mph=10.0)
        assert isinstance(b, FireBehavior)
        assert b.fireline_intensity_btu_ft_s == pytest.approx(
            b.heat_per_unit_area_btu_ft2 * result.ros_max / 60.0
        )
        assert b.flame_length_ft > 0
        assert b.scorch_height_ft > 0

    def test_windier_fire_more_intense(self):
        slow = behavior_at_head(1, DRY, spread(1, DRY, 2.0, 0.0, 0.0, 0.0), 2.0)
        fast = behavior_at_head(1, DRY, spread(1, DRY, 15.0, 0.0, 0.0, 0.0), 15.0)
        assert fast.fireline_intensity_btu_ft_s > slow.fireline_intensity_btu_ft_s
        assert fast.flame_length_ft > slow.flame_length_ft
