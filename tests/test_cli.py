"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_system, main
from repro.systems import ESS, ESSIMDE, ESSIMEA, ESSNS, ESSNSIM
from repro.systems.results import RunResult


class TestBuildSystem:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("ess", ESS),
            ("ess-ns", ESSNS),
            ("essim-ea", ESSIMEA),
            ("essim-de", ESSIMDE),
            ("essns-im", ESSNSIM),
        ],
    )
    def test_all_names(self, name, cls):
        system = build_system(name, population=8, generations=2)
        assert isinstance(system, cls)

    def test_unknown_name_exits(self):
        with pytest.raises(SystemExit):
            build_system("bogus")

    def test_workers_forwarded(self):
        assert build_system("ess", n_workers=3).n_workers == 3

    def test_engine_options_forwarded(self):
        system = build_system("ess", backend="vectorized", cache_size=64)
        assert system.backend == "vectorized"
        assert system.cache_size == 64

    def test_engine_defaults_preserve_behavior(self):
        system = build_system("ess-ns")
        assert system.backend == "reference"
        assert system.cache_size == 0


class TestSimulateCommand:
    def test_prints_stats(self, capsys):
        rc = main(["simulate", "--size", "30", "--minutes", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "burned cells:" in out
        assert "ft/min" in out

    def test_wet_inputs(self, capsys):
        rc = main(
            ["simulate", "--size", "30", "--minutes", "20", "--m1", "55",
             "--mherb", "290", "--wind-speed", "0"]
        )
        assert rc == 0
        assert "burned cells: 1 /" in capsys.readouterr().out


class TestRunCommand:
    def test_run_table(self, capsys):
        rc = main(
            ["run", "ess-ns", "--size", "28", "--steps", "2",
             "--population", "8", "--generations", "2", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ESS-NS" in out
        assert "Kign" in out

    def test_run_with_backend_and_cache(self, capsys):
        rc = main(
            ["run", "ess", "--size", "28", "--steps", "2",
             "--population", "8", "--generations", "2",
             "--backend", "vectorized", "--cache-size", "128"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=vectorized" in out
        assert "cache-hits=" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "ess", "--backend", "quantum"])

    def test_run_saves_json(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        rc = main(
            ["run", "ess", "--size", "28", "--steps", "2",
             "--population", "8", "--generations", "2", "--output", str(path)]
        )
        assert rc == 0
        loaded = RunResult.load_json(path)
        assert loaded.system == "ESS"
        assert len(loaded.steps) == 2


class TestCompareCommand:
    def test_compare_table(self, capsys):
        rc = main(
            ["compare", "--systems", "ess,ess-ns", "--size", "28",
             "--steps", "2", "--population", "8", "--generations", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        assert "ESS" in out and "ESS-NS" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSerializationRoundtrip:
    def test_run_result_roundtrip(self, tmp_path, small_fire):
        from repro.ea.ga import GAConfig
        from repro.systems import ESSConfig

        run = ESS(
            ESSConfig(ga=GAConfig(population_size=8), max_generations=2)
        ).run(small_fire, rng=0)
        path = tmp_path / "r.json"
        run.save_json(path)
        back = RunResult.load_json(path)
        assert back.system == run.system
        assert np.array_equal(back.qualities(), run.qualities(), equal_nan=True)
        assert back.total_evaluations() == run.total_evaluations()
        for a, b in zip(run.steps, back.steps):
            assert a.kign == b.kign
            assert a.timings.seconds == pytest.approx(b.timings.seconds)

    def test_malformed_payload_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            RunResult.from_dict({"no": "steps"})
