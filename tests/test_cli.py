"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_system, main
from repro.systems import ESS, ESSIMDE, ESSIMEA, ESSNS, ESSNSIM
from repro.systems.results import RunResult


class TestBuildSystem:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("ess", ESS),
            ("ess-ns", ESSNS),
            ("essim-ea", ESSIMEA),
            ("essim-de", ESSIMDE),
            ("essns-im", ESSNSIM),
        ],
    )
    def test_all_names(self, name, cls):
        system = build_system(name, population=8, generations=2)
        assert isinstance(system, cls)

    def test_unknown_name_exits(self):
        with pytest.raises(SystemExit):
            build_system("bogus")

    def test_workers_forwarded(self):
        assert build_system("ess", n_workers=3).n_workers == 3

    def test_engine_options_forwarded(self):
        system = build_system("ess", backend="vectorized", cache_size=64)
        assert system.backend == "vectorized"
        assert system.cache_size == 64

    def test_engine_defaults_preserve_behavior(self):
        system = build_system("ess-ns")
        assert system.backend == "reference"
        assert system.cache_size == 0


class TestSimulateCommand:
    def test_prints_stats(self, capsys):
        rc = main(["simulate", "--size", "30", "--minutes", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "burned cells:" in out
        assert "ft/min" in out

    def test_wet_inputs(self, capsys):
        rc = main(
            ["simulate", "--size", "30", "--minutes", "20", "--m1", "55",
             "--mherb", "290", "--wind-speed", "0"]
        )
        assert rc == 0
        assert "burned cells: 1 /" in capsys.readouterr().out


class TestRunCommand:
    def test_run_table(self, capsys):
        rc = main(
            ["run", "ess-ns", "--size", "28", "--steps", "2",
             "--population", "8", "--generations", "2", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ESS-NS" in out
        assert "Kign" in out

    def test_run_with_backend_and_cache(self, capsys):
        rc = main(
            ["run", "ess", "--size", "28", "--steps", "2",
             "--population", "8", "--generations", "2",
             "--backend", "vectorized", "--cache-size", "128"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=vectorized" in out
        assert "cache-hits=" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "ess", "--backend", "quantum"])

    def test_run_saves_json(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        rc = main(
            ["run", "ess", "--size", "28", "--steps", "2",
             "--population", "8", "--generations", "2", "--output", str(path)]
        )
        assert rc == 0
        loaded = RunResult.load_json(path)
        assert loaded.system == "ESS"
        assert len(loaded.steps) == 2


class TestCompareCommand:
    def test_compare_table(self, capsys):
        rc = main(
            ["compare", "--systems", "ess,ess-ns", "--size", "28",
             "--steps", "2", "--population", "8", "--generations", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        assert "ESS" in out and "ESS-NS" in out
        assert "experiment:" in out  # the shared-session summary block

    def test_compare_shared_session_reports_cross_system_hits(self, capsys):
        rc = main(
            ["compare", "--systems", "ess,ess-ns", "--size", "24",
             "--steps", "2", "--population", "8", "--generations", "2",
             "--backend", "vectorized", "--session-cache-size", "2048"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        cross = [
            line for line in out.splitlines()
            if line.startswith("experiment:")
        ]
        assert cross and "cross-system-hits=" in cross[0]
        hits = int(cross[0].split("cross-system-hits=")[1].split()[0])
        assert hits > 0

    def test_compare_isolated_sessions_flag(self, capsys):
        rc = main(
            ["compare", "--systems", "ess,ess-ns", "--size", "24",
             "--steps", "2", "--population", "8", "--generations", "2",
             "--session-cache-size", "2048", "--isolated-sessions"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cross-system-hits=0" in out

    def test_compare_unknown_system_exits(self):
        with pytest.raises(SystemExit):
            main(["compare", "--systems", "ess,warp-drive", "--size", "24"])

    def test_compare_results_store_resumes(self, capsys, tmp_path):
        """compare is routed through the executor seam: it streams into
        a results store and resumes from it like any experiment."""
        store = tmp_path / "cmp.jsonl"
        args = [
            "compare", "--systems", "ess,ess-ns", "--size", "20",
            "--steps", "2", "--population", "8", "--generations", "2",
            "--results", str(store),
        ]
        assert main(args) == 0
        assert "(resumed 0)" in capsys.readouterr().out
        assert main(args) == 0
        assert "(resumed 2)" in capsys.readouterr().out

    def test_compare_executor_process_needs_results(self, capsys):
        with pytest.raises(SystemExit, match="ResultsStore"):
            main(
                ["compare", "--systems", "ess,ess-ns", "--size", "20",
                 "--steps", "2", "--population", "8", "--generations", "2",
                 "--executor", "process"]
            )

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCommand:
    _ARGS = [
        "sweep", "--systems", "ess,ess-ns", "--cases", "grassland",
        "--size", "20", "--steps", "2", "--seeds", "0,1",
        "--population", "8", "--generations", "2",
        "--backend", "vectorized", "--session-cache-size", "1024",
    ]

    def test_sweep_table_and_summary(self, capsys):
        rc = main(self._ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "winners —" in out
        assert "experiment:" in out and "cross-system-hits=" in out

    def test_sweep_saves_plan_results_and_output(self, capsys, tmp_path):
        from repro.experiments import ExperimentPlan, ResultsStore

        plan_path = tmp_path / "plan.json"
        results_path = tmp_path / "results.jsonl"
        out_path = tmp_path / "sweep.json"
        rc = main(
            self._ARGS
            + ["--save-plan", str(plan_path), "--results", str(results_path),
               "--output", str(out_path)]
        )
        assert rc == 0
        plan = ExperimentPlan.load_json(plan_path)
        assert plan.systems == ("ess", "ess-ns")
        assert plan.seeds == (0, 1)
        store = ResultsStore(results_path)
        assert len(store.records()) == plan.n_runs
        from repro.analysis.sweeps import SweepResult

        sweep = SweepResult.load_json(out_path)
        assert len(sweep.cell("ess", "grassland").qualities) == 2

    def test_sweep_resumes_from_results(self, capsys, tmp_path):
        results_path = tmp_path / "results.jsonl"
        assert main(self._ARGS + ["--results", str(results_path)]) == 0
        first = capsys.readouterr().out
        assert "resumed 0" in first
        assert main(self._ARGS + ["--results", str(results_path)]) == 0
        second = capsys.readouterr().out
        assert "resumed 4" in second
        # the resumed table reports the identical grid
        table = lambda text: [
            line for line in text.splitlines()
            if line.startswith(("ess", "ess-ns"))
        ]
        assert table(first)[:2] == table(second)[:2]

    def test_sweep_seed_offset_shifts_plan_seeds(self, tmp_path):
        from repro.experiments import ExperimentPlan

        plan_path = tmp_path / "plan.json"
        rc = main(
            ["sweep", "--systems", "ess", "--cases", "grassland",
             "--size", "20", "--steps", "2", "--seeds", "0,1",
             "--seed", "100", "--population", "8", "--generations", "2",
             "--save-plan", str(plan_path)]
        )
        assert rc == 0
        assert ExperimentPlan.load_json(plan_path).seeds == (100, 101)

    def test_sweep_runs_a_loaded_plan(self, capsys, tmp_path):
        from repro.experiments import BudgetSpec, CaseSpec, ExperimentPlan

        plan = ExperimentPlan(
            name="from-file",
            systems=("ess",),
            cases=(CaseSpec("grassland", size=20, steps=2),),
            seeds=(7,),
            budget=BudgetSpec(population=8, generations=2),
        )
        path = tmp_path / "plan.json"
        plan.save_json(path)
        rc = main(["sweep", "--plan", str(path)])
        assert rc == 0
        assert "plan=from-file" in capsys.readouterr().out

    def test_sweep_unknown_case_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--systems", "ess", "--cases", "atlantis"])

    def test_sweep_bad_seed_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--systems", "ess", "--seeds", "0,x"])

    def test_sweep_missing_plan_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--plan", "/nonexistent/plan.json"])

    def test_sweep_unwritable_results_exits_cleanly(self, tmp_path):
        target = tmp_path / "blocker"
        target.write_text("a file, not a directory")
        with pytest.raises(SystemExit):
            main(
                ["sweep", "--systems", "ess", "--cases", "grassland",
                 "--size", "20", "--steps", "2", "--seeds", "0",
                 "--population", "8", "--generations", "2",
                 "--results", str(target / "r.jsonl")]
            )


class TestSerializationRoundtrip:
    def test_run_result_roundtrip(self, tmp_path, small_fire):
        from repro.ea.ga import GAConfig
        from repro.systems import ESSConfig

        run = ESS(
            ESSConfig(ga=GAConfig(population_size=8), max_generations=2)
        ).run(small_fire, rng=0)
        path = tmp_path / "r.json"
        run.save_json(path)
        back = RunResult.load_json(path)
        assert back.system == run.system
        assert np.array_equal(back.qualities(), run.qualities(), equal_nan=True)
        assert back.total_evaluations() == run.total_evaluations()
        for a, b in zip(run.steps, back.steps):
            assert a.kign == b.kign
            assert a.timings.seconds == pytest.approx(b.timings.seconds)

    def test_malformed_payload_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            RunResult.from_dict({"no": "steps"})
