"""Tests for the Individual container and vector helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.individual import (
    Individual,
    fitness_vector,
    genomes_matrix,
    novelty_vector,
)
from repro.errors import EvolutionError


def _ind(fit=None, nov=None, seed=0):
    rng = np.random.default_rng(seed)
    return Individual(genome=rng.random(9), fitness=fit, novelty=nov)


class TestIndividual:
    def test_genome_coerced_to_float_vector(self):
        ind = Individual(genome=[1, 2, 3])
        assert ind.genome.dtype == np.float64
        assert ind.genome.shape == (3,)

    def test_non_vector_genome_raises(self):
        with pytest.raises(EvolutionError):
            Individual(genome=np.zeros((2, 2)))

    def test_evaluated_flag(self):
        assert not _ind().evaluated
        assert _ind(fit=0.5).evaluated

    def test_copy_is_deep(self):
        a = _ind(fit=0.5, nov=0.1)
        b = a.copy()
        b.genome[0] = 99.0
        b.fitness = 0.9
        assert a.genome[0] != 99.0
        assert a.fitness == 0.5
        assert b.novelty == 0.1


class TestVectors:
    def test_genomes_matrix(self):
        pop = [_ind(seed=i) for i in range(4)]
        m = genomes_matrix(pop)
        assert m.shape == (4, 9)
        assert np.array_equal(m[2], pop[2].genome)

    def test_genomes_matrix_empty(self):
        assert genomes_matrix([]).shape == (0, 0)

    def test_fitness_vector(self):
        pop = [_ind(fit=0.1), _ind(fit=0.9)]
        assert np.array_equal(fitness_vector(pop), [0.1, 0.9])

    def test_fitness_vector_unevaluated_raises(self):
        with pytest.raises(EvolutionError, match="#1"):
            fitness_vector([_ind(fit=0.1), _ind()])

    def test_novelty_vector(self):
        pop = [_ind(fit=0.1, nov=0.3)]
        assert np.array_equal(novelty_vector(pop), [0.3])

    def test_novelty_vector_missing_raises(self):
        with pytest.raises(EvolutionError):
            novelty_vector([_ind(fit=0.1)])
