"""Property-based tests (hypothesis) on the core invariants.

These cover the mathematical contracts the paper's pipeline relies on:
Eq. 3 metric properties, Eq. 1/2 novelty invariants, parameter-space
closure, accumulator bounds, ellipse geometry and propagation causality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.archive import BestSet, NoveltyArchive
from repro.core.fitness import jaccard_fitness
from repro.core.individual import Individual
from repro.core.novelty import novelty_scores
from repro.core.scenario import ParameterSpace
from repro.firelib.ellipse import (
    backing_ros,
    eccentricity_from_effective_wind,
    ros_at_azimuth,
)
from repro.firelib.propagation import directional_travel_times, propagate
from repro.stages.statistical import aggregate_burned_maps

SPACE = ParameterSpace()

bool_masks = arrays(np.bool_, (6, 6))
fitness_arrays = arrays(
    np.float64,
    st.integers(min_value=2, max_value=12),
    elements=st.floats(min_value=0.0, max_value=1.0),
)


# ----------------------------------------------------------------------
# Eq. 3 — Jaccard fitness
# ----------------------------------------------------------------------
class TestJaccardProperties:
    @given(a=bool_masks, b=bool_masks)
    def test_bounds(self, a, b):
        assert 0.0 <= jaccard_fitness(a, b) <= 1.0

    @given(a=bool_masks, b=bool_masks)
    def test_symmetry(self, a, b):
        assert jaccard_fitness(a, b) == pytest.approx(jaccard_fitness(b, a))

    @given(a=bool_masks)
    def test_identity(self, a):
        assert jaccard_fitness(a, a) == 1.0

    @given(a=bool_masks, b=bool_masks, pre=bool_masks)
    def test_pre_burned_bounds(self, a, b, pre):
        assert 0.0 <= jaccard_fitness(a, b, pre_burned=pre) <= 1.0

    @given(a=bool_masks, b=bool_masks)
    def test_pre_equal_to_everything_is_perfect(self, a, b):
        # excluding every cell leaves two empty sets → fitness 1
        pre = np.ones((6, 6), dtype=bool)
        assert jaccard_fitness(a, b, pre_burned=pre) == 1.0


# ----------------------------------------------------------------------
# Eqs. 1–2 — novelty
# ----------------------------------------------------------------------
class TestNoveltyProperties:
    @given(f=fitness_arrays, k=st.integers(min_value=1, max_value=20))
    def test_non_negative(self, f, k):
        rho = novelty_scores(f, f, k=k)
        assert (rho >= 0).all()

    @given(f=fitness_arrays)
    def test_clones_have_zero_novelty(self, f):
        clones = np.full_like(f, float(f[0]))
        rho = novelty_scores(clones, clones, k=3)
        assert np.allclose(rho, 0.0)

    @given(f=fitness_arrays)
    def test_shift_invariance(self, f):
        # Eq. 2 distances depend only on fitness differences.
        rho_a = novelty_scores(f, f, k=2)
        rho_b = novelty_scores(f * 0.5, f * 0.5, k=2)
        assert np.allclose(rho_a * 0.5, rho_b)

    @given(f=fitness_arrays)
    def test_monotone_in_k(self, f):
        # ρ averages the k *smallest* distances, so it is non-decreasing
        # in k for any fixed individual.
        rho1 = novelty_scores(f, f, k=1)
        rho_all = novelty_scores(f, f, k=len(f))
        assert (rho_all >= rho1 - 1e-12).all()


# ----------------------------------------------------------------------
# Table I parameter space
# ----------------------------------------------------------------------
class TestSpaceProperties:
    @given(
        g=arrays(
            np.float64,
            9,
            elements=st.floats(
                min_value=-1e4, max_value=1e4, allow_nan=False
            ),
        )
    )
    def test_clip_closes_into_box(self, g):
        clipped = SPACE.clip(g)
        SPACE.validate(clipped)

    @given(
        g=arrays(
            np.float64,
            9,
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    def test_clip_idempotent(self, g):
        once = SPACE.clip(g)
        twice = SPACE.clip(once)
        assert np.allclose(once, twice)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25)
    def test_decode_encode_roundtrip(self, seed):
        genome = SPACE.sample(1, seed)[0]
        assert np.allclose(SPACE.encode(SPACE.decode(genome)), genome)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25)
    def test_distance_metric_axioms(self, seed):
        a, b, c = SPACE.sample(3, seed)
        dab = SPACE.distance(a, b)
        assert dab >= 0
        assert SPACE.distance(a, a) == 0
        assert dab == pytest.approx(SPACE.distance(b, a))
        # triangle inequality (holds per coordinate, hence for the mean)
        assert dab <= SPACE.distance(a, c) + SPACE.distance(c, b) + 1e-12


# ----------------------------------------------------------------------
# Accumulators
# ----------------------------------------------------------------------
class TestAccumulatorProperties:
    @given(
        fits=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30
        ),
        capacity=st.integers(min_value=1, max_value=10),
    )
    def test_best_set_invariants(self, fits, capacity):
        bs = BestSet(capacity, dedupe=False)
        for i, f in enumerate(fits):
            rng = np.random.default_rng(i)
            bs.update([Individual(genome=rng.random(4), fitness=f)])
        assert len(bs) <= capacity
        assert bs.max_fitness() == pytest.approx(max(fits))
        members = [ind.fitness for ind in bs]
        assert members == sorted(members, reverse=True)

    @given(
        novs=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30
        ),
        capacity=st.integers(min_value=1, max_value=8),
    )
    def test_archive_keeps_top_novelty(self, novs, capacity):
        arch = NoveltyArchive(capacity)
        for i, nv in enumerate(novs):
            rng = np.random.default_rng(i)
            arch.update(
                [Individual(genome=rng.random(4), fitness=0.5, novelty=nv)]
            )
        assert len(arch) == min(len(novs), capacity)
        kept = sorted((ind.novelty for ind in arch), reverse=True)
        expected = sorted(novs, reverse=True)[: len(kept)]
        assert np.allclose(kept, expected)


# ----------------------------------------------------------------------
# Ellipse geometry
# ----------------------------------------------------------------------
class TestEllipseProperties:
    @given(
        wind=st.floats(min_value=0.0, max_value=1e5),
        az=st.floats(min_value=0.0, max_value=360.0),
        heading=st.floats(min_value=0.0, max_value=360.0),
        ros=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_directional_ros_bounded(self, wind, az, heading, ros):
        ecc = eccentricity_from_effective_wind(wind)
        r = ros_at_azimuth(ros, heading, ecc, az)
        assert 0.0 <= r <= ros + 1e-9
        assert r >= backing_ros(ros, ecc) - 1e-9


# ----------------------------------------------------------------------
# Propagation causality
# ----------------------------------------------------------------------
class TestPropagationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        horizon=st.floats(min_value=5.0, max_value=60.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_causality_and_monotonicity(self, seed, horizon):
        rng = np.random.default_rng(seed)
        shape = (9, 9)
        ros = rng.uniform(1.0, 30.0, shape)
        heading = rng.uniform(0, 360, shape)
        ecc = rng.uniform(0, 0.9, shape)
        tt = directional_travel_times(ros, heading, ecc, 50.0)
        times = propagate(tt, [(4, 4)], horizon=horizon)
        finite = times[np.isfinite(times)]
        assert (finite >= 0).all()
        assert times[4, 4] == 0.0
        assert (finite <= horizon).all()
        # shrinking the horizon never adds burned cells
        times_small = propagate(tt, [(4, 4)], horizon=horizon / 2)
        assert not (np.isfinite(times_small) & ~np.isfinite(times)).any()


# ----------------------------------------------------------------------
# Derived fire behaviour (Byram / Van Wagner)
# ----------------------------------------------------------------------
class TestBehaviorProperties:
    @given(
        hpa=st.floats(min_value=0.0, max_value=1e5),
        ros=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_intensity_flame_scorch_non_negative(self, hpa, ros):
        from repro.firelib.behavior import (
            fireline_intensity,
            flame_length,
            scorch_height,
        )

        ib = fireline_intensity(hpa, ros)
        assert ib >= 0
        assert flame_length(ib) >= 0
        assert scorch_height(ib) >= 0

    @given(
        i1=st.floats(min_value=0.0, max_value=1e4),
        i2=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_flame_length_monotone(self, i1, i2):
        from repro.firelib.behavior import flame_length

        lo, hi = sorted((i1, i2))
        assert flame_length(lo) <= flame_length(hi) + 1e-12


# ----------------------------------------------------------------------
# Run-result serialization
# ----------------------------------------------------------------------
class TestSerializationProperties:
    @given(
        qualities=st.lists(
            st.one_of(
                st.none(), st.floats(min_value=0.0, max_value=1.0)
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_roundtrip_preserves_everything(self, qualities):
        from repro.parallel.timing import StageTimings
        from repro.systems.results import RunResult, StepResult

        run = RunResult(system="X")
        for i, q in enumerate(qualities, start=1):
            run.steps.append(
                StepResult(
                    step=i,
                    kign=0.25,
                    calibration_fitness=0.5,
                    prediction_quality=float("nan") if q is None else q,
                    best_scenario_fitness=0.4,
                    n_solutions=5,
                    evaluations=10 * i,
                    timings=StageTimings(seconds={"os": 0.5 * i}),
                )
            )
        back = RunResult.from_dict(run.to_dict())
        assert np.array_equal(back.qualities(), run.qualities(), equal_nan=True)
        assert back.total_evaluations() == run.total_evaluations()
        assert back.total_time() == pytest.approx(run.total_time())


# ----------------------------------------------------------------------
# Statistical stage
# ----------------------------------------------------------------------
class TestStatisticalProperties:
    @given(
        stack=arrays(
            np.bool_,
            st.tuples(
                st.integers(min_value=1, max_value=6),
                st.just(5),
                st.just(5),
            ),
        )
    )
    def test_probabilities_bounded_and_consistent(self, stack):
        pm = aggregate_burned_maps(stack)
        p = pm.probabilities
        assert (p >= 0).all() and (p <= 1).all()
        # a cell burned in every map has probability exactly 1
        always = stack.all(axis=0)
        assert (p[always] == 1.0).all()
        never = ~stack.any(axis=0)
        assert (p[never] == 0.0).all()
        # thresholding at any level keeps monotonicity
        assert not (pm.threshold(0.8) & ~pm.threshold(0.2)).any()
