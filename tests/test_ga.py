"""Tests for the classical GA (ESS baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.individual import Individual
from repro.core.scenario import ParameterSpace
from repro.ea.ga import GAConfig, GeneticAlgorithm, generate_offspring
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.parallel.executor import SerialEvaluator

TERM = Termination(max_generations=10, fitness_threshold=0.99)


def _run(toy_problem, space, seed=0, **cfg):
    config = GAConfig(population_size=20, **cfg)
    return GeneticAlgorithm(config).run(
        SerialEvaluator(toy_problem), space, TERM, rng=seed
    )


class TestGAConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"elitism": 99},
            {"selection": "bogus"},
            {"crossover": "bogus"},
            {"mutation": "bogus"},
            {"n_offspring": 0},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(EvolutionError):
            GAConfig(**kwargs)

    def test_offspring_defaults_to_population(self):
        assert GAConfig(population_size=30).offspring_count == 30
        assert GAConfig(population_size=30, n_offspring=10).offspring_count == 10


class TestGARun:
    def test_improves_over_random(self, toy_problem, space):
        result = _run(toy_problem, space)
        first_gen = result.history.records[0]
        assert result.best.fitness >= first_gen.max_fitness - 1e-12
        assert result.best.fitness > 0.7  # the toy problem is easy

    def test_deterministic(self, toy_problem, space):
        a = _run(toy_problem, space, seed=5)
        b = _run(toy_problem, space, seed=5)
        assert a.best.fitness == b.best.fitness
        assert np.array_equal(a.best.genome, b.best.genome)

    def test_population_size_invariant(self, toy_problem, space):
        result = _run(toy_problem, space)
        assert len(result.population) == 20

    def test_history_per_generation(self, toy_problem, space):
        result = _run(toy_problem, space)
        assert len(result.history) == 10
        gens = result.history.series("generation")
        assert np.array_equal(gens, np.arange(1, 11))

    def test_best_monotone_across_history(self, toy_problem, space):
        result = _run(toy_problem, space, elitism=2)
        mx = result.history.series("max_fitness")
        assert (np.diff(mx) >= -1e-12).all()

    def test_evaluation_count(self, toy_problem, space):
        result = _run(toy_problem, space)
        # initial pop + offspring per generation
        assert result.evaluations == 20 + 10 * 20

    def test_threshold_stops_early(self, toy_problem, space):
        term = Termination(max_generations=50, fitness_threshold=0.5)
        result = GeneticAlgorithm(GAConfig(population_size=20)).run(
            SerialEvaluator(toy_problem), space, term, rng=1
        )
        assert len(result.history) < 50
        assert "threshold" in result.stop_reason

    def test_initial_population_used(self, toy_problem, space):
        genomes = space.sample(20, 99)
        pop = [Individual(genome=g) for g in genomes]
        result = GeneticAlgorithm(GAConfig(population_size=20)).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=1),
            rng=0,
            initial_population=pop,
        )
        assert result.evaluations >= 20

    def test_wrong_initial_size_raises(self, toy_problem, space):
        with pytest.raises(EvolutionError):
            GeneticAlgorithm(GAConfig(population_size=20)).run(
                SerialEvaluator(toy_problem),
                space,
                TERM,
                initial_population=[Individual(genome=space.sample(1, 0)[0])],
            )

    def test_observer_called(self, toy_problem, space):
        seen = []
        GeneticAlgorithm(GAConfig(population_size=10)).run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=3),
            rng=0,
            observer=lambda gen, pop: seen.append((gen, len(pop))),
        )
        assert seen == [(1, 10), (2, 10), (3, 10)]

    def test_genomes_stay_in_box(self, toy_problem, space):
        result = _run(toy_problem, space, mutation_rate=0.5)
        for ind in result.population:
            space.validate(ind.genome)

    def test_bad_fitness_shape_raises(self, space):
        from repro.errors import ReproError

        class BrokenProblem:
            def evaluate_batch(self, genomes):
                return np.zeros(3)  # wrong length

        with pytest.raises(ReproError):
            GeneticAlgorithm(GAConfig(population_size=20)).run(
                SerialEvaluator(BrokenProblem()), space, TERM, rng=0
            )


class TestGenerateOffspring:
    def test_count_and_box(self, space):
        rng = np.random.default_rng(0)
        pop = [Individual(genome=g, fitness=0.5) for g in space.sample(10, 1)]
        config = GAConfig(population_size=10)
        off = generate_offspring(
            pop, np.ones(10), 7, config, space, rng, generation=3
        )
        assert len(off) == 7
        for ind in off:
            assert ind.birth_generation == 3
            assert ind.fitness is None
            space.validate(ind.genome)

    def test_zero_offspring_raises(self, space):
        pop = [Individual(genome=g, fitness=0.5) for g in space.sample(4, 1)]
        with pytest.raises(EvolutionError):
            generate_offspring(
                pop,
                np.ones(4),
                0,
                GAConfig(population_size=4),
                space,
                np.random.default_rng(0),
                1,
            )
