"""Tests for the Jaccard fitness (Eq. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitness import batch_jaccard, jaccard_fitness, jaccard_from_counts
from repro.errors import FitnessError


def _mask(shape, cells):
    m = np.zeros(shape, dtype=bool)
    for r, c in cells:
        m[r, c] = True
    return m


class TestJaccardFromCounts:
    def test_basic(self):
        assert jaccard_from_counts(2, 4) == 0.5

    def test_empty_union_is_perfect(self):
        assert jaccard_from_counts(0, 0) == 1.0

    @pytest.mark.parametrize("i,u", [(-1, 4), (2, -1), (5, 4)])
    def test_inconsistent_raises(self, i, u):
        with pytest.raises(FitnessError):
            jaccard_from_counts(i, u)


class TestJaccardFitness:
    def test_perfect_prediction(self):
        a = _mask((4, 4), [(0, 0), (1, 1)])
        assert jaccard_fitness(a, a.copy()) == 1.0

    def test_disjoint_is_zero(self):
        a = _mask((4, 4), [(0, 0)])
        b = _mask((4, 4), [(3, 3)])
        assert jaccard_fitness(a, b) == 0.0

    def test_partial_overlap(self):
        real = _mask((4, 4), [(0, 0), (0, 1), (0, 2)])
        sim = _mask((4, 4), [(0, 1), (0, 2), (0, 3)])
        assert jaccard_fitness(real, sim) == pytest.approx(2 / 4)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.random((6, 6)) > 0.5
        b = rng.random((6, 6)) > 0.5
        assert jaccard_fitness(a, b) == pytest.approx(jaccard_fitness(b, a))

    def test_pre_burned_excluded(self):
        # Cells burned before the step must not inflate the score.
        pre = _mask((4, 4), [(0, 0), (0, 1)])
        real = pre | _mask((4, 4), [(1, 0)])
        sim = pre | _mask((4, 4), [(2, 2)])
        # Without exclusion the shared pre-burned cells give 2/4;
        # with exclusion the sets are disjoint → 0.
        assert jaccard_fitness(real, sim) == pytest.approx(0.5)
        assert jaccard_fitness(real, sim, pre_burned=pre) == 0.0

    def test_no_growth_and_no_prediction_is_perfect(self):
        pre = _mask((4, 4), [(0, 0)])
        assert jaccard_fitness(pre, pre, pre_burned=pre) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(FitnessError):
            jaccard_fitness(np.zeros((3, 3), bool), np.zeros((4, 4), bool))

    def test_pre_shape_mismatch_raises(self):
        with pytest.raises(FitnessError):
            jaccard_fitness(
                np.zeros((3, 3), bool),
                np.zeros((3, 3), bool),
                pre_burned=np.zeros((2, 2), bool),
            )

    def test_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a = rng.random((5, 5)) > 0.4
            b = rng.random((5, 5)) > 0.4
            f = jaccard_fitness(a, b)
            assert 0.0 <= f <= 1.0


class TestBatchJaccard:
    def test_matches_scalar(self):
        rng = np.random.default_rng(2)
        real = rng.random((6, 6)) > 0.5
        stack = rng.random((5, 6, 6)) > 0.5
        batch = batch_jaccard(real, stack)
        for i in range(5):
            assert batch[i] == pytest.approx(jaccard_fitness(real, stack[i]))

    def test_matches_scalar_with_pre(self):
        rng = np.random.default_rng(3)
        real = rng.random((6, 6)) > 0.5
        pre = rng.random((6, 6)) > 0.8
        stack = rng.random((4, 6, 6)) > 0.5
        batch = batch_jaccard(real, stack, pre_burned=pre)
        for i in range(4):
            assert batch[i] == pytest.approx(
                jaccard_fitness(real, stack[i], pre_burned=pre)
            )

    def test_bad_stack_shape_raises(self):
        with pytest.raises(FitnessError):
            batch_jaccard(np.zeros((3, 3), bool), np.zeros((3, 3), bool))

    def test_stack_grid_mismatch_raises(self):
        with pytest.raises(FitnessError):
            batch_jaccard(np.zeros((3, 3), bool), np.zeros((2, 4, 4), bool))

    def test_pre_shape_mismatch_raises(self):
        with pytest.raises(FitnessError):
            batch_jaccard(
                np.zeros((3, 3), bool),
                np.zeros((2, 3, 3), bool),
                pre_burned=np.zeros((4, 4), bool),
            )

    def test_empty_union_rows_are_perfect(self):
        # No real growth and no predicted growth → vacuously perfect
        # (matches jaccard_from_counts(0, 0) == 1.0), while rows that
        # do predict growth score 0 against the empty reality.
        real = np.zeros((4, 4), dtype=bool)
        stack = np.zeros((3, 4, 4), dtype=bool)
        stack[1, 2, 2] = True
        assert batch_jaccard(real, stack).tolist() == [1.0, 0.0, 1.0]

    def test_pre_burned_covering_whole_real_fire(self):
        # The fire did not grow beyond the pre-burned region: every
        # simulation that also stays inside it is perfect, any
        # predicted growth outside it scores 0.
        pre = _mask((4, 4), [(0, 0), (0, 1), (1, 0)])
        real = pre.copy()
        stack = np.stack([pre, pre | _mask((4, 4), [(3, 3)])])
        assert batch_jaccard(real, stack, pre_burned=pre).tolist() == [1.0, 0.0]

    def test_pre_burned_covering_everything(self):
        pre = np.ones((3, 3), dtype=bool)
        stack = np.stack([np.ones((3, 3), bool), np.zeros((3, 3), bool)])
        assert batch_jaccard(np.ones((3, 3), bool), stack, pre_burned=pre).tolist() == [
            1.0,
            1.0,
        ]

    def test_empty_stack(self):
        out = batch_jaccard(np.zeros((3, 3), bool), np.zeros((0, 3, 3), bool))
        assert out.shape == (0,)
