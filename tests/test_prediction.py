"""Tests for the Prediction Stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.grid.firemap import fire_line
from repro.stages.prediction import predict
from repro.stages.statistical import ProbabilityMap


def _pm(arr, n=4):
    return ProbabilityMap(np.asarray(arr, dtype=np.float64), n_maps=n)


class TestPredict:
    def test_threshold_applied(self):
        pm = _pm([[0.2, 0.6], [0.9, 0.1]])
        out = predict(pm, kign=0.5)
        assert np.array_equal(out.burned, [[False, True], [True, False]])
        assert out.kign == 0.5

    def test_quality_perfect(self):
        pm = _pm([[1.0, 1.0], [0.0, 0.0]])
        real = np.array([[True, True], [False, False]])
        out = predict(pm, 0.5, real_burned=real)
        assert out.quality == 1.0

    def test_quality_nan_without_reality(self):
        out = predict(_pm([[0.5]]), 0.5)
        assert np.isnan(out.quality)

    def test_pre_burned_always_predicted(self):
        # The region burned before the step is burned in the prediction
        # even when the probability matrix missed it.
        pm = _pm([[0.0, 1.0], [0.0, 0.0]])
        pre = np.array([[True, False], [False, False]])
        out = predict(pm, 0.5, pre_burned=pre)
        assert out.burned[0, 0]

    def test_quality_excludes_pre_burned(self):
        pm = _pm([[0.0, 1.0], [0.0, 0.0]])
        pre = np.array([[True, False], [False, False]])
        real = np.array([[True, True], [False, False]])
        out = predict(pm, 0.5, real_burned=real, pre_burned=pre)
        # only the new cell counts and it is correctly predicted
        assert out.quality == 1.0

    def test_fire_line_consistent(self):
        pm = _pm(np.pad(np.ones((3, 3)), 1))
        out = predict(pm, 0.5)
        assert np.array_equal(out.fire_line, fire_line(out.burned))

    @pytest.mark.parametrize("kign", [-0.1, float("nan"), float("inf")])
    def test_invalid_kign_raises(self, kign):
        with pytest.raises(CalibrationError):
            predict(_pm([[0.5]]), kign)

    def test_higher_kign_predicts_subset(self):
        rng = np.random.default_rng(1)
        pm = _pm(rng.random((6, 6)))
        low = predict(pm, 0.3).burned
        high = predict(pm, 0.7).burned
        assert not (high & ~low).any()
