"""Tests for the run-scoped engine session subsystem.

Covers the session-owned resources (persistent worker pool, cross-step
result cache), the per-step engine views, the post-close stats freeze,
and the lightweight problem-update path of the pooled executors.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.reporting import format_run, format_session_totals
from repro.core.scenario import ParameterSpace
from repro.engine import (
    EngineSession,
    SessionResultCache,
    SimulationEngine,
    step_context_digest,
)
from repro.engine.cache import CacheStats
from repro.engine.session import SessionStats
from repro.errors import ParallelError, ReproError
from repro.parallel.executor import ProcessPoolEvaluator
from repro.parallel.master_worker import MasterWorkerEngine
from repro.systems.problem import PredictionStepProblem
from repro.systems.results import RunResult

SPACE = ParameterSpace()


def _spec_of(problem):
    from repro.engine import StepSpec

    return StepSpec.from_problem(problem)


class TestContextDigest:
    def test_same_spec_same_digest(self, step1_problem):
        assert step_context_digest(_spec_of(step1_problem)) == step_context_digest(
            _spec_of(step1_problem)
        )

    def test_horizon_changes_digest(self, step1_problem, small_fire):
        a = _spec_of(step1_problem)
        b = PredictionStepProblem(
            terrain=step1_problem.terrain,
            start_burned=step1_problem.start_burned,
            real_burned=step1_problem.real_burned,
            horizon=step1_problem.horizon + 1.0,
        )
        assert step_context_digest(a) != step_context_digest(_spec_of(b))

    def test_real_burned_changes_digest(self, step1_problem, small_fire):
        b = PredictionStepProblem(
            terrain=step1_problem.terrain,
            start_burned=step1_problem.start_burned,
            real_burned=small_fire.real_mask(2),
            horizon=step1_problem.horizon,
        )
        assert step_context_digest(_spec_of(step1_problem)) != step_context_digest(
            _spec_of(b)
        )


class TestSessionResultCache:
    def test_disabled_by_default(self):
        store = SessionResultCache()
        assert not store.enabled
        view = store.view(b"ctx", 1)
        key = view.key(SPACE.sample(1, 0)[0])
        view.put(key, 0.5)
        assert view.get(key) is None

    def test_cross_step_hit_accounting(self):
        store = SessionResultCache(capacity=8)
        g = SPACE.sample(1, 1)[0]
        v1 = store.view(b"ctx", 1)
        v1.put(v1.key(g), 0.25)
        assert v1.get(v1.key(g)) == 0.25  # same-step hit
        assert store.cross_step_hits == 0
        v2 = store.view(b"ctx", 2)
        assert v2.get(v2.key(g)) == 0.25  # served across the step boundary
        assert store.cross_step_hits == 1
        # run-level totals aggregate both views
        assert store.stats.hits == 2
        assert v1.stats.hits == 1 and v2.stats.hits == 1

    def test_contexts_are_isolated(self):
        store = SessionResultCache(capacity=8)
        g = SPACE.sample(1, 2)[0]
        a = store.view(b"step-a", 1)
        b = store.view(b"step-b", 2)
        a.put(a.key(g), 0.5)
        assert b.get(b.key(g)) is None  # same genome, different context
        assert store.n_contexts == 2

    def test_lru_eviction_spans_contexts(self):
        store = SessionResultCache(capacity=2)
        v = store.view(b"a", 1)
        w = store.view(b"b", 1)
        keys = [v.key(np.full(9, float(i))) for i in range(3)]
        v.put(keys[0], 0.0)
        w.put(keys[1], 1.0)
        w.put(keys[2], 2.0)  # evicts the oldest entry (context a)
        assert v.get(keys[0]) is None
        assert store.stats.evictions == 1

    def test_invalid_params_raise(self):
        with pytest.raises(ReproError):
            SessionResultCache(capacity=-1)
        with pytest.raises(ReproError):
            SessionResultCache(capacity=1, decimals=-1)


class TestEngineSession:
    def test_for_step_matches_plain_engine(self, step1_problem):
        genomes = SPACE.sample(8, 3)
        expected = SimulationEngine.from_problem(step1_problem)(genomes)
        with EngineSession(backend="vectorized", session_cache_size=64) as session:
            engine = session.for_step(step1_problem)
            assert np.array_equal(engine(genomes), expected)

    def test_cross_step_cache_hits_on_repeated_genomes(self, step1_problem):
        """Acceptance: ≥1 cross-step hit across step views of a run."""
        genomes = SPACE.sample(6, 4)
        with EngineSession(backend="vectorized", session_cache_size=256) as session:
            first = session.for_step(step1_problem)
            a = first(genomes)
            first.close()
            second = session.for_step(step1_problem)
            b = second(genomes)
            second.close()
            stats = session.stats
        assert np.array_equal(a, b)
        assert stats.cross_step_hits >= 1
        assert stats.cache.hits >= 6
        # the second step simulated nothing
        assert second.stats.simulations == 0
        assert second.stats.cache.hits == 6

    def test_session_cache_off_keeps_per_step_cache(self, step1_problem):
        with EngineSession(backend="vectorized", cache_size=32) as session:
            engine = session.for_step(step1_problem)
            genomes = SPACE.sample(4, 5)
            engine(genomes)
            engine(genomes)
            assert engine.stats.cache.hits == 4
            assert session.stats.cache.hits == 0  # no cross-step tier

    def test_reuse_after_close_raises(self, step1_problem):
        session = EngineSession()
        session.close()
        session.close()  # idempotent
        with pytest.raises(ReproError, match="already closed"):
            session.for_step(step1_problem)

    def test_invalid_params_raise(self):
        with pytest.raises(ReproError):
            EngineSession(backend="warp-drive")
        with pytest.raises(ReproError):
            EngineSession(n_workers=0)
        with pytest.raises(ReproError):
            EngineSession(session_cache_size=-1)
        with pytest.raises(ReproError):
            EngineSession(cache_size=-1)

    def test_stats_to_dict_shape(self):
        stats = SessionStats(backend="vectorized", n_workers=2, steps=3)
        payload = stats.to_dict()
        assert payload["backend"] == "vectorized"
        assert set(payload) == {
            "backend",
            "n_workers",
            "steps",
            "contexts",
            "systems",
            "pool_reuses",
            "cross_step_hits",
            "cross_system_hits",
            "cache",
        }


class TestProcessBackendLifecycle:
    def test_pool_survives_across_steps(self, step1_problem, small_fire):
        genomes = SPACE.sample(6, 6)
        expected = SimulationEngine.from_problem(step1_problem)(genomes)
        step2 = PredictionStepProblem(
            terrain=small_fire.terrain,
            start_burned=small_fire.start_mask(2),
            real_burned=small_fire.real_mask(2),
            horizon=small_fire.step_horizon(2),
        )
        expected2 = SimulationEngine.from_problem(step2)(genomes)
        with EngineSession(backend="process", n_workers=2) as session:
            e1 = session.for_step(step1_problem)
            assert np.array_equal(e1(genomes), expected)
            e1.close()
            pool = session._pool
            assert pool is not None and not pool._closed
            e2 = session.for_step(step2)
            assert session._pool is pool  # same pool object, updated in place
            assert np.array_equal(e2(genomes), expected2)
            e2.close()
            stats = session.stats
        assert stats.pool_reuses == 1
        assert stats.n_workers == 2
        assert pool.problem_updates == 2  # one spec broadcast per step

    def test_step_view_close_leaves_pool_running(self, step1_problem):
        with EngineSession(backend="process", n_workers=2) as session:
            engine = session.for_step(step1_problem)
            engine(SPACE.sample(4, 7))
            engine.close()
            assert not session._pool._closed

    def test_session_close_closes_pool_exactly_once(self, step1_problem):
        session = EngineSession(backend="process", n_workers=2)
        engine = session.for_step(step1_problem)
        engine(SPACE.sample(4, 8))
        engine.close()
        pool = session._pool
        session.close()
        assert pool._closed
        session.close()  # second close is a no-op, not a double-shutdown
        with pytest.raises(ParallelError):
            pool(SPACE.sample(2, 9))

    def test_n_workers_wraps_serial_backend_via_session_pool(self, step1_problem):
        genomes = SPACE.sample(6, 10)
        expected = SimulationEngine.from_problem(step1_problem)(genomes)
        with EngineSession(backend="vectorized", n_workers=2) as session:
            e1 = session.for_step(step1_problem)
            assert np.array_equal(e1(genomes), expected)
            e1.close()
            e2 = session.for_step(step1_problem)
            assert np.array_equal(e2(genomes), expected)
            e2.close()
            assert session.stats.pool_reuses == 1


class TestStatsFreezeOnClose:
    def test_close_detaches_stats_from_live_cache(self, step1_problem):
        """Regression: stats read after close must not see later mutation."""
        engine = SimulationEngine.from_problem(
            step1_problem, backend="vectorized", cache_size=64
        )
        genomes = SPACE.sample(5, 11)
        engine(genomes)
        live_cache_stats = engine.cache_stats
        before = engine.stats.to_dict()
        engine.close()
        # simulate the shared-cache case: the underlying counters move on
        live_cache_stats.hits += 100
        live_cache_stats.misses += 100
        assert engine.stats.to_dict() == before
        assert engine.stats.cache is not live_cache_stats

    def test_close_snapshot_matches_session_view(self, step1_problem):
        with EngineSession(backend="vectorized", session_cache_size=64) as session:
            e1 = session.for_step(step1_problem)
            genomes = SPACE.sample(4, 12)
            e1(genomes)
            snapshot = e1.stats.to_dict()
            e1.close()
            # a later step hitting the shared store must not rewrite e1
            e2 = session.for_step(step1_problem)
            e2(genomes)
            e2.close()
            assert e1.stats.to_dict() == snapshot
            assert session.stats.cache.hits >= 4


class TestExecutorUpdateProblem:
    class _Offset:
        """Picklable toy problem: fitness = row sum + offset."""

        def __init__(self, offset: float) -> None:
            self.offset = offset

        def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
            return np.atleast_2d(genomes).sum(axis=1) + self.offset

    def test_update_swaps_problem_in_every_worker(self):
        genomes = np.ones((8, 3))
        with ProcessPoolEvaluator(self._Offset(0.0), n_workers=2) as pool:
            assert np.allclose(pool(genomes), 3.0)
            pool.update_problem(self._Offset(10.0))
            assert np.allclose(pool(genomes), 13.0)
            assert pool.problem_updates == 1

    def test_pool_can_start_idle(self):
        genomes = np.ones((4, 2))
        with ProcessPoolEvaluator(None, n_workers=2) as pool:
            with pytest.raises(Exception):
                pool(genomes)  # workers hold no problem yet
            pool.update_problem(self._Offset(1.0))
            assert np.allclose(pool(genomes), 3.0)

    def test_update_after_close_raises(self):
        pool = ProcessPoolEvaluator(self._Offset(0.0), n_workers=1)
        pool.close()
        with pytest.raises(ParallelError):
            pool.update_problem(self._Offset(1.0))

    def test_master_worker_update(self):
        genomes = np.ones((6, 3))
        with MasterWorkerEngine(
            self._Offset(0.0), n_workers=2, chunk_size=2
        ) as engine:
            assert np.allclose(engine(genomes), 3.0)
            engine.update_problem(self._Offset(5.0))
            assert np.allclose(engine(genomes), 8.0)
            assert engine.problem_updates == 1

    def test_master_worker_update_after_close_raises(self):
        engine = MasterWorkerEngine(self._Offset(0.0), n_workers=1)
        engine.close()
        with pytest.raises(ParallelError):
            engine.update_problem(self._Offset(1.0))


class TestProblemSessionIntegration:
    def test_engine_property_uses_session_view(self, step1_problem):
        with EngineSession(backend="vectorized", session_cache_size=32) as session:
            step1_problem.attach_session(session)
            engine = step1_problem.engine
            assert engine is step1_problem.engine  # memoised, one view
            assert session.stats.steps == 1

    def test_pickle_drops_session(self, step1_problem):
        with EngineSession(backend="vectorized") as session:
            step1_problem.attach_session(session)
            genomes = SPACE.sample(3, 13)
            before = step1_problem.evaluate_batch(genomes)
            clone = pickle.loads(pickle.dumps(step1_problem))
            assert clone._session is None and clone._engine is None
            assert np.array_equal(clone.evaluate_batch(genomes), before)


class TestRunLevelSessionStats:
    def _run(self, small_fire, **kwargs):
        from repro.ea.ga import GAConfig
        from repro.systems import ESS, ESSConfig

        return ESS(
            ESSConfig(ga=GAConfig(population_size=6), max_generations=2),
            **kwargs,
        ).run(small_fire, rng=2)

    def test_run_records_session_block(self, small_fire):
        run = self._run(small_fire, backend="vectorized", session_cache_size=256)
        assert run.session["steps"] == small_fire.n_steps
        assert run.session["contexts"] == small_fire.n_steps
        cache = run.session["cache"]
        assert cache["hits"] + cache["misses"] > 0

    def test_session_cache_does_not_change_results(self, small_fire):
        plain = self._run(small_fire, backend="vectorized")
        cached = self._run(
            small_fire, backend="vectorized", session_cache_size=4096
        )
        assert np.array_equal(
            plain.qualities(), cached.qualities(), equal_nan=True
        )
        assert [s.kign for s in plain.steps] == [s.kign for s in cached.steps]

    def test_session_roundtrips_through_json(self, small_fire, tmp_path):
        run = self._run(small_fire, backend="vectorized", session_cache_size=64)
        path = tmp_path / "run.json"
        run.save_json(path)
        back = RunResult.load_json(path)
        assert back.session == run.session

    def test_legacy_payload_without_session(self, small_fire):
        run = self._run(small_fire, backend="vectorized")
        data = run.to_dict()
        data.pop("session")
        back = RunResult.from_dict(data)
        assert back.session == {}
        assert format_session_totals(back) == ""

    def test_format_session_totals_line(self, small_fire):
        run = self._run(small_fire, backend="vectorized", session_cache_size=256)
        line = format_session_totals(run)
        assert line.startswith("session:")
        assert "pool-reuses=" in line
        assert line in format_run(run)

    def test_invalid_session_cache_size_rejected(self):
        from repro.systems import ESS

        with pytest.raises(ReproError):
            ESS(session_cache_size=-1)


class TestSessionScopes:
    """Per-system stat views over one shared session."""

    def test_scope_stats_are_deltas(self, step1_problem):
        genomes = SPACE.sample(6, 20)
        with EngineSession(backend="vectorized", session_cache_size=256) as s:
            with s.scoped("first") as first:
                engine = s.for_step(step1_problem)
                engine(genomes)
                engine.close()
            with s.scoped("second") as second:
                engine = s.for_step(step1_problem)
                engine(genomes)
                engine.close()
        assert first.stats.steps == 1 and second.stats.steps == 1
        assert first.stats.cache.misses == 6
        assert first.stats.cache.hits == 0
        # the second scope was served entirely by the first's inserts
        assert second.stats.cache.hits == 6
        assert second.stats.cross_system_hits == 6
        assert second.stats.cross_step_hits == 6
        # scope deltas partition the session totals
        total = s.stats
        assert total.cache.hits == first.stats.cache.hits + second.stats.cache.hits
        assert total.systems == 2

    def test_scope_freezes_on_exit(self, step1_problem):
        session = EngineSession(backend="vectorized", session_cache_size=64)
        scope = session.scoped("a")
        engine = session.for_step(step1_problem)
        engine(SPACE.sample(3, 21))
        engine.close()
        scope.close()
        frozen = scope.stats.to_dict()
        later = session.scoped("b")
        engine = session.for_step(step1_problem)
        engine(SPACE.sample(3, 21))
        engine.close()
        later.close()
        assert scope.stats.to_dict() == frozen
        session.close()

    def test_unscoped_sessions_count_no_cross_system_hits(self, step1_problem):
        genomes = SPACE.sample(4, 22)
        with EngineSession(backend="vectorized", session_cache_size=64) as s:
            for _ in range(2):
                engine = s.for_step(step1_problem)
                engine(genomes)
                engine.close()
            assert s.stats.cross_step_hits == 4
            assert s.stats.cross_system_hits == 0

    def test_stats_minus_subtracts_counterwise(self):
        a = SessionStats(
            backend="vectorized", n_workers=2, steps=5, contexts=3,
            systems=2, pool_reuses=4, cross_step_hits=7,
            cross_system_hits=2, cache=CacheStats(hits=10, misses=4),
        )
        b = SessionStats(
            backend="vectorized", n_workers=2, steps=2, contexts=1,
            systems=1, pool_reuses=1, cross_step_hits=3,
            cross_system_hits=1, cache=CacheStats(hits=6, misses=1),
        )
        delta = a.minus(b)
        assert delta.steps == 3 and delta.contexts == 2
        assert delta.systems == 1 and delta.pool_reuses == 3
        assert delta.cross_step_hits == 4 and delta.cross_system_hits == 1
        assert delta.cache.hits == 4 and delta.cache.misses == 3

    def test_scoped_after_close_raises(self):
        session = EngineSession()
        session.close()
        with pytest.raises(ReproError, match="closed"):
            session.scoped("late")


class TestSessionCacheStatsMerge:
    def test_cache_stats_copy_into_session_stats(self):
        store = SessionResultCache(capacity=4)
        view = store.view(b"c", 1)
        g = SPACE.sample(1, 14)[0]
        view.put(view.key(g), 1.0)
        view.get(view.key(g))
        copied = CacheStats(**store.stats.to_dict())
        store.stats.hits += 10
        assert copied.hits == 1  # detached copy, not a live reference
