"""Tier-1 smoke wiring for the engine-backend benchmark.

The full ``benchmarks/bench_engine_backends.py`` harness runs at
realistic sizes under pytest-benchmark; these tests import its smoke
mode (tiny grids, 2 generations, no timing assertions) so a backend
regression — a bitwise divergence or a broken pipeline rewire — fails
the ordinary test run fast.
"""

from __future__ import annotations

import os
import sys

import pytest

_BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

bench = pytest.importorskip("bench_engine_backends")


class TestEngineBenchSmoke:
    def test_backends_agree_on_tiny_workloads(self):
        rows = bench.smoke_backends()
        # one row per backend per workload, all with sane timings
        assert len(rows) == 9
        assert all(r["seconds"] > 0 for r in rows)
        workloads = {r["workload"] for r in rows}
        assert len(workloads) == 3  # synthetic + mosaic + ridge

    def test_pipeline_backend_invariant(self):
        bench.smoke_pipeline()

    def test_session_agrees_with_per_step_engines(self):
        rows = bench.smoke_session()
        assert {r["mode"] for r in rows} == {"per-step engines", "session"}
        assert all(r["seconds"] > 0 for r in rows)

    def test_shared_sweep_agrees_and_reuses_across_systems(self):
        rows = bench.smoke_shared_sweep()
        assert {r["mode"] for r in rows} == {
            "per-system sessions",
            "shared session",
        }
        assert "x-sys hits" in bench.sweep_session_table(rows)

    def test_tables_render(self):
        rows = bench.smoke_backends()
        table = bench.backend_table(rows)
        assert "vectorized" in table and "process" in table
        crows = bench.cache_rows(
            bench.grassland_case(size=24, n_steps=2), population=12
        )
        assert "hit rate" in bench.cache_table(crows)
        assert "session" in bench.session_table(bench.smoke_session())
