"""Tests for the deceptive trap landscape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import ParameterSpace
from repro.errors import WorkloadError
from repro.workloads.deceptive import DeceptiveLandscape


class TestConstruction:
    def test_defaults(self, space):
        land = DeceptiveLandscape(space, rng=0)
        assert land.active_dims == (1, 2)
        assert 0 < land.peak_width < 0.5
        assert 0 < land.trap_height < 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"peak_width": 0.0},
            {"peak_width": 0.6},
            {"trap_height": 0.0},
            {"trap_height": 1.0},
            {"active_dims": ()},
            {"active_dims": (99,)},
            {"optimum": np.zeros(3)},
        ],
    )
    def test_invalid_raises(self, space, kwargs):
        with pytest.raises(WorkloadError):
            DeceptiveLandscape(space, rng=0, **kwargs)


class TestFitnessStructure:
    def test_optimum_scores_one(self, space):
        land = DeceptiveLandscape(space, rng=1)
        assert land.evaluate_batch(land.optimum[None, :])[0] == pytest.approx(1.0)

    def test_peak_beats_trap(self, space):
        land = DeceptiveLandscape(space, rng=1)
        # any point on the peak scores at least 0.8 > trap_height
        g = land.optimum.copy()
        g[1] += 0.5  # tiny WindSpd nudge (span 80 → distance ~0.003)
        f = land.evaluate_batch(g[None, :])[0]
        assert f > land.trap_height

    def test_gradient_points_away(self, space):
        """The defining property: off the peak, farther is fitter."""
        land = DeceptiveLandscape(space, rng=2)
        g_near = land.optimum.copy()
        g_far = land.optimum.copy()
        # move in the WindSpd coordinate, staying off-peak
        span = 80.0
        direction = 1.0 if land.optimum[1] < 40 else -1.0
        g_near[1] += direction * 0.15 * span
        g_far[1] += direction * 0.35 * span
        f_near, f_far = land.evaluate_batch(np.stack([g_near, g_far]))
        assert f_far > f_near

    def test_inactive_dims_ignored(self, space):
        land = DeceptiveLandscape(space, rng=3)
        a = land.optimum.copy()
        b = land.optimum.copy()
        b[5] = 60.0 if a[5] < 30 else 1.0  # change M100 only
        fa, fb = land.evaluate_batch(np.stack([a, b]))
        assert fa == pytest.approx(fb)

    def test_circular_active_dim(self, space):
        # WindDir is circular: 359° and 1° are 2° apart.
        land = DeceptiveLandscape(
            space, optimum=np.array([7, 40, 0, 30, 30, 30, 150, 40, 180], float),
            rng=0,
        )
        near = np.array([7, 40, 358, 30, 30, 30, 150, 40, 180], float)
        d = land.distance_to_optimum(near[None, :])[0]
        assert d < 0.01

    def test_fitness_bounds(self, space):
        land = DeceptiveLandscape(space, rng=4)
        f = land.evaluate_batch(space.sample(200, 5))
        assert (f >= 0).all() and (f <= 1).all()

    def test_solved_by(self, space):
        land = DeceptiveLandscape(space, rng=6)
        assert land.solved_by(land.optimum[None, :])
        # a mid-trap point does not solve it
        far = space.sample(1, 7)
        if land.distance_to_optimum(far)[0] > land.peak_width:
            assert not land.solved_by(far)


class TestDeceptionEffect:
    def test_fitness_guided_search_traps(self, space):
        """GA with local mutation plateaus at/below the trap height more
        often than Algorithm 1 — the §II-C motivation in one assert."""
        from repro.ea.ga import GAConfig, GeneticAlgorithm
        from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
        from repro.ea.termination import Termination
        from repro.parallel.executor import SerialEvaluator

        term = Termination(max_generations=25, fitness_threshold=0.99)
        ga_escapes = ns_escapes = 0
        for trial in range(4):
            land = DeceptiveLandscape(space, rng=20_000 + trial)
            ev = SerialEvaluator(land)
            ga = GeneticAlgorithm(
                GAConfig(population_size=24, mutation="gaussian")
            ).run(ev, space, term, rng=trial)
            ns = NoveltyGA(
                NoveltyGAConfig(
                    population_size=24, k_neighbors=8, mutation="gaussian"
                )
            ).run(ev, space, term, rng=trial)
            ga_escapes += ga.best.fitness > land.trap_height
            ns_escapes += ns.best_set.max_fitness() > land.trap_height
        assert ns_escapes >= ga_escapes
