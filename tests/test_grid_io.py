"""Tests for repro.grid.io (terrain / ignition-map persistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.grid.firemap import IgnitionMap
from repro.grid.io import (
    load_ignition_map,
    load_terrain,
    save_ignition_map,
    save_terrain,
)
from repro.grid.terrain import Terrain


class TestTerrainRoundtrip:
    def test_uniform(self, tmp_path):
        t = Terrain.uniform(6, 8, cell_size=15.0)
        path = tmp_path / "t.npz"
        save_terrain(path, t)
        back = load_terrain(path)
        assert back.shape == t.shape
        assert back.cell_size == t.cell_size
        assert back.fuel is None and back.unburnable is None

    def test_full_rasters(self, tmp_path):
        fuel = np.ones((5, 5), dtype=int)
        fuel[0] = 5
        slope = np.full((5, 5), 12.0)
        aspect = np.full((5, 5), 45.0)
        unb = np.zeros((5, 5), dtype=bool)
        unb[2, 2] = True
        t = Terrain(
            rows=5, cols=5, cell_size=10.0, fuel=fuel, slope=slope,
            aspect=aspect, unburnable=unb,
        )
        path = tmp_path / "t.npz"
        save_terrain(path, t)
        back = load_terrain(path)
        assert np.array_equal(back.fuel, t.fuel)
        assert np.array_equal(back.slope, t.slope)
        assert np.array_equal(back.aspect, t.aspect)
        assert np.array_equal(back.unburnable, t.unburnable)

    def test_bad_version_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            format_version=np.array([99]),
            geometry=np.array([4.0, 4.0, 30.0]),
        )
        with pytest.raises(TerrainError):
            load_terrain(path)


class TestIgnitionMapRoundtrip:
    def test_roundtrip_preserves_inf(self, tmp_path):
        times = np.full((4, 4), np.inf)
        times[1, 1] = 0.0
        times[1, 2] = 3.5
        m = IgnitionMap(times=times)
        path = tmp_path / "m.npz"
        save_ignition_map(path, m)
        back = load_ignition_map(path)
        assert np.array_equal(back.times, m.times)

    def test_bad_version_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, format_version=np.array([99]), times=np.zeros((2, 2)))
        with pytest.raises(TerrainError):
            load_ignition_map(path)
