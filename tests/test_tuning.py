"""Tests for the ESSIM-DE dynamic tuning metrics (restart, IQR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.individual import Individual
from repro.core.scenario import ParameterSpace
from repro.errors import EvolutionError
from repro.tuning.iqr import IQRTuning
from repro.tuning.restart import PopulationRestart


def _pop(space, fits, seed=0):
    genomes = space.sample(len(fits), seed)
    return [Individual(genome=g, fitness=f) for g, f in zip(genomes, fits)]


class TestPopulationRestart:
    def test_no_restart_while_improving(self, space):
        restart = PopulationRestart(space, patience=2, rng=0)
        pops = [_pop(space, [0.1, 0.2])]
        restart(0, pops)
        pops2 = [_pop(space, [0.3, 0.4])]  # improved
        out = restart(1, pops2)
        assert restart.restarts_fired == 0
        assert out[0] is pops2[0]

    def test_restart_after_patience_exhausted(self, space):
        restart = PopulationRestart(space, patience=2, elite_keep=1, rng=0)
        stagnant = [_pop(space, [0.5, 0.4, 0.3])]
        restart(0, stagnant)  # records best 0.5
        restart(1, stagnant)  # stale 1
        out = restart(2, stagnant)  # stale 2 → fires
        assert restart.restarts_fired == 1
        new_pop = out[0]
        assert len(new_pop) == 3
        # elite preserved
        assert new_pop[0].fitness == 0.5
        # fresh individuals unevaluated
        assert all(ind.fitness is None for ind in new_pop[1:])

    def test_stale_counter_resets_after_restart(self, space):
        restart = PopulationRestart(space, patience=1, rng=0)
        stagnant = [_pop(space, [0.5, 0.4])]
        restart(0, stagnant)
        restart(1, stagnant)  # fires
        fired = restart.restarts_fired
        restart(2, stagnant)  # fires again after fresh patience window
        assert restart.restarts_fired == fired + 1

    def test_per_island_tracking(self, space):
        restart = PopulationRestart(space, patience=1, rng=0)
        improving = _pop(space, [0.1, 0.2])
        stagnant = _pop(space, [0.5, 0.4])
        restart(0, [improving, stagnant])
        out = restart(
            1, [_pop(space, [0.3, 0.4]), stagnant]
        )  # island 0 improves, island 1 stalls → restart island 1 only
        assert restart.restarts_fired == 1
        assert all(ind.fitness is not None for ind in out[0])

    @pytest.mark.parametrize(
        "kwargs",
        [{"patience": 0}, {"elite_keep": 0}, {"min_improvement": -1.0}],
    )
    def test_invalid_params_raise(self, space, kwargs):
        with pytest.raises(EvolutionError):
            PopulationRestart(space, **kwargs)


class TestIQRTuning:
    def test_fitness_iqr(self, space):
        pop = _pop(space, [0.0, 0.25, 0.75, 1.0])
        assert IQRTuning.fitness_iqr(pop) == pytest.approx(0.625)

    def test_no_action_above_threshold(self, space):
        tuning = IQRTuning(space, iqr_threshold=0.01, rng=0)
        pop = _pop(space, [0.1, 0.5, 0.9, 1.0])
        out = tuning(0, [pop])
        assert tuning.interventions_fired == 0
        assert out[0] is pop

    def test_regenerates_collapsed_population(self, space):
        tuning = IQRTuning(space, iqr_threshold=0.05, replace_fraction=0.5, rng=0)
        collapsed = _pop(space, [0.5, 0.5, 0.5, 0.5])
        out = tuning(0, [collapsed])
        assert tuning.interventions_fired == 1
        new_pop = out[0]
        assert len(new_pop) == 4
        kept = [ind for ind in new_pop if ind.fitness is not None]
        fresh = [ind for ind in new_pop if ind.fitness is None]
        assert len(kept) == 2 and len(fresh) == 2

    def test_replace_fraction_full(self, space):
        tuning = IQRTuning(space, iqr_threshold=0.05, replace_fraction=1.0, rng=0)
        out = tuning(0, [_pop(space, [0.5, 0.5])])
        assert all(ind.fitness is None for ind in out[0])

    def test_keeps_the_best(self, space):
        tuning = IQRTuning(space, iqr_threshold=1.0, replace_fraction=0.5, rng=0)
        pop = _pop(space, [0.9, 0.5, 0.5, 0.5])
        out = tuning(0, [pop])
        kept_fits = {ind.fitness for ind in out[0] if ind.fitness is not None}
        assert 0.9 in kept_fits

    @pytest.mark.parametrize(
        "kwargs", [{"iqr_threshold": -0.1}, {"replace_fraction": 0.0}, {"replace_fraction": 1.5}]
    )
    def test_invalid_params_raise(self, space, kwargs):
        with pytest.raises(EvolutionError):
            IQRTuning(space, **kwargs)


class TestTuningInIslandModel:
    def test_restart_recovers_diversity(self, space, toy_problem):
        """E2 in miniature: stagnation triggers the operator inside the
        island loop and the populations regain spread."""
        from repro.ea.de import DEConfig, DifferentialEvolution
        from repro.ea.termination import Termination
        from repro.parallel.executor import SerialEvaluator
        from repro.parallel.islands import IslandModel, IslandModelConfig

        model = IslandModel(
            lambda: DifferentialEvolution(DEConfig(population_size=10)),
            IslandModelConfig(n_islands=2, migration_interval=2),
        )
        restart = PopulationRestart(space, patience=1, rng=0)
        model.run(
            SerialEvaluator(toy_problem),
            space,
            Termination(max_generations=10),
            rng=0,
            intervention=restart,
        )
        # With patience 1 on a rapidly converging DE, at least one
        # restart must have fired over 5 epochs.
        assert restart.restarts_fired >= 1
