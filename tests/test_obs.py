"""Tests for ``repro.obs`` — the unified telemetry subsystem.

Covers the metric registry (get-or-create identity, label separation,
kind-conflict rejection, histogram bucketing), nestable spans (parent
lineage, error status, late attributes, per-thread stacks), the sinks
(JSONL laziness, flush-per-line and never-raise hardening), the
Prometheus text round-trip
(``parse_prometheus_text(prometheus_text()) == snapshot()``), and the
fleet observability plane: process-namespaced span ids, cross-process
trace adoption, delta-encoded snapshot aggregation, histogram
quantiles, the live HTTP exposition endpoints, the Perfetto timeline
export and cost-model residual monitoring — plus the subsystem's one
hard promise: **instrumentation never changes results** — a
traced-and-metered run produces a store bitwise-identical (in the
shared ``parity_view``) to an unobserved one, under every executor.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import urllib.request

import pytest

from repro import obs
from repro.distributed import FleetExecutor, InlineExecutor, ProcessShardExecutor, run_worker
from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
    record_key,
)
from repro.experiments.costs import (
    RESIDUAL_METRIC,
    UnitCostModel,
    record_residual,
)
from repro.experiments.store import HAS_APPEND_LOCK, parity_view
from repro.obs import (
    DEFAULT_BUCKETS,
    JsonlSink,
    ListSink,
    SPAN_SECONDS_METRIC,
    Telemetry,
    histogram_quantile,
    parse_prometheus_text,
    snapshot_delta,
    span,
)
from repro.obs.http import (
    ObsHTTPServer,
    clear_status_provider,
    set_status_provider,
)
from repro.obs.timeline import build_timeline, export_timeline

needs_fork = pytest.mark.skipif(
    not HAS_APPEND_LOCK
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs POSIX store locking and fork-start processes",
)


@pytest.fixture(autouse=True)
def fresh_registry():
    """Every test gets a pristine process registry (and leaves one)."""
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
class TestMetricRegistry:
    def test_counter_get_or_create_identity(self):
        t = Telemetry()
        c = t.counter("requests_total", route="a")
        assert t.counter("requests_total", route="a") is c
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_labels_separate_instruments(self):
        t = Telemetry()
        t.counter("hits_total", backend="ref").inc()
        t.counter("hits_total", backend="vec").inc(4)
        assert t.counter("hits_total", backend="ref").value == 1
        assert t.counter("hits_total", backend="vec").value == 4

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ReproError):
            Telemetry().counter("c_total").inc(-1)

    def test_gauge_set_and_add(self):
        g = Telemetry().gauge("inflight")
        g.set(5)
        g.add(-2)
        assert g.value == 3.0

    def test_histogram_buckets_are_cumulative(self):
        h = Telemetry().histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["buckets"] == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_kind_conflict_raises(self):
        t = Telemetry()
        t.counter("thing")
        with pytest.raises(ReproError, match="already registered"):
            t.gauge("thing")

    def test_invalid_names_and_labels_raise(self):
        t = Telemetry()
        with pytest.raises(ReproError):
            t.counter("bad name")
        with pytest.raises(ReproError):
            t.counter("ok_total", **{"bad-label": "x"})

    def test_snapshot_is_sorted_and_json_safe(self):
        t = Telemetry()
        t.counter("b_total").inc()
        t.gauge("a_gauge", zone="z").set(2)
        snap = t.snapshot()
        assert [e["name"] for e in snap] == ["a_gauge", "b_total"]
        json.dumps(snap)  # must not raise


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with span("run", t, system="ess") as outer:
            with span("step", t, step=1):
                pass
            with span("step", t, step=2):
                pass
        events = sink.events
        # children close (and emit) before the parent
        assert [e["span"] for e in events] == ["step", "step", "run"]
        steps, run = events[:2], events[2]
        assert run["parent"] is None and run["depth"] == 0
        assert all(e["parent"] == run["id"] for e in steps)
        assert all(e["depth"] == 1 for e in steps)
        assert run is outer
        assert run["attrs"] == {"system": "ess"}
        assert all(e["seconds"] >= 0 for e in events)

    def test_block_can_attach_late_attrs(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with span("unit", t, group=3) as ev:
            ev["attrs"]["records"] = 7
        assert sink.events[0]["attrs"] == {"group": 3, "records": 7}

    def test_error_status_recorded_and_exception_propagates(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with pytest.raises(ValueError):
            with span("run", t):
                raise ValueError("boom")
        assert sink.events[0]["status"] == "error"
        # the failed span still lands in the latency histogram
        h = t.histogram(SPAN_SECONDS_METRIC, span="run")
        assert h.count == 1

    def test_span_durations_feed_the_histogram(self):
        t = Telemetry()
        with span("generation", t):
            pass
        with span("generation", t):
            pass
        assert t.histogram(SPAN_SECONDS_METRIC, span="generation").count == 2

    def test_threads_have_independent_lineages(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        seen = {}

        def other_thread():
            with span("worker", t) as ev:
                seen.update(ev)

        with span("main", t):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        # the other thread's span must NOT inherit the main thread's
        # open span as its parent
        assert seen["parent"] is None and seen["depth"] == 0

    def test_default_registry_is_the_process_one(self):
        sink = ListSink()
        obs.telemetry().add_sink(sink)
        with span("solo"):
            pass
        assert [e["span"] for e in sink.events] == ["solo"]


# ----------------------------------------------------------------------
# Sinks and module-level wiring
# ----------------------------------------------------------------------
class TestSinks:
    def test_jsonl_sink_is_lazy_and_line_parseable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # no empty files for silent runs
        sink.emit({"event": "span", "span": "a"})
        sink.emit({"event": "span", "span": "b"})
        assert [json.loads(line)["span"] for line in path.open()] == [
            "a",
            "b",
        ]
        sink.close()
        sink.emit({"event": "span", "span": "late"})  # dropped, no raise
        assert len(path.read_text().splitlines()) == 2

    def test_reset_isolates_registries_and_closes_sinks(self, tmp_path):
        first = obs.configure(trace_path=tmp_path / "t.jsonl")
        first.counter("x_total").inc()
        fresh = obs.reset()
        assert fresh is obs.telemetry() and fresh is not first
        assert fresh.snapshot() == []
        assert fresh.sinks == []

    def test_dump_metrics_writes_the_process_snapshot(self, tmp_path):
        obs.telemetry().counter("things_total", kind="a").inc(3)
        path = tmp_path / "m.prom"
        obs.dump_metrics(path)
        parsed = parse_prometheus_text(path.read_text())
        assert parsed == obs.telemetry().snapshot()


# ----------------------------------------------------------------------
# Prometheus text round-trip
# ----------------------------------------------------------------------
class TestPrometheusRoundTrip:
    def _populated(self) -> Telemetry:
        t = Telemetry()
        t.counter("repro_cells_total", plan="p1").inc(12)
        t.counter("repro_cells_total", plan="p2").inc(3)
        t.gauge("repro_busy_seconds", worker='w "quoted"\\x').set(1.25)
        t.histogram("repro_unit_seconds").observe(0.02)
        t.histogram("repro_unit_seconds").observe(7.5)
        t.histogram(
            "repro_span_seconds", span="unit", buckets=(0.5, 2.0)
        ).observe(1.0)
        return t

    def test_round_trip_equals_snapshot(self):
        t = self._populated()
        assert parse_prometheus_text(t.prometheus_text()) == t.snapshot()

    def test_default_buckets_survive_the_trip(self):
        t = Telemetry()
        t.histogram("h_seconds").observe(0.3)
        (entry,) = parse_prometheus_text(t.prometheus_text())
        assert len(entry["buckets"]) == len(DEFAULT_BUCKETS) + 1
        assert entry["buckets"]["+Inf"] == 1

    def test_empty_registry_renders_and_parses_empty(self):
        t = Telemetry()
        assert t.prometheus_text() == ""
        assert parse_prometheus_text("") == []

    def test_unparseable_lines_raise(self):
        with pytest.raises(ReproError):
            parse_prometheus_text("what even is this line }{")


# ----------------------------------------------------------------------
# Instrumentation parity — observing a run never changes its results
# ----------------------------------------------------------------------
def _tiny_plan() -> ExperimentPlan:
    """One (case, backend) group, two systems, two seeds: 4 cells."""
    return ExperimentPlan(
        name="obs-parity",
        systems=("ess", "ess-ns"),
        cases=(CaseSpec("grassland", size=20, steps=2),),
        seeds=(0, 1),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=8, generations=2, session_cache_size=2048
        ),
    )


def _sorted_normalized(store: ResultsStore) -> list[dict]:
    return [
        parity_view(r) for r in sorted(store.records(), key=record_key)
    ]


def _trace_events(path) -> list[dict]:
    return [json.loads(line) for line in open(path)]


class TestInstrumentationParity:
    def test_traced_inline_run_matches_untraced(self, tmp_path):
        plan = _tiny_plan()
        plain = ResultsStore(tmp_path / "plain.jsonl")
        ExperimentRunner(store=plain).run(plan, executor=InlineExecutor())

        obs.reset()
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        obs.configure(trace_path=trace)
        traced = ResultsStore(tmp_path / "traced.jsonl")
        ExperimentRunner(store=traced).run(plan, executor=InlineExecutor())
        obs.dump_metrics(metrics)
        obs.shutdown()

        # the one hard promise: not a byte of difference in the shared
        # parity view
        assert _sorted_normalized(traced) == _sorted_normalized(plain)
        # unit provenance rides on the records and parity_view strips it
        records = traced.records()
        assert all("telemetry" in r for r in records)
        assert all("telemetry" not in parity_view(r) for r in records)
        assert all(
            r["telemetry"]["unit_cells"] >= 1 for r in records
        )

        events = _trace_events(trace)
        unit_spans = [e for e in events if e.get("span") == "unit"]
        run_spans = [e for e in events if e.get("span") == "run"]
        plan_spans = [e for e in events if e.get("span") == "plan"]
        # inline execution: the single group arrives as one work unit
        assert len(unit_spans) == 1
        assert unit_spans[0]["attrs"]["cells"] == plan.n_runs
        # one run span per cell, parented by its unit span
        assert len(run_spans) == plan.n_runs
        assert {e["parent"] for e in run_spans} == {unit_spans[0]["id"]}
        # step and generation spans nest below runs
        assert any(e.get("span") == "step" for e in events)
        assert any(e.get("span") == "generation" for e in events)
        # the run sits under one plan root span, and every span is
        # tagged with the same trace id
        assert len(plan_spans) == 1
        assert unit_spans[0]["parent"] == plan_spans[0]["id"]
        trace_ids = {
            e["trace_id"] for e in events if e.get("event") == "span"
        }
        assert len(trace_ids) == 1

        parsed = parse_prometheus_text(metrics.read_text())
        names = {e["name"] for e in parsed}
        assert "repro_engine_cache_hits_total" in names
        assert "repro_engine_cache_misses_total" in names
        assert "repro_engine_batch_seconds" in names
        assert "repro_units_total" in names
        assert RESIDUAL_METRIC in names
        by_key = {
            (e["name"], tuple(sorted(e["labels"].items()))): e
            for e in parsed
        }
        assert (
            by_key[("repro_units_total", (("plan", plan.name),))]["value"]
            == 1
        )

    @needs_fork
    def test_traced_process_shards_match_untraced_inline(self, tmp_path):
        plan = _tiny_plan()
        plain = ResultsStore(tmp_path / "plain.jsonl")
        ExperimentRunner(store=plain).run(plan, executor=InlineExecutor())

        obs.reset()
        trace = tmp_path / "trace.jsonl"
        obs.configure(trace_path=trace)
        sharded = ResultsStore(tmp_path / "sharded.jsonl")
        ExperimentRunner(store=sharded).run(
            plan, executor=ProcessShardExecutor(2)
        )
        obs.shutdown()
        assert _sorted_normalized(sharded) == _sorted_normalized(plain)

        # every process traced into the parent's trace id, and shard
        # span ids live in per-process namespaces (no collisions even
        # though the forked children inherited the parent's counters)
        events = [e for e in _trace_events(trace) if e.get("event") == "span"]
        assert len({e.get("trace_id") for e in events}) == 1
        assert len({e["id"] for e in events}) == len(events)
        prefixes = {e["id"].rsplit("-", 1)[0] for e in events}
        assert len(prefixes) >= 2  # parent plus at least one shard

    def test_traced_fleet_matches_untraced_inline(self, tmp_path):
        plan = _tiny_plan()
        plain = ResultsStore(tmp_path / "plain.jsonl")
        ExperimentRunner(store=plain).run(plan, executor=InlineExecutor())

        obs.reset()
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        obs.configure(trace_path=trace)
        store = ResultsStore(tmp_path / "fleet.jsonl")
        threads: list[threading.Thread] = []
        summaries: list[dict] = []

        def worker(address, index):
            summaries.append(
                run_worker(
                    address,
                    store_path=str(tmp_path / f"w{index}.jsonl"),
                    worker_id=f"obs-w{index}",
                )
            )

        def on_bound(address):
            for index in range(2):
                thread = threading.Thread(
                    target=worker, args=(address, index)
                )
                thread.start()
                threads.append(thread)

        executor = FleetExecutor(
            lease_timeout=15.0,
            poll_interval=0.05,
            timeout=120.0,
            on_bound=on_bound,
        )
        try:
            ExperimentRunner(store=store).run(plan, executor=executor)
        finally:
            for thread in threads:
                thread.join(timeout=60)
        obs.dump_metrics(metrics)
        obs.shutdown()

        assert _sorted_normalized(store) == _sorted_normalized(plain)

        # one unit span per unit a worker executed (in-thread workers
        # share the process trace sink)
        events = _trace_events(trace)
        unit_spans = [e for e in events if e.get("span") == "unit"]
        assert len(unit_spans) == sum(s["units"] for s in summaries)
        # the coordinator's trace id propagates through the welcome and
        # lease replies, so every span of the fleet shares one trace
        trace_ids = {
            e.get("trace_id") for e in events if e.get("event") == "span"
        }
        assert len(trace_ids) == 1 and None not in trace_ids
        # complete replies carried a clock-offset estimate back
        assert all(
            isinstance(s.get("clock_offset"), float) for s in summaries
        )

        # the coordinator's per-worker utilization view is populated
        # and lands in the metrics snapshot as busy/idle gauges
        assert set(executor.worker_stats) == {"obs-w0", "obs-w1"}
        for st in executor.worker_stats.values():
            assert st["busy_seconds"] >= 0.0
            assert st["idle_seconds"] >= 0.0
        names = {
            e["name"] for e in parse_prometheus_text(metrics.read_text())
        }
        assert "repro_fleet_worker_busy_seconds" in names
        assert "repro_fleet_worker_idle_seconds" in names
        assert "repro_worker_busy_seconds" in names
        assert "repro_fleet_unit_seconds" in names
        # observed-vs-predicted residuals were recorded per completion
        assert RESIDUAL_METRIC in names
        # the fleet summary event reaches the trace sinks too
        assert any(e.get("event") == "fleet_summary" for e in events)


# ----------------------------------------------------------------------
# Span-id namespacing and trace adoption
# ----------------------------------------------------------------------
class TestSpanIdentity:
    def test_span_ids_are_prefixed_strings_and_unique(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with span("a", t):
            pass
        with span("b", t):
            pass
        ids = [e["id"] for e in sink.events]
        assert all(isinstance(i, str) and "-" in i for i in ids)
        assert len(set(ids)) == 2
        # one registry, one namespace
        assert len({i.rsplit("-", 1)[0] for i in ids}) == 1

    def test_registries_in_one_process_never_collide(self):
        # the regression behind the fleet plane: two registries (or a
        # restarted process) used to both count spans 0, 1, 2, ...
        a, b = Telemetry(), Telemetry()
        sink_a, sink_b = ListSink(), ListSink()
        a.add_sink(sink_a)
        b.add_sink(sink_b)
        with span("x", a):
            pass
        with span("x", b):
            pass
        assert sink_a.events[0]["id"] != sink_b.events[0]["id"]

    def test_set_span_prefix_pins_the_namespace(self):
        t = Telemetry()
        t.set_span_prefix("w7")
        sink = ListSink()
        t.add_sink(sink)
        with span("unit", t):
            pass
        assert sink.events[0]["id"].startswith("w7-")
        assert t.new_trace_id().startswith("w7-t")

    @needs_fork
    def test_forked_children_get_fresh_prefixes(self):
        # ProcessShardExecutor's children inherit the parent registry
        # (and its span counter) wholesale under fork; their ids must
        # still be globally unique
        t = obs.telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with span("parent", t):
            pass
        parent_id = sink.events[0]["id"]

        queue: multiprocessing.Queue = multiprocessing.Queue()

        def child() -> None:
            child_sink = ListSink()
            registry = obs.telemetry()
            registry.add_sink(child_sink)
            with span("child", registry):
                pass
            queue.put(child_sink.events[0]["id"])

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=child) for _ in range(2)]
        for p in procs:
            p.start()
        child_ids = [queue.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        ids = [parent_id] + child_ids
        assert len(set(ids)) == 3
        assert len({i.rsplit("-", 1)[0] for i in ids}) == 3


class TestTraceAdoption:
    def test_adopted_trace_tags_events_and_parents_roots(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        t.adopt_trace("trace-1", parent_span="remote-9")
        with span("unit", t):
            with span("run", t):
                pass
        run, unit = sink.events
        assert unit["trace_id"] == "trace-1" == run["trace_id"]
        # the remote parent applies to the root span only; nesting
        # stays in-process
        assert unit["parent"] == "remote-9"
        assert run["parent"] == unit["id"]
        assert t.trace_context() == {
            "trace_id": "trace-1",
            "parent_span": "remote-9",
        }

    def test_falsy_trace_id_clears_the_context(self):
        t = Telemetry()
        t.adopt_trace("trace-1")
        t.adopt_trace(None)
        assert t.trace_context() is None
        sink = ListSink()
        t.add_sink(sink)
        with span("solo", t):
            pass
        assert "trace_id" not in sink.events[0]
        assert sink.events[0]["parent"] is None


# ----------------------------------------------------------------------
# Wire aggregation: snapshot deltas folded into a fleet registry
# ----------------------------------------------------------------------
class TestSnapshotAggregation:
    def test_counter_deltas_ship_only_increases(self):
        t = Telemetry()
        t.counter("c_total").inc(3)
        first = t.snapshot()
        assert snapshot_delta([], first)[0]["value"] == 3
        t.counter("c_total").inc(2)
        (delta,) = snapshot_delta(first, t.snapshot())
        assert delta["value"] == 2
        # quiescent registry ships nothing
        assert snapshot_delta(t.snapshot(), t.snapshot()) == []

    def test_histogram_deltas_are_per_interval(self):
        t = Telemetry()
        h = t.histogram("h_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        first = t.snapshot()
        h.observe(5.0)
        (delta,) = snapshot_delta(first, t.snapshot())
        assert delta["count"] == 1
        assert delta["sum"] == pytest.approx(5.0)
        assert delta["buckets"] == {"1": 0, "10": 1, "+Inf": 1}

    def test_fold_snapshot_rebuilds_worker_labelled_series(self):
        worker = Telemetry()
        worker.counter("repro_cells_total").inc(4)
        worker.gauge("repro_worker_busy_seconds").set(2.5)
        worker.histogram("repro_unit_seconds", buckets=(1.0,)).observe(0.3)
        coordinator = Telemetry()
        sent: list = []
        for _ in range(2):  # two heartbeats, cumulative on arrival
            cur = worker.snapshot()
            folded = coordinator.fold_snapshot(
                snapshot_delta(sent, cur), worker="w1"
            )
            sent = cur
            worker.counter("repro_cells_total").inc(1)
        assert folded >= 1
        assert coordinator.counter("repro_cells_total", worker="w1").value == 5
        assert (
            coordinator.gauge("repro_worker_busy_seconds", worker="w1").value
            == 2.5
        )
        h = coordinator.histogram(
            "repro_unit_seconds", buckets=(1.0,), worker="w1"
        )
        assert h.count == 1 and h.sum == pytest.approx(0.3)

    def test_fold_snapshot_skips_malformed_and_already_labelled(self):
        t = Telemetry()
        folded = t.fold_snapshot(
            [
                "not a dict",
                {"name": "x_total", "labels": {}, "type": "counter"},
                {
                    # already carries the fold label: a feedback echo
                    "name": "y_total",
                    "labels": {"worker": "w1"},
                    "type": "counter",
                    "value": 3,
                },
                {
                    "name": "ok_total",
                    "labels": {},
                    "type": "counter",
                    "value": 2,
                },
            ],
            worker="w1",
        )
        assert folded == 1
        assert t.counter("ok_total", worker="w1").value == 2
        assert t.snapshot()[0]["name"] == "ok_total"
        assert t.fold_snapshot("garbage", worker="w1") == 0


# ----------------------------------------------------------------------
# Histogram quantiles and the extended exposition format
# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_max_survives_the_text_round_trip(self):
        t = Telemetry()
        h = t.histogram("h_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(7.25)
        text = t.prometheus_text()
        assert "h_seconds_max 7.25" in text
        assert "# quantiles h_seconds" in text
        (entry,) = parse_prometheus_text(text)
        assert entry["max"] == 7.25
        assert parse_prometheus_text(text) == t.snapshot()

    def test_quantiles_interpolate_and_cap_at_max(self):
        t = Telemetry()
        h = t.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.7, 3.0, 3.5):
            h.observe(value)
        (entry,) = t.snapshot()
        p50 = histogram_quantile(entry, 0.5)
        assert 1.0 <= p50 <= 2.0
        # everything sits below the top finite bound, so even p99 stays
        # within it — and never exceeds the tracked max
        assert histogram_quantile(entry, 0.99) <= 4.0
        h.observe(40.0)  # lands in +Inf: answered by the exact max
        (entry,) = t.snapshot()
        assert histogram_quantile(entry, 1.0) == 40.0

    def test_wide_bucket_interpolation_clamps_to_exact_max(self):
        # a few short units in a wide default bucket: naive linear
        # interpolation would report a p95 far above anything observed
        t = Telemetry()
        h = t.histogram("h_seconds", buckets=(0.5, 1.0, 5.0))
        for value in (0.6, 0.7, 0.8, 0.9, 1.1, 1.25):
            h.observe(value)
        (entry,) = t.snapshot()
        assert entry["max"] == 1.25
        assert histogram_quantile(entry, 0.95) <= 1.25
        assert histogram_quantile(entry, 0.5) <= 1.25


# ----------------------------------------------------------------------
# Parser error paths
# ----------------------------------------------------------------------
class TestParserErrorPaths:
    def test_unparseable_value_raises(self):
        with pytest.raises(ReproError, match="unparseable metric value"):
            parse_prometheus_text("ok_total nan_but_worse")

    def test_conflicting_type_lines_raise(self):
        text = "# TYPE x_total counter\n# TYPE x_total gauge\n"
        with pytest.raises(ReproError, match="conflicting TYPE"):
            parse_prometheus_text(text)

    def test_truncated_label_body_raises(self):
        with pytest.raises(ReproError):
            parse_prometheus_text('hits_total{backend="ref 1')

    def test_truncated_histogram_family_still_parses(self):
        # a crashed writer can leave a family without its _sum/_count
        # tail; the parser keeps what it saw instead of raising
        text = (
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="1"} 1\n'
            'h_seconds_bucket{le="+Inf"} 2\n'
        )
        (entry,) = parse_prometheus_text(text)
        assert entry["buckets"] == {"1": 1, "+Inf": 2}
        assert entry["count"] == 0 and entry["sum"] == 0.0


# ----------------------------------------------------------------------
# Sink hardening: losing a trace must not kill the traced run
# ----------------------------------------------------------------------
class TestJsonlSinkHardening:
    def test_vanished_directory_is_recreated_before_first_event(self, tmp_path):
        target = tmp_path / "gone" / "trace.jsonl"
        target.parent.mkdir()
        sink = JsonlSink(target)
        target.parent.rmdir()  # vanishes before the lazy open
        sink.emit({"event": "span", "span": "a"})
        assert target.exists()
        sink.close()

    def test_unopenable_path_goes_dark_without_raising(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed\n")
        sink = JsonlSink(blocker / "trace.jsonl")
        sink.emit({"event": "span", "span": "a"})  # must not raise
        sink.emit({"event": "span", "span": "b"})  # dropped silently
        sink.close()
        assert blocker.read_text().startswith("a file")


# ----------------------------------------------------------------------
# HTTP exposition
# ----------------------------------------------------------------------
def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:  # 404s etc. still have bodies
        return exc.code, ""


class TestObsHTTPServer:
    def test_endpoints_serve_registry_and_status(self):
        obs.telemetry().counter("repro_http_test_total", kind="x").inc(2)
        server = ObsHTTPServer(port=0)
        host, port = server.start()
        base = f"http://{host}:{port}"
        try:
            status, text = _get(f"{base}/metrics")
            assert status == 200
            entries = parse_prometheus_text(text)
            assert any(
                e["name"] == "repro_http_test_total" for e in entries
            )
            assert _get(f"{base}/healthz") == (200, "ok\n")
            status, text = _get(f"{base}/status")
            assert status == 200
            assert json.loads(text) == {"status": "idle"}
            assert _get(f"{base}/nope")[0] == 404
        finally:
            server.close()

    def test_status_provider_hook_is_scoped(self):
        provider = lambda: {"type": "status", "plan": "p9"}  # noqa: E731
        set_status_provider(provider)
        server = ObsHTTPServer(port=0)
        host, port = server.start()
        try:
            _, text = _get(f"http://{host}:{port}/status")
            assert json.loads(text)["plan"] == "p9"
            # clearing someone else's provider is a no-op
            clear_status_provider(lambda: {})
            _, text = _get(f"http://{host}:{port}/status")
            assert json.loads(text)["plan"] == "p9"
            clear_status_provider(provider)
            _, text = _get(f"http://{host}:{port}/status")
            assert json.loads(text) == {"status": "idle"}
        finally:
            server.close()
            clear_status_provider()


# ----------------------------------------------------------------------
# Timeline export
# ----------------------------------------------------------------------
def _write_trace(path, events) -> None:
    path.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
    )


class TestTimelineExport:
    def _fixture(self, tmp_path):
        coord = tmp_path / "coord.jsonl"
        worker = tmp_path / "w1.jsonl"
        _write_trace(
            coord,
            [
                {
                    "event": "span", "span": "plan", "id": "c-1",
                    "parent": None, "depth": 0, "start": 100.0,
                    "seconds": 50.0, "thread": 1, "status": "ok",
                    "trace_id": "T1", "attrs": {"plan": "p"},
                },
            ],
        )
        _write_trace(
            worker,
            [
                {
                    "event": "clock_sync", "time": 95.0,
                    "worker": "w1", "clock_offset": 5.0,
                },
                {
                    "event": "span", "span": "unit", "id": "w1-1",
                    "parent": "c-1", "depth": 0, "start": 105.0,
                    "seconds": 10.0, "thread": 2, "status": "ok",
                    "trace_id": "T1", "attrs": {"cells": 4},
                },
                {
                    "event": "span", "span": "unit", "id": "w1-2",
                    "parent": "c-9", "depth": 0, "start": 130.0,
                    "seconds": 1.0, "thread": 2, "status": "ok",
                    "trace_id": "T2", "attrs": {},
                },
            ],
        )
        return coord, worker

    def test_clock_offsets_align_worker_tracks(self, tmp_path):
        coord, worker = self._fixture(tmp_path)
        timeline = build_timeline([coord, worker])
        names = {
            e["args"]["name"]
            for e in timeline["traceEvents"]
            if e.get("ph") == "M"
        }
        assert names == {"coord", "w1"}
        spans = [
            e for e in timeline["traceEvents"] if e.get("ph") == "X"
        ]
        unit = next(
            e for e in spans if e["args"].get("id") == "w1-1"
        )
        # worker clock + measured offset = coordinator clock
        assert unit["ts"] == pytest.approx((105.0 + 5.0) * 1e6)
        assert unit["dur"] == pytest.approx(10.0 * 1e6)
        plan = next(e for e in spans if e["args"].get("id") == "c-1")
        assert plan["ts"] == pytest.approx(100.0 * 1e6)
        assert plan["pid"] != unit["pid"]  # separate tracks
        assert sorted(timeline["otherData"]["trace_ids"]) == ["T1", "T2"]

    def test_trace_id_filter_and_export(self, tmp_path):
        coord, worker = self._fixture(tmp_path)
        output = tmp_path / "timeline.json"
        summary = export_timeline([coord, worker], output, trace_id="T1")
        assert summary["spans"] == 2
        payload = json.loads(output.read_text())
        ids = {
            e["args"].get("id")
            for e in payload["traceEvents"]
            if e.get("ph") == "X"
        }
        assert ids == {"c-1", "w1-1"}  # the T2 span is filtered out

    def test_blank_and_undecodable_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ragged.jsonl"
        path.write_text(
            '{"event": "span", "span": "a", "id": "x-1", "start": 1.0,'
            ' "seconds": 0.5}\n'
            "\n"
            "not json at all\n"
        )
        timeline = build_timeline([path])
        assert timeline["otherData"]["spans"] == 1


# ----------------------------------------------------------------------
# Cost-model residual monitoring
# ----------------------------------------------------------------------
class TestCostResiduals:
    def test_ratio_lands_in_the_histogram(self):
        t = Telemetry()
        model = UnitCostModel()
        model.observe("case:ref", 10, 1.0)  # 0.1 s/cell measured
        ratio = record_residual(
            model, "case:ref", 10, 2.0, registry=t, worker="w1"
        )
        assert ratio == pytest.approx(2.0)
        (entry,) = t.snapshot()
        assert entry["name"] == RESIDUAL_METRIC
        assert entry["labels"] == {"kernel": "case:ref"}
        assert entry["count"] == 1

    def test_slow_unit_event_needs_a_measured_sample(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        model = UnitCostModel(default_rate=0.1)
        # 40x slower than the never-measured default prior: no event
        record_residual(model, "k", 1, 4.0, slow_factor=3.0, registry=t)
        assert sink.events == []
        model.observe("k", 1, 0.1)
        record_residual(
            model, "k", 1, 4.0, slow_factor=3.0, registry=t, worker="w1"
        )
        (event,) = sink.events
        assert event["event"] == "slow_unit"
        assert event["worker"] == "w1"
        assert event["ratio"] > 3.0
        # within budget: histogram only, still no second event
        record_residual(model, "k", 1, 0.1, slow_factor=3.0, registry=t)
        assert len(sink.events) == 1

    def test_undefined_ratios_return_none(self):
        t = Telemetry()
        model = UnitCostModel()
        assert record_residual(model, "k", 0, 1.0, registry=t) is None
        assert record_residual(model, "k", 5, 0.0, registry=t) is None
        assert t.snapshot() == []
