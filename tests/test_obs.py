"""Tests for ``repro.obs`` — the unified telemetry subsystem.

Covers the metric registry (get-or-create identity, label separation,
kind-conflict rejection, histogram bucketing), nestable spans (parent
lineage, error status, late attributes, per-thread stacks), the sinks
(JSONL laziness and flush-per-line), the Prometheus text round-trip
(``parse_prometheus_text(prometheus_text()) == snapshot()``), and the
subsystem's one hard promise: **instrumentation never changes
results** — a traced-and-metered run produces a store bitwise-identical
(in the shared ``parity_view``) to an unobserved one, under every
executor.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro import obs
from repro.distributed import FleetExecutor, InlineExecutor, ProcessShardExecutor, run_worker
from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
    record_key,
)
from repro.experiments.store import HAS_APPEND_LOCK, parity_view
from repro.obs import (
    DEFAULT_BUCKETS,
    JsonlSink,
    ListSink,
    SPAN_SECONDS_METRIC,
    Telemetry,
    parse_prometheus_text,
    span,
)

needs_fork = pytest.mark.skipif(
    not HAS_APPEND_LOCK
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs POSIX store locking and fork-start processes",
)


@pytest.fixture(autouse=True)
def fresh_registry():
    """Every test gets a pristine process registry (and leaves one)."""
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
class TestMetricRegistry:
    def test_counter_get_or_create_identity(self):
        t = Telemetry()
        c = t.counter("requests_total", route="a")
        assert t.counter("requests_total", route="a") is c
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_labels_separate_instruments(self):
        t = Telemetry()
        t.counter("hits_total", backend="ref").inc()
        t.counter("hits_total", backend="vec").inc(4)
        assert t.counter("hits_total", backend="ref").value == 1
        assert t.counter("hits_total", backend="vec").value == 4

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ReproError):
            Telemetry().counter("c_total").inc(-1)

    def test_gauge_set_and_add(self):
        g = Telemetry().gauge("inflight")
        g.set(5)
        g.add(-2)
        assert g.value == 3.0

    def test_histogram_buckets_are_cumulative(self):
        h = Telemetry().histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["buckets"] == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_kind_conflict_raises(self):
        t = Telemetry()
        t.counter("thing")
        with pytest.raises(ReproError, match="already registered"):
            t.gauge("thing")

    def test_invalid_names_and_labels_raise(self):
        t = Telemetry()
        with pytest.raises(ReproError):
            t.counter("bad name")
        with pytest.raises(ReproError):
            t.counter("ok_total", **{"bad-label": "x"})

    def test_snapshot_is_sorted_and_json_safe(self):
        t = Telemetry()
        t.counter("b_total").inc()
        t.gauge("a_gauge", zone="z").set(2)
        snap = t.snapshot()
        assert [e["name"] for e in snap] == ["a_gauge", "b_total"]
        json.dumps(snap)  # must not raise


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with span("run", t, system="ess") as outer:
            with span("step", t, step=1):
                pass
            with span("step", t, step=2):
                pass
        events = sink.events
        # children close (and emit) before the parent
        assert [e["span"] for e in events] == ["step", "step", "run"]
        steps, run = events[:2], events[2]
        assert run["parent"] is None and run["depth"] == 0
        assert all(e["parent"] == run["id"] for e in steps)
        assert all(e["depth"] == 1 for e in steps)
        assert run is outer
        assert run["attrs"] == {"system": "ess"}
        assert all(e["seconds"] >= 0 for e in events)

    def test_block_can_attach_late_attrs(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with span("unit", t, group=3) as ev:
            ev["attrs"]["records"] = 7
        assert sink.events[0]["attrs"] == {"group": 3, "records": 7}

    def test_error_status_recorded_and_exception_propagates(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        with pytest.raises(ValueError):
            with span("run", t):
                raise ValueError("boom")
        assert sink.events[0]["status"] == "error"
        # the failed span still lands in the latency histogram
        h = t.histogram(SPAN_SECONDS_METRIC, span="run")
        assert h.count == 1

    def test_span_durations_feed_the_histogram(self):
        t = Telemetry()
        with span("generation", t):
            pass
        with span("generation", t):
            pass
        assert t.histogram(SPAN_SECONDS_METRIC, span="generation").count == 2

    def test_threads_have_independent_lineages(self):
        t = Telemetry()
        sink = ListSink()
        t.add_sink(sink)
        seen = {}

        def other_thread():
            with span("worker", t) as ev:
                seen.update(ev)

        with span("main", t):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        # the other thread's span must NOT inherit the main thread's
        # open span as its parent
        assert seen["parent"] is None and seen["depth"] == 0

    def test_default_registry_is_the_process_one(self):
        sink = ListSink()
        obs.telemetry().add_sink(sink)
        with span("solo"):
            pass
        assert [e["span"] for e in sink.events] == ["solo"]


# ----------------------------------------------------------------------
# Sinks and module-level wiring
# ----------------------------------------------------------------------
class TestSinks:
    def test_jsonl_sink_is_lazy_and_line_parseable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # no empty files for silent runs
        sink.emit({"event": "span", "span": "a"})
        sink.emit({"event": "span", "span": "b"})
        assert [json.loads(line)["span"] for line in path.open()] == [
            "a",
            "b",
        ]
        sink.close()
        sink.emit({"event": "span", "span": "late"})  # dropped, no raise
        assert len(path.read_text().splitlines()) == 2

    def test_reset_isolates_registries_and_closes_sinks(self, tmp_path):
        first = obs.configure(trace_path=tmp_path / "t.jsonl")
        first.counter("x_total").inc()
        fresh = obs.reset()
        assert fresh is obs.telemetry() and fresh is not first
        assert fresh.snapshot() == []
        assert fresh.sinks == []

    def test_dump_metrics_writes_the_process_snapshot(self, tmp_path):
        obs.telemetry().counter("things_total", kind="a").inc(3)
        path = tmp_path / "m.prom"
        obs.dump_metrics(path)
        parsed = parse_prometheus_text(path.read_text())
        assert parsed == obs.telemetry().snapshot()


# ----------------------------------------------------------------------
# Prometheus text round-trip
# ----------------------------------------------------------------------
class TestPrometheusRoundTrip:
    def _populated(self) -> Telemetry:
        t = Telemetry()
        t.counter("repro_cells_total", plan="p1").inc(12)
        t.counter("repro_cells_total", plan="p2").inc(3)
        t.gauge("repro_busy_seconds", worker='w "quoted"\\x').set(1.25)
        t.histogram("repro_unit_seconds").observe(0.02)
        t.histogram("repro_unit_seconds").observe(7.5)
        t.histogram(
            "repro_span_seconds", span="unit", buckets=(0.5, 2.0)
        ).observe(1.0)
        return t

    def test_round_trip_equals_snapshot(self):
        t = self._populated()
        assert parse_prometheus_text(t.prometheus_text()) == t.snapshot()

    def test_default_buckets_survive_the_trip(self):
        t = Telemetry()
        t.histogram("h_seconds").observe(0.3)
        (entry,) = parse_prometheus_text(t.prometheus_text())
        assert len(entry["buckets"]) == len(DEFAULT_BUCKETS) + 1
        assert entry["buckets"]["+Inf"] == 1

    def test_empty_registry_renders_and_parses_empty(self):
        t = Telemetry()
        assert t.prometheus_text() == ""
        assert parse_prometheus_text("") == []

    def test_unparseable_lines_raise(self):
        with pytest.raises(ReproError):
            parse_prometheus_text("what even is this line }{")


# ----------------------------------------------------------------------
# Instrumentation parity — observing a run never changes its results
# ----------------------------------------------------------------------
def _tiny_plan() -> ExperimentPlan:
    """One (case, backend) group, two systems, two seeds: 4 cells."""
    return ExperimentPlan(
        name="obs-parity",
        systems=("ess", "ess-ns"),
        cases=(CaseSpec("grassland", size=20, steps=2),),
        seeds=(0, 1),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=8, generations=2, session_cache_size=2048
        ),
    )


def _sorted_normalized(store: ResultsStore) -> list[dict]:
    return [
        parity_view(r) for r in sorted(store.records(), key=record_key)
    ]


def _trace_events(path) -> list[dict]:
    return [json.loads(line) for line in open(path)]


class TestInstrumentationParity:
    def test_traced_inline_run_matches_untraced(self, tmp_path):
        plan = _tiny_plan()
        plain = ResultsStore(tmp_path / "plain.jsonl")
        ExperimentRunner(store=plain).run(plan, executor=InlineExecutor())

        obs.reset()
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        obs.configure(trace_path=trace)
        traced = ResultsStore(tmp_path / "traced.jsonl")
        ExperimentRunner(store=traced).run(plan, executor=InlineExecutor())
        obs.dump_metrics(metrics)
        obs.shutdown()

        # the one hard promise: not a byte of difference in the shared
        # parity view
        assert _sorted_normalized(traced) == _sorted_normalized(plain)
        # unit provenance rides on the records and parity_view strips it
        records = traced.records()
        assert all("telemetry" in r for r in records)
        assert all("telemetry" not in parity_view(r) for r in records)
        assert all(
            r["telemetry"]["unit_cells"] >= 1 for r in records
        )

        events = _trace_events(trace)
        unit_spans = [e for e in events if e.get("span") == "unit"]
        run_spans = [e for e in events if e.get("span") == "run"]
        # inline execution: the single group arrives as one work unit
        assert len(unit_spans) == 1
        assert unit_spans[0]["attrs"]["cells"] == plan.n_runs
        # one run span per cell, parented by its unit span
        assert len(run_spans) == plan.n_runs
        assert {e["parent"] for e in run_spans} == {unit_spans[0]["id"]}
        # step and generation spans nest below runs
        assert any(e.get("span") == "step" for e in events)
        assert any(e.get("span") == "generation" for e in events)

        parsed = parse_prometheus_text(metrics.read_text())
        names = {e["name"] for e in parsed}
        assert "repro_engine_cache_hits_total" in names
        assert "repro_engine_cache_misses_total" in names
        assert "repro_engine_batch_seconds" in names
        assert "repro_units_total" in names
        by_key = {
            (e["name"], tuple(sorted(e["labels"].items()))): e
            for e in parsed
        }
        assert (
            by_key[("repro_units_total", (("plan", plan.name),))]["value"]
            == 1
        )

    @needs_fork
    def test_traced_process_shards_match_untraced_inline(self, tmp_path):
        plan = _tiny_plan()
        plain = ResultsStore(tmp_path / "plain.jsonl")
        ExperimentRunner(store=plain).run(plan, executor=InlineExecutor())

        obs.reset()
        obs.configure(trace_path=tmp_path / "trace.jsonl")
        sharded = ResultsStore(tmp_path / "sharded.jsonl")
        ExperimentRunner(store=sharded).run(
            plan, executor=ProcessShardExecutor(2)
        )
        obs.shutdown()
        assert _sorted_normalized(sharded) == _sorted_normalized(plain)

    def test_traced_fleet_matches_untraced_inline(self, tmp_path):
        plan = _tiny_plan()
        plain = ResultsStore(tmp_path / "plain.jsonl")
        ExperimentRunner(store=plain).run(plan, executor=InlineExecutor())

        obs.reset()
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        obs.configure(trace_path=trace)
        store = ResultsStore(tmp_path / "fleet.jsonl")
        threads: list[threading.Thread] = []
        summaries: list[dict] = []

        def worker(address, index):
            summaries.append(
                run_worker(
                    address,
                    store_path=str(tmp_path / f"w{index}.jsonl"),
                    worker_id=f"obs-w{index}",
                )
            )

        def on_bound(address):
            for index in range(2):
                thread = threading.Thread(
                    target=worker, args=(address, index)
                )
                thread.start()
                threads.append(thread)

        executor = FleetExecutor(
            lease_timeout=15.0,
            poll_interval=0.05,
            timeout=120.0,
            on_bound=on_bound,
        )
        try:
            ExperimentRunner(store=store).run(plan, executor=executor)
        finally:
            for thread in threads:
                thread.join(timeout=60)
        obs.dump_metrics(metrics)
        obs.shutdown()

        assert _sorted_normalized(store) == _sorted_normalized(plain)

        # one unit span per unit a worker executed (in-thread workers
        # share the process trace sink)
        events = _trace_events(trace)
        unit_spans = [e for e in events if e.get("span") == "unit"]
        assert len(unit_spans) == sum(s["units"] for s in summaries)

        # the coordinator's per-worker utilization view is populated
        # and lands in the metrics snapshot as busy/idle gauges
        assert set(executor.worker_stats) == {"obs-w0", "obs-w1"}
        for st in executor.worker_stats.values():
            assert st["busy_seconds"] >= 0.0
            assert st["idle_seconds"] >= 0.0
        names = {
            e["name"] for e in parse_prometheus_text(metrics.read_text())
        }
        assert "repro_fleet_worker_busy_seconds" in names
        assert "repro_fleet_worker_idle_seconds" in names
        assert "repro_worker_busy_seconds" in names
        assert "repro_fleet_unit_seconds" in names
        # the fleet summary event reaches the trace sinks too
        assert any(e.get("event") == "fleet_summary" for e in events)
