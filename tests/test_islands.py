"""Tests for the epoch-based island model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.individual import Individual
from repro.ea.ga import GAConfig, GeneticAlgorithm
from repro.ea.termination import Termination
from repro.errors import ParallelError
from repro.parallel.executor import SerialEvaluator
from repro.parallel.islands import IslandModel, IslandModelConfig

TERM = Termination(max_generations=8, fitness_threshold=0.99)


def _model(n_islands=3, interval=2, topology="ring", migrants=1):
    return IslandModel(
        lambda: GeneticAlgorithm(GAConfig(population_size=10)),
        IslandModelConfig(
            n_islands=n_islands,
            migration_interval=interval,
            n_migrants=migrants,
            topology=topology,
        ),
    )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_islands": 0},
            {"migration_interval": 0},
            {"n_migrants": -1},
            {"topology": "mesh"},
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ParallelError):
            IslandModelConfig(**kwargs)


class TestIslandRun:
    def test_all_islands_evolve(self, toy_problem, space):
        res = _model().run(SerialEvaluator(toy_problem), space, TERM, rng=0)
        assert len(res.populations) == 3
        assert all(len(pop) == 10 for pop in res.populations)
        assert res.generations == 8
        assert res.best.fitness > 0.5

    def test_histories_use_global_generations(self, toy_problem, space):
        res = _model(interval=3).run(SerialEvaluator(toy_problem), space, TERM, rng=0)
        gens = res.histories[0].series("generation")
        assert np.array_equal(gens, np.arange(1, 9))

    def test_deterministic(self, toy_problem, space):
        a = _model().run(SerialEvaluator(toy_problem), space, TERM, rng=9)
        b = _model().run(SerialEvaluator(toy_problem), space, TERM, rng=9)
        assert a.best.fitness == b.best.fitness

    def test_threshold_between_epochs(self, toy_problem, space):
        term = Termination(max_generations=40, fitness_threshold=0.5)
        res = _model().run(SerialEvaluator(toy_problem), space, term, rng=1)
        assert res.generations < 40
        assert "threshold" in res.stop_reason

    def test_best_island_index(self, toy_problem, space):
        res = _model().run(SerialEvaluator(toy_problem), space, TERM, rng=0)
        idx = res.best_island()
        assert 0 <= idx < 3

    def test_single_island_no_migration(self, toy_problem, space):
        res = _model(n_islands=1).run(SerialEvaluator(toy_problem), space, TERM, rng=0)
        assert len(res.populations) == 1

    def test_evaluations_accumulate(self, toy_problem, space):
        res = _model().run(SerialEvaluator(toy_problem), space, TERM, rng=0)
        # 3 islands × (10 initial per epoch-start reuse + 10 per gen × 8)
        assert res.evaluations >= 3 * (10 + 8 * 10)


class TestMigration:
    def test_ring_migration_spreads_best(self, toy_problem, space):
        # With aggressive migration the islands share their champions:
        # after the run, every island contains a copy-level individual
        # close to the global best.
        res = _model(migrants=3, interval=2).run(
            SerialEvaluator(toy_problem), space, TERM, rng=3
        )
        best = res.best.fitness
        for pop in res.populations:
            island_best = max(ind.fitness for ind in pop)
            assert island_best > best * 0.5

    def test_broadcast_topology_runs(self, toy_problem, space):
        res = _model(topology="broadcast").run(
            SerialEvaluator(toy_problem), space, TERM, rng=0
        )
        assert res.best.fitness > 0.5

    def test_none_topology_isolates(self, toy_problem, space):
        res = _model(topology="none").run(
            SerialEvaluator(toy_problem), space, TERM, rng=0
        )
        assert len(res.populations) == 3


class TestIntervention:
    def test_intervention_called_each_epoch(self, toy_problem, space):
        calls = []

        def intervention(epoch, populations):
            calls.append(epoch)
            return populations

        _model(interval=2).run(
            SerialEvaluator(toy_problem), space, TERM, rng=0,
            intervention=intervention,
        )
        assert calls == [0, 1, 2, 3]  # 8 generations / interval 2

    def test_intervention_can_replace_population(self, toy_problem, space):
        def nuke(epoch, populations):
            return [
                [Individual(genome=space.sample(1, 1)[0]) for _ in pop]
                for pop in populations
            ]

        res = _model(interval=4).run(
            SerialEvaluator(toy_problem), space, TERM, rng=0, intervention=nuke
        )
        assert all(len(pop) == 10 for pop in res.populations)
