"""Tests for the unit-of-work layer (`repro.experiments.work`).

WorkUnit/WorkSet are the currency of execution: these tests pin the
algebra (split/merge round-trips, validation), the stable JSON wire
form, compile-from-store semantics (the one source of truth for "what
remains"), the scheduling helpers shared by the shard executor and the
fleet ledger, and the runner-facing invariant that a cell's record is
independent of which unit delivered it.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
    WorkSet,
    WorkUnit,
    record_key,
)
from repro.experiments.store import parity_view
from repro.experiments.work import assign_units, split_units


def _plan(**overrides) -> ExperimentPlan:
    values = dict(
        name="work-test",
        systems=("ess", "ess-ns"),
        cases=(
            CaseSpec("grassland", size=20, steps=2),
            CaseSpec("river_gap", size=20, steps=2),
        ),
        seeds=(0, 1),
        backends=("vectorized",),
        budget=BudgetSpec(population=8, generations=2),
    )
    values.update(overrides)
    return ExperimentPlan(**values)


def _unit(n: int, group: int = 0) -> WorkUnit:
    return WorkUnit(
        group, tuple(("ess", "grassland", seed, "reference") for seed in range(n))
    )


class TestWorkUnit:
    def test_validation(self):
        with pytest.raises(ReproError, match="at least one cell"):
            WorkUnit(0, ())
        with pytest.raises(ReproError, match=">= 0"):
            WorkUnit(-1, (("ess", "grassland", 0, "reference"),))
        with pytest.raises(ReproError, match="duplicate"):
            WorkUnit(
                0,
                (
                    ("ess", "grassland", 0, "reference"),
                    ("ess", "grassland", 0, "reference"),
                ),
            )
        with pytest.raises(ReproError, match="malformed"):
            WorkUnit(0, (("ess", "grassland"),))  # truncated cell

    @pytest.mark.parametrize("n", [2, 3, 7, 16])
    def test_split_merge_round_trip(self, n):
        unit = _unit(n)
        first, second = unit.split()
        # halves: disjoint, ordered, first no smaller, cover everything
        assert first.n_cells == (n + 1) // 2
        assert first.cells + second.cells == unit.cells
        assert not set(first.cells) & set(second.cells)
        assert first.merge(second) == unit

    def test_single_cell_unit_cannot_split(self):
        with pytest.raises(ReproError, match="single-cell"):
            _unit(1).split()

    def test_merge_rejects_cross_group_and_overlap(self):
        with pytest.raises(ReproError, match="different groups"):
            _unit(2, group=0).merge(_unit(2, group=1))
        with pytest.raises(ReproError, match="overlapping"):
            _unit(3).merge(_unit(2))

    def test_wire_round_trip(self):
        unit = _unit(3, group=2)
        payload = unit.to_dict()
        assert payload == {
            "group": 2,
            "cells": [["ess", "grassland", s, "reference"] for s in range(3)],
        }
        assert WorkUnit.from_dict(payload) == unit
        with pytest.raises(ReproError, match="malformed work unit"):
            WorkUnit.from_dict({"group": 0})


class TestWorkSet:
    def test_compile_covers_grid_in_group_order(self):
        plan = _plan()
        workset = WorkSet.compile(plan)
        assert [u.group for u in workset.units] == [0, 1]
        assert workset.total_cells == plan.n_runs
        cells = [c for u in workset.units for c in u.cells]
        assert cells == [k.as_tuple() for k in plan.runs()]

    def test_compile_excludes_done_and_drops_empty_groups(self):
        plan = _plan()
        (_, keys0), (_, keys1) = plan.groups()
        done = {k.as_tuple() for k in keys0} | {keys1[0].as_tuple()}
        workset = WorkSet.compile(plan, done)
        assert len(workset) == 1
        (unit,) = workset.pending()
        assert unit.group == 1
        assert unit.cells == tuple(
            k.as_tuple() for k in keys1[1:]
        )

    def test_validation_rejects_foreign_and_overlapping_cells(self):
        plan = _plan()
        with pytest.raises(ReproError, match="has 2 groups"):
            WorkSet(plan, (WorkUnit(7, (("ess", "grassland", 0, "vectorized"),)),))
        with pytest.raises(ReproError, match="outside that group"):
            # river_gap cell filed under the grassland group
            WorkSet(plan, (WorkUnit(0, (("ess", "river_gap", 0, "vectorized"),)),))
        cell = ("ess", "grassland", 0, "vectorized")
        with pytest.raises(ReproError, match="more than one work unit"):
            WorkSet(plan, (WorkUnit(0, (cell,)), WorkUnit(0, (cell,))))

    def test_wire_round_trip(self):
        plan = _plan()
        workset = WorkSet.compile(plan).split(4)
        clone = WorkSet.from_dict(workset.to_dict())
        assert clone == workset
        assert clone.plan == plan


class TestScheduling:
    def test_split_units_reaches_target_and_respects_floor(self):
        units = [_unit(8)]
        assert [u.n_cells for u in split_units(units, 1)] == [8]
        split = split_units(units, 4)
        assert sorted(u.n_cells for u in split) == [2, 2, 2, 2]
        # floor: with min_unit_cells=2 an 8-cell unit yields 4 at most
        assert len(split_units(units, 16, min_unit_cells=2)) == 4
        # 0 disables splitting entirely (whole-group behaviour)
        assert split_units(units, 16, min_unit_cells=0) == units
        # unsplittable singles stop the loop instead of spinning
        assert len(split_units(units, 100)) == 8

    def test_split_units_preserves_cells_exactly(self):
        units = [_unit(7, group=0), _unit(3, group=1)]
        split = split_units(units, 6)
        assert sorted(c for u in split for c in u.cells) == sorted(
            c for u in units for c in u.cells
        )

    def test_assign_units_balances_and_never_leaves_empty(self):
        units = split_units([_unit(8)], 4) + [_unit(2, group=1)]
        buckets = assign_units(units, 3)
        assert len(buckets) == 3
        assert all(buckets)
        loads = sorted(sum(u.n_cells for u in b) for b in buckets)
        assert loads == [2, 4, 4]
        # fewer units than buckets: no empties
        assert len(assign_units([_unit(4)], 5)) == 1
        assert assign_units([], 3) == []
        with pytest.raises(ReproError):
            assign_units(units, 0)


class TestRunUnits:
    def test_unit_boundaries_do_not_change_records(self, tmp_path):
        """The redesign's core invariant: the same plan executed as
        whole groups and as single-cell units records identical bytes
        in the parity view, and resume dedupes across granularities."""
        plan = _plan(cases=(CaseSpec("grassland", size=20, steps=2),))
        whole = ResultsStore(tmp_path / "whole.jsonl")
        ExperimentRunner(store=whole).run(plan)

        sliced = ResultsStore(tmp_path / "sliced.jsonl")
        runner = ExperimentRunner(store=sliced)
        workset = WorkSet.compile(plan)
        singles = split_units(workset.pending(), plan.n_runs)
        assert all(u.n_cells == 1 for u in singles)
        # deliver the cells one unit at a time, in shuffled order
        for unit in reversed(singles):
            runner.run_units(plan, [unit], sliced.completed())
        norm = lambda store: [
            parity_view(r) for r in sorted(store.records(), key=record_key)
        ]
        assert norm(sliced) == norm(whole)

    def test_run_units_rejects_foreign_cells_and_bad_groups(self, tmp_path):
        plan = _plan()
        runner = ExperimentRunner()
        with pytest.raises(ReproError, match="has 2 groups"):
            runner.run_units(
                plan,
                [WorkUnit(9, (("ess", "grassland", 0, "vectorized"),))],
                set(),
            )
        with pytest.raises(ReproError, match="outside that group"):
            runner.run_units(
                plan,
                [WorkUnit(0, (("ess", "grassland", 99, "vectorized"),))],
                set(),
            )

    def test_run_groups_shim_equals_run_units(self, tmp_path):
        plan = _plan(cases=(CaseSpec("grassland", size=20, steps=2),))
        a = ResultsStore(tmp_path / "groups.jsonl")
        ExperimentRunner(store=a).run_groups(plan, [0], set())
        b = ResultsStore(tmp_path / "units.jsonl")
        ExperimentRunner(store=b).run_units(
            plan, WorkSet.compile(plan).pending(), set()
        )
        norm = lambda store: [
            parity_view(r) for r in sorted(store.records(), key=record_key)
        ]
        assert norm(a) == norm(b)
