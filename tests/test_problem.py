"""Tests for the picklable PredictionStepProblem (the OS-Worker job)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.fitness import jaccard_fitness
from repro.errors import SimulationError
from repro.systems.problem import PredictionStepProblem


class TestConstruction:
    def test_basic(self, step1_problem):
        assert step1_problem.horizon > 0
        assert step1_problem.space.dimension == 9

    def test_shape_checks(self, small_fire):
        good = small_fire.start_mask(1)
        with pytest.raises(SimulationError):
            PredictionStepProblem(
                small_fire.terrain,
                np.zeros((3, 3), dtype=bool),
                small_fire.real_mask(1),
                10.0,
            )
        with pytest.raises(SimulationError):
            PredictionStepProblem(
                small_fire.terrain, good, np.zeros((3, 3), dtype=bool), 10.0
            )

    def test_empty_start_raises(self, small_fire):
        with pytest.raises(SimulationError):
            PredictionStepProblem(
                small_fire.terrain,
                np.zeros(small_fire.terrain.shape, dtype=bool),
                small_fire.real_mask(1),
                10.0,
            )

    def test_bad_horizon_raises(self, small_fire):
        with pytest.raises(SimulationError):
            PredictionStepProblem(
                small_fire.terrain,
                small_fire.start_mask(1),
                small_fire.real_mask(1),
                0.0,
            )


class TestEvaluation:
    def test_true_scenario_scores_high(self, small_fire, step1_problem, space):
        true_genome = space.encode(small_fire.true_scenarios[0])
        fitness = step1_problem.evaluate_one(true_genome)
        assert fitness > 0.9  # the generating scenario must fit well

    def test_wet_scenario_scores_low(self, step1_problem, space, wet_scenario):
        fitness = step1_problem.evaluate_one(space.encode(wet_scenario))
        # No growth simulated vs substantial real growth → near zero.
        assert fitness < 0.1

    def test_batch_matches_single(self, step1_problem, space):
        genomes = space.sample(6, 3)
        batch = step1_problem.evaluate_batch(genomes)
        singles = [step1_problem.evaluate_one(g) for g in genomes]
        assert np.allclose(batch, singles)

    def test_fitness_in_unit_interval(self, step1_problem, space):
        batch = step1_problem.evaluate_batch(space.sample(12, 8))
        assert (batch >= 0).all() and (batch <= 1).all()

    def test_burned_map_contains_start(self, small_fire, step1_problem, space):
        g = space.sample(1, 0)[0]
        burned = step1_problem.burned_map(g)
        assert (burned & small_fire.start_mask(1)).sum() == small_fire.start_mask(1).sum()

    def test_burned_maps_stack(self, step1_problem, space):
        stack = step1_problem.burned_maps(space.sample(3, 1))
        assert stack.shape == (3, *step1_problem.terrain.shape)
        assert stack.dtype == bool

    def test_consistency_with_jaccard(self, small_fire, step1_problem, space):
        g = space.sample(1, 5)[0]
        expected = jaccard_fitness(
            small_fire.real_mask(1),
            step1_problem.burned_map(g),
            small_fire.start_mask(1),
        )
        assert step1_problem.evaluate_one(g) == pytest.approx(expected)


class TestPickling:
    def test_roundtrip_preserves_results(self, step1_problem, space):
        genomes = space.sample(4, 9)
        expected = step1_problem.evaluate_batch(genomes)
        clone = pickle.loads(pickle.dumps(step1_problem))
        assert np.allclose(clone.evaluate_batch(genomes), expected)

    def test_simulator_not_pickled(self, step1_problem):
        step1_problem.simulator  # force lazy build
        state = step1_problem.__getstate__()
        assert state["_simulator"] is None
