"""Tests for the shared evolution history records."""

from __future__ import annotations

import numpy as np

from repro.ea.history import EvolutionHistory, GenerationRecord


def _rec(gen, mx=0.5, **kw):
    defaults = dict(
        generation=gen,
        max_fitness=mx,
        mean_fitness=0.3,
        fitness_iqr=0.1,
        mean_novelty=float("nan"),
        genotypic_diversity=0.2,
        archive_size=0,
        best_set_size=0,
        evaluations=gen * 10,
    )
    defaults.update(kw)
    return GenerationRecord(**defaults)


class TestEvolutionHistory:
    def test_append_and_len(self):
        h = EvolutionHistory()
        h.append(_rec(1))
        h.append(_rec(2))
        assert len(h) == 2

    def test_iteration_in_order(self):
        h = EvolutionHistory()
        for g in range(1, 4):
            h.append(_rec(g))
        assert [r.generation for r in h] == [1, 2, 3]

    def test_series(self):
        h = EvolutionHistory()
        h.append(_rec(1, mx=0.2))
        h.append(_rec(2, mx=0.7))
        assert np.array_equal(h.series("max_fitness"), [0.2, 0.7])
        assert np.array_equal(h.series("evaluations"), [10, 20])

    def test_final_max_fitness(self):
        h = EvolutionHistory()
        assert h.final_max_fitness() == 0.0
        h.append(_rec(1, mx=0.4))
        assert h.final_max_fitness() == 0.4

    def test_records_frozen(self):
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            _rec(1).max_fitness = 0.9
