"""Minimum-travel-time fire propagation over a cell grid.

fireLib propagates fire by contagion: a burning cell ignites each
neighbour after a travel time ``distance / R(θ)`` where θ is the compass
azimuth from the burning cell to the neighbour and R comes from the
burning cell's growth ellipse. The earliest arrival over all paths is
exactly a shortest-path problem, solved here with Dijkstra's algorithm
over a binary heap.

The expensive part — the per-direction spread rates — is fully
vectorised: :func:`directional_travel_times` produces a ``(D, H, W)``
array in one NumPy pass per direction, so the Python-level heap loop only
does O(cells·D) constant-time work.

Stencils: the default 8-neighbour stencil gives octagonal distortion of
a circular fire of at most ~8%; the 16-neighbour stencil (adds knight
moves) reduces it to ~3% at twice the edge cost.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.firelib.ellipse import ros_at_azimuth
from repro.firelib.rothermel import ROS_EPSILON

__all__ = [
    "NEIGHBORS_8",
    "NEIGHBORS_16",
    "stencil",
    "directional_travel_times",
    "propagate",
]

#: 8-neighbour stencil: (drow, dcol). Row 0 is the northern edge, so
#: drow = -1 points North (azimuth 0°) and dcol = +1 points East (90°).
NEIGHBORS_8: tuple[tuple[int, int], ...] = (
    (-1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, -1),
)

#: 16-neighbour stencil: the 8 above plus knight moves.
NEIGHBORS_16: tuple[tuple[int, int], ...] = NEIGHBORS_8 + (
    (-2, 1),
    (-1, 2),
    (1, 2),
    (2, 1),
    (2, -1),
    (1, -2),
    (-1, -2),
    (-2, -1),
)


def stencil(n_neighbors: int) -> tuple[tuple[int, int], ...]:
    """The (drow, dcol) offsets for an 8- or 16-neighbour stencil."""
    if n_neighbors == 8:
        return NEIGHBORS_8
    if n_neighbors == 16:
        return NEIGHBORS_16
    raise SimulationError(f"stencil must have 8 or 16 neighbours, got {n_neighbors}")


def _offset_azimuth_deg(drow: int, dcol: int) -> float:
    """Compass azimuth (degrees clockwise from North) of an offset."""
    # North is -row, East is +col.
    return math.degrees(math.atan2(dcol, -drow)) % 360.0


def directional_travel_times(
    ros_max: np.ndarray,
    dir_max_deg: np.ndarray,
    eccentricity: np.ndarray,
    cell_size_ft: float,
    blocked: np.ndarray | None = None,
    n_neighbors: int = 8,
) -> np.ndarray:
    """Per-direction travel times (minutes) out of every cell.

    Parameters
    ----------
    ros_max, dir_max_deg, eccentricity:
        Per-cell ellipse description (ft/min, degrees, unitless), shape
        ``(H, W)`` each (scalars broadcast).
    cell_size_ft:
        Cell side in feet.
    blocked:
        Optional boolean mask; blocked *source* cells emit no fire
        (their outgoing times are ``inf``). Blocking of target cells is
        enforced by :func:`propagate`.
    n_neighbors:
        8 or 16.

    Returns
    -------
    np.ndarray
        Shape ``(D, H, W)``: ``out[d, r, c]`` is the time for fire to
        travel from cell ``(r, c)`` to its ``d``-th neighbour; ``inf``
        where the cell does not spread that way.
    """
    offsets = stencil(n_neighbors)
    ros_max = np.atleast_2d(np.asarray(ros_max, dtype=np.float64))
    dir_max_deg = np.broadcast_to(
        np.asarray(dir_max_deg, dtype=np.float64), ros_max.shape
    )
    eccentricity = np.broadcast_to(
        np.asarray(eccentricity, dtype=np.float64), ros_max.shape
    )
    if cell_size_ft <= 0:
        raise SimulationError(f"cell size must be positive, got {cell_size_ft}")

    out = np.empty((len(offsets), *ros_max.shape), dtype=np.float64)
    for d, (dr, dc) in enumerate(offsets):
        azimuth = _offset_azimuth_deg(dr, dc)
        distance = cell_size_ft * math.hypot(dr, dc)
        ros = ros_at_azimuth(ros_max, dir_max_deg, eccentricity, azimuth)
        with np.errstate(divide="ignore"):
            out[d] = np.where(ros > ROS_EPSILON, distance / ros, np.inf)
    if blocked is not None:
        out[:, np.asarray(blocked, dtype=bool)] = np.inf
    return out


def propagate(
    travel_time: np.ndarray,
    ignitions: Iterable[tuple[int, int]] | Mapping[tuple[int, int], float],
    horizon: float | None = None,
    blocked: np.ndarray | None = None,
    n_neighbors: int | None = None,
) -> np.ndarray:
    """Earliest-arrival ignition times from one or more ignition cells.

    Parameters
    ----------
    travel_time:
        ``(D, H, W)`` per-direction travel times from
        :func:`directional_travel_times`. ``D`` selects the stencil
        (8 or 16) unless ``n_neighbors`` overrides it.
    ignitions:
        Either an iterable of ``(row, col)`` cells igniting at t=0, or a
        mapping ``{(row, col): start_time}``.
    horizon:
        Simulation horizon in minutes; cells not reached by then are
        left at ``inf``. ``None`` propagates to exhaustion.
    blocked:
        Boolean mask of cells fire can never enter.

    Returns
    -------
    np.ndarray
        ``(H, W)`` float64 ignition times, ``inf`` where unburned.
    """
    if travel_time.ndim != 3:
        raise SimulationError(
            f"travel_time must be (D, H, W), got shape {travel_time.shape}"
        )
    n_dirs = travel_time.shape[0] if n_neighbors is None else n_neighbors
    offsets = stencil(n_dirs)
    if len(offsets) != travel_time.shape[0]:
        raise SimulationError(
            f"stencil size {len(offsets)} != travel_time directions "
            f"{travel_time.shape[0]}"
        )
    rows, cols = travel_time.shape[1:]
    blocked_mask = (
        np.zeros((rows, cols), dtype=bool)
        if blocked is None
        else np.asarray(blocked, dtype=bool)
    )
    if blocked_mask.shape != (rows, cols):
        raise SimulationError(
            f"blocked mask shape {blocked_mask.shape} != grid {(rows, cols)}"
        )

    if isinstance(ignitions, Mapping):
        seeds = {(int(r), int(c)): float(t) for (r, c), t in ignitions.items()}
    else:
        seeds = {(int(r), int(c)): 0.0 for (r, c) in ignitions}
    if not seeds:
        raise SimulationError("at least one ignition cell is required")

    times = np.full((rows, cols), np.inf, dtype=np.float64)
    heap: list[tuple[float, int, int]] = []
    for (r, c), t0 in seeds.items():
        if not (0 <= r < rows and 0 <= c < cols):
            raise SimulationError(f"ignition cell {(r, c)} outside {rows}x{cols} grid")
        if t0 < 0:
            raise SimulationError(f"ignition time must be non-negative, got {t0}")
        if blocked_mask[r, c]:
            continue  # igniting an unburnable cell is a no-op
        if t0 < times[r, c]:
            times[r, c] = t0
            heapq.heappush(heap, (t0, r, c))

    limit = np.inf if horizon is None else float(horizon)
    tt = travel_time  # local alias for the hot loop
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        t, r, c = pop(heap)
        if t > times[r, c]:
            continue  # stale entry
        if t > limit:
            break  # all remaining arrivals exceed the horizon
        for d, (dr, dc) in enumerate(offsets):
            nr, nc = r + dr, c + dc
            if not (0 <= nr < rows and 0 <= nc < cols):
                continue
            if blocked_mask[nr, nc]:
                continue
            nt = t + tt[d, r, c]
            if nt < times[nr, nc]:
                times[nr, nc] = nt
                push(heap, (nt, nr, nc))

    if horizon is not None:
        times[times > limit] = np.inf
    return times
