"""The fire simulator facade (fireLib's ``FireSim`` equivalent).

:class:`FireSimulator` binds a :class:`~repro.grid.terrain.Terrain` and
turns a *scenario* — the nine Table I parameters — into the per-cell
ignition-time map the paper's pipeline consumes (``FS`` in Figs. 1–3).

The scenario is duck-typed through :class:`ScenarioInputs` so this
package stays independent of :mod:`repro.core`; the canonical
:class:`repro.core.scenario.Scenario` satisfies the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.errors import SimulationError
from repro.firelib.moisture import Moisture
from repro.firelib.propagation import directional_travel_times, propagate
from repro.firelib.rothermel import spread
from repro.grid.firemap import IgnitionMap
from repro.grid.terrain import Terrain
from repro.units import METERS_TO_FEET

__all__ = ["ScenarioInputs", "FireSimulator", "SimulationResult", "METERS_TO_FEET"]


@runtime_checkable
class ScenarioInputs(Protocol):
    """Structural type of a simulator input scenario (Table I units).

    Attributes
    ----------
    model:
        NFFL fuel model code, 1–13.
    wind_speed:
        Wind speed, miles/hour.
    wind_dir:
        Compass azimuth toward which the wind blows, degrees clockwise
        from North.
    m1, m10, m100, mherb:
        Fuel moistures, percent.
    slope:
        Surface slope, degrees.
    aspect:
        Compass azimuth the surface faces, degrees clockwise from North.
    """

    model: int
    wind_speed: float
    wind_dir: float
    m1: float
    m10: float
    m100: float
    mherb: float
    slope: float
    aspect: float


@dataclass(frozen=True)
class SimulationResult:
    """Output of one simulator run.

    Attributes
    ----------
    ignition:
        Per-cell ignition times (minutes), ``inf`` where unburned.
    ros_max_ftmin:
        The maximum head-fire spread rate over the grid, ft/min.
    horizon:
        The horizon the run was clipped to (minutes).
    """

    ignition: IgnitionMap
    ros_max_ftmin: float
    horizon: float

    def burned(self, at_time: float | None = None) -> np.ndarray:
        """Burned mask at ``at_time`` (defaults to the horizon)."""
        return self.ignition.burned(self.horizon if at_time is None else at_time)


class FireSimulator:
    """Propagates fire over a fixed terrain for arbitrary scenarios.

    The terrain (grid geometry, optional per-cell rasters, unburnable
    mask) is bound at construction; each :meth:`simulate` call supplies
    a scenario, ignition cells and a horizon. Instances are immutable
    and safe to share across worker processes (workers typically build
    one from a :class:`~repro.grid.terrain.Terrain` received once).

    Parameters
    ----------
    terrain:
        The landscape to burn.
    n_neighbors:
        Propagation stencil, 8 (default, fireLib-like) or 16 (finer
        angular resolution at ~2× cost).
    """

    def __init__(self, terrain: Terrain, n_neighbors: int = 8) -> None:
        if n_neighbors not in (8, 16):
            raise SimulationError(
                f"n_neighbors must be 8 or 16, got {n_neighbors}"
            )
        self._terrain = terrain
        self._n_neighbors = n_neighbors
        self._blocked = terrain.blocked_mask()
        self._cell_ft = terrain.cell_size * METERS_TO_FEET

    @property
    def terrain(self) -> Terrain:
        """The bound terrain."""
        return self._terrain

    @property
    def n_neighbors(self) -> int:
        """Stencil size (8 or 16)."""
        return self._n_neighbors

    # ------------------------------------------------------------------
    def spread_fields(
        self, scenario: ScenarioInputs
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-cell ellipse description for one scenario.

        Returns ``(ros_max, dir_max_deg, eccentricity)`` arrays of the
        terrain shape (ft/min, degrees, unitless). This is the
        Rothermel half of :meth:`simulate`; the batched engine backends
        reuse it so every backend assembles fields through the exact
        same float operations.
        """
        moisture = Moisture.from_percent(
            scenario.m1, scenario.m10, scenario.m100, scenario.mherb
        )
        terrain = self._terrain
        shape = terrain.shape

        slope = terrain.slope if terrain.slope is not None else float(scenario.slope)
        aspect = (
            terrain.aspect if terrain.aspect is not None else float(scenario.aspect)
        )

        ros_max = np.zeros(shape, dtype=np.float64)
        dir_max = np.zeros(shape, dtype=np.float64)
        ecc = np.zeros(shape, dtype=np.float64)

        if terrain.fuel is None:
            result = spread(
                int(scenario.model),
                moisture,
                float(scenario.wind_speed),
                float(scenario.wind_dir),
                slope,
                aspect,
            )
            ros_max[...] = result.ros_max
            dir_max[...] = result.dir_max_deg
            ecc[...] = result.eccentricity
        else:
            slope_arr = np.broadcast_to(np.asarray(slope, dtype=np.float64), shape)
            aspect_arr = np.broadcast_to(np.asarray(aspect, dtype=np.float64), shape)
            for code in np.unique(terrain.fuel):
                if code == 0:
                    continue  # unburnable, stays at ros 0
                mask = terrain.fuel == code
                result = spread(
                    int(code),
                    moisture,
                    float(scenario.wind_speed),
                    float(scenario.wind_dir),
                    slope_arr[mask],
                    aspect_arr[mask],
                )
                ros_max[mask] = result.ros_max
                dir_max[mask] = result.dir_max_deg
                ecc[mask] = result.eccentricity
        return ros_max, dir_max, ecc

    # ------------------------------------------------------------------
    def simulate(
        self,
        scenario: ScenarioInputs,
        ignitions: Iterable[tuple[int, int]] | Mapping[tuple[int, int], float],
        horizon: float,
    ) -> SimulationResult:
        """Run one fire simulation.

        Parameters
        ----------
        scenario:
            Table I parameter bundle (see :class:`ScenarioInputs`).
        ignitions:
            Ignition cells — either ``(row, col)`` pairs igniting at
            t=0 or a mapping to start times (used to continue a fire
            from a previous real fire line, as the OS Workers do).
        horizon:
            Simulation length, minutes.

        Returns
        -------
        SimulationResult
        """
        if horizon <= 0 or not np.isfinite(horizon):
            raise SimulationError(f"horizon must be a positive finite time: {horizon}")
        ros_max, dir_max, ecc = self.spread_fields(scenario)
        travel = directional_travel_times(
            ros_max,
            dir_max,
            ecc,
            self._cell_ft,
            blocked=self._blocked,
            n_neighbors=self._n_neighbors,
        )
        times = propagate(
            travel, ignitions, horizon=horizon, blocked=self._blocked
        )
        return SimulationResult(
            ignition=IgnitionMap(times=times),
            ros_max_ftmin=float(ros_max.max(initial=0.0)),
            horizon=float(horizon),
        )

    # ------------------------------------------------------------------
    def simulate_from_burned(
        self,
        scenario: ScenarioInputs,
        burned: np.ndarray,
        horizon: float,
    ) -> SimulationResult:
        """Continue a fire from an already-burned region.

        Every burned cell is treated as igniting at t=0, which is how
        the OS Workers restart the simulator from the real fire line
        RFL_{i−1} (paper §II-A). Seeding only the fire-line frontier
        would be marginally cheaper but changes arrival times near
        concavities; seeding the full burned set matches fireLib's
        semantics. The returned map reports *new* ignition times; cells
        burned at the start keep time 0.
        """
        burned = np.asarray(burned, dtype=bool)
        if burned.shape != self._terrain.shape:
            raise SimulationError(
                f"burned mask shape {burned.shape} != terrain {self._terrain.shape}"
            )
        if not burned.any():
            raise SimulationError("cannot continue a fire from an empty burned mask")
        cells = [(int(r), int(c)) for r, c in zip(*np.nonzero(burned))]
        return self.simulate(scenario, cells, horizon)
