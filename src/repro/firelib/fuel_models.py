"""The 13 NFFL (Anderson 1982) stylised fuel models.

This is the same static catalog shipped by fireLib / BEHAVE: for each
model, the fuel-bed depth, dead-fuel moisture of extinction and the
loading of up to four particle classes (1-h, 10-h, 100-h dead fuels and
live herbaceous fuel). Particle-level constants (surface-area-to-volume
ratios for the coarser classes, heat content, densities, mineral
fractions) follow Albini (1976).

Units are the customary Rothermel system used by fireLib:

* loads — lb/ft²
* surface-area-to-volume (SAV) — ft²/ft³ (i.e. 1/ft)
* depth — ft
* heat content — Btu/lb
* moisture values — fractions (lb water / lb ovendry fuel)

Table I of the paper exposes ``Model`` as an integer 1–13 indexing this
catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ScenarioError

__all__ = [
    "FuelParticle",
    "FuelModel",
    "catalog",
    "get_model",
    "HEAT_CONTENT",
    "PARTICLE_DENSITY",
    "TOTAL_MINERAL",
    "EFFECTIVE_MINERAL",
    "SAV_10H",
    "SAV_100H",
]

#: Low heat content of all particles, Btu/lb (Albini 1976).
HEAT_CONTENT = 8000.0
#: Ovendry particle density, lb/ft³.
PARTICLE_DENSITY = 32.0
#: Total silica-free mineral content, fraction.
TOTAL_MINERAL = 0.0555
#: Effective (silica-free) mineral content, fraction.
EFFECTIVE_MINERAL = 0.010
#: Standard SAV ratios for the coarser dead classes, 1/ft.
SAV_10H = 109.0
SAV_100H = 30.0

#: Particle life classes.
DEAD = "dead"
LIVE = "live"


@dataclass(frozen=True)
class FuelParticle:
    """One particle class within a fuel bed.

    Attributes
    ----------
    life:
        ``"dead"`` or ``"live"``.
    load:
        Ovendry loading, lb/ft².
    sav:
        Surface-area-to-volume ratio, 1/ft.
    moisture_key:
        Which Table I moisture parameter drives this particle
        (``"m1"``, ``"m10"``, ``"m100"`` or ``"mherb"``).
    """

    life: str
    load: float
    sav: float
    moisture_key: str

    @property
    def surface_area_per_density(self) -> float:
        """(load × sav) / particle density — the Rothermel weighting basis."""
        return self.load * self.sav / PARTICLE_DENSITY


@dataclass(frozen=True)
class FuelModel:
    """A stylised NFFL fuel model.

    Attributes
    ----------
    code:
        Model number, 1–13 (Table I ``Model``).
    name:
        Anderson (1982) short description.
    depth:
        Fuel bed depth, ft.
    mext_dead:
        Dead fuel moisture of extinction, fraction.
    particles:
        The particle classes composing the bed (only classes with
        non-zero load are listed).
    """

    code: int
    name: str
    depth: float
    mext_dead: float
    particles: tuple[FuelParticle, ...]

    @property
    def total_load(self) -> float:
        """Sum of particle loads, lb/ft²."""
        return sum(p.load for p in self.particles)

    @property
    def dead_particles(self) -> tuple[FuelParticle, ...]:
        """Dead particle classes."""
        return tuple(p for p in self.particles if p.life == DEAD)

    @property
    def live_particles(self) -> tuple[FuelParticle, ...]:
        """Live particle classes."""
        return tuple(p for p in self.particles if p.life == LIVE)


def _model(
    code: int,
    name: str,
    depth: float,
    mext: float,
    load1: float,
    load10: float,
    load100: float,
    load_herb: float,
    sav1: float,
    sav_herb: float = 1500.0,
) -> FuelModel:
    """Build a catalog entry from the fireLib-style row."""
    particles: list[FuelParticle] = []
    if load1 > 0:
        particles.append(FuelParticle(DEAD, load1, sav1, "m1"))
    if load10 > 0:
        particles.append(FuelParticle(DEAD, load10, SAV_10H, "m10"))
    if load100 > 0:
        particles.append(FuelParticle(DEAD, load100, SAV_100H, "m100"))
    if load_herb > 0:
        particles.append(FuelParticle(LIVE, load_herb, sav_herb, "mherb"))
    return FuelModel(
        code=code,
        name=name,
        depth=depth,
        mext_dead=mext,
        particles=tuple(particles),
    )


#: The 13 standard models, keyed by ``Model`` code. Loads in lb/ft²
#: (Anderson 1982 tons/acre converted, matching the fireLib catalog).
_CATALOG: Mapping[int, FuelModel] = {
    1: _model(1, "short grass", 1.0, 0.12, 0.0340, 0.0, 0.0, 0.0, 3500.0),
    2: _model(2, "timber grass & understory", 1.0, 0.15, 0.0920, 0.0460, 0.0230, 0.0230, 3000.0),
    3: _model(3, "tall grass", 2.5, 0.25, 0.1380, 0.0, 0.0, 0.0, 1500.0),
    4: _model(4, "chaparral", 6.0, 0.20, 0.2300, 0.1840, 0.0920, 0.2300, 2000.0),
    5: _model(5, "brush", 2.0, 0.20, 0.0460, 0.0230, 0.0, 0.0920, 2000.0),
    6: _model(6, "dormant brush & hardwood slash", 2.5, 0.25, 0.0690, 0.1150, 0.0920, 0.0, 1750.0),
    7: _model(7, "southern rough", 2.5, 0.40, 0.0520, 0.0860, 0.0690, 0.0170, 1750.0),
    8: _model(8, "closed timber litter", 0.2, 0.30, 0.0690, 0.0460, 0.1150, 0.0, 2000.0),
    9: _model(9, "hardwood litter", 0.2, 0.25, 0.1340, 0.0190, 0.0070, 0.0, 2500.0),
    10: _model(10, "timber litter & understory", 1.0, 0.25, 0.1380, 0.0920, 0.2300, 0.0920, 2000.0),
    11: _model(11, "light logging slash", 1.0, 0.15, 0.0690, 0.2070, 0.2530, 0.0, 1500.0),
    12: _model(12, "medium logging slash", 2.3, 0.20, 0.1840, 0.6440, 0.7590, 0.0, 1500.0),
    13: _model(13, "heavy logging slash", 3.0, 0.25, 0.3220, 1.0580, 1.2880, 0.0, 1500.0),
}


def catalog() -> Mapping[int, FuelModel]:
    """The full NFFL catalog, keyed by model code 1–13."""
    return _CATALOG


def get_model(code: int) -> FuelModel:
    """Look up a fuel model by its Table I ``Model`` code.

    Raises
    ------
    ScenarioError
        If ``code`` is not within 1–13.
    """
    try:
        return _CATALOG[int(code)]
    except (KeyError, ValueError, TypeError):
        raise ScenarioError(
            f"fuel model code must be an integer in 1..13, got {code!r}"
        ) from None
