"""From-scratch Python reimplementation of the fireLib fire simulator.

The paper's prediction systems delegate all fire-behaviour computation to
the fireLib C library (Bevins 1996; the paper cites its GPU descendant
vFireLib). This package rebuilds the same pipeline in vectorised NumPy:

1. :mod:`~repro.firelib.fuel_models` — the 13 NFFL fuel models
   (Anderson 1982), the exact catalog fireLib ships.
2. :mod:`~repro.firelib.rothermel` — Rothermel (1972)/Albini (1976)
   surface-fire spread rate, with wind and slope factors.
3. :mod:`~repro.firelib.ellipse` — elliptical growth (Anderson 1983):
   eccentricity from effective wind speed, directional spread rates.
4. :mod:`~repro.firelib.propagation` — minimum-travel-time propagation
   over an 8/16-neighbour cell grid (the fireLib contagion scheme).
5. :mod:`~repro.firelib.simulator` — :class:`FireSimulator` facade:
   (terrain, scenario, ignition, horizon) → ignition-time map.

Inputs are the nine Table I parameters; output is the per-cell
time-of-ignition map the paper describes — identical interface to
fireLib, so the prediction systems above are substrate-agnostic.
"""

from repro.firelib.fuel_models import FuelModel, FuelParticle, catalog, get_model
from repro.firelib.moisture import Moisture
from repro.firelib.rothermel import FuelBed, SpreadResult, spread
from repro.firelib.ellipse import eccentricity_from_effective_wind, ros_at_azimuth
from repro.firelib.propagation import propagate
from repro.firelib.simulator import FireSimulator, SimulationResult
from repro.firelib.behavior import (
    FireBehavior,
    behavior_at_head,
    fireline_intensity,
    flame_length,
    scorch_height,
)

__all__ = [
    "FuelModel",
    "FuelParticle",
    "catalog",
    "get_model",
    "Moisture",
    "FuelBed",
    "SpreadResult",
    "spread",
    "eccentricity_from_effective_wind",
    "ros_at_azimuth",
    "propagate",
    "FireSimulator",
    "SimulationResult",
    "FireBehavior",
    "behavior_at_head",
    "fireline_intensity",
    "flame_length",
    "scorch_height",
]
