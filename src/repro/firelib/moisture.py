"""Fuel moisture bundle (the four Table I moisture parameters).

Table I expresses moistures in percent (1–60 dead, 30–300 live
herbaceous); the Rothermel equations consume fractions. :class:`Moisture`
is the validated, fraction-valued bundle used throughout
:mod:`repro.firelib`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScenarioError

__all__ = ["Moisture"]


@dataclass(frozen=True)
class Moisture:
    """Dead (1-h/10-h/100-h) and live herbaceous fuel moistures, fractions.

    Attributes map one-to-one onto the Table I parameters ``M1``,
    ``M10``, ``M100`` and ``Mherb``.
    """

    m1: float
    m10: float
    m100: float
    mherb: float

    def __post_init__(self) -> None:
        for name, lo, hi in (
            ("m1", 0.0, 1.0),
            ("m10", 0.0, 1.0),
            ("m100", 0.0, 1.0),
            ("mherb", 0.0, 4.0),
        ):
            v = getattr(self, name)
            if not (lo <= v <= hi):
                raise ScenarioError(
                    f"moisture fraction {name}={v} outside plausible range "
                    f"[{lo}, {hi}] (did you pass percent instead of fraction?)"
                )

    @classmethod
    def from_percent(
        cls, m1: float, m10: float, m100: float, mherb: float
    ) -> "Moisture":
        """Build from Table I percent values."""
        return cls(m1=m1 / 100.0, m10=m10 / 100.0, m100=m100 / 100.0, mherb=mherb / 100.0)

    def value_for(self, moisture_key: str) -> float:
        """Moisture fraction for a particle's ``moisture_key``."""
        try:
            return float(getattr(self, moisture_key))
        except AttributeError:
            raise ScenarioError(f"unknown moisture key {moisture_key!r}") from None
