"""Elliptical fire growth (Anderson 1983, as used by fireLib).

Under wind and/or slope, the fire perimeter is modelled as an ellipse
with the ignition point at the rear focus. The shape is summarised by a
single eccentricity derived from the *effective wind speed* (the
combined wind+slope push expressed as an equivalent wind). The spread
rate towards an arbitrary azimuth θ is then::

    R(θ) = R_max · (1 − ε) / (1 − ε·cos(θ − θ_max))

which equals ``R_max`` at the heading direction and
``R_max·(1−ε)/(1+ε)`` at the back of the fire.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "length_to_width_ratio",
    "eccentricity_from_effective_wind",
    "ros_at_azimuth",
    "backing_ros",
    "flanking_ros",
]

#: fireLib constant: LWR = 1 + 0.002840909 · U_eff (U_eff in ft/min).
_LWR_PER_FTMIN = 0.002840909

#: Cap on the length-to-width ratio; beyond this the ellipse degenerates
#: numerically (fireLib effectively saturates around hurricane winds).
_LWR_MAX = 25.0


def length_to_width_ratio(effective_wind_ftmin: np.ndarray | float) -> np.ndarray | float:
    """Length-to-width ratio of the fire ellipse for a given effective wind."""
    u = np.maximum(np.asarray(effective_wind_ftmin, dtype=np.float64), 0.0)
    lwr = np.minimum(1.0 + _LWR_PER_FTMIN * u, _LWR_MAX)
    return lwr if lwr.ndim else float(lwr)


def eccentricity_from_effective_wind(
    effective_wind_ftmin: np.ndarray | float,
) -> np.ndarray | float:
    """Eccentricity ε ∈ [0, 1) of the growth ellipse.

    Zero effective wind yields a circular fire (ε = 0).
    """
    lwr = np.asarray(length_to_width_ratio(effective_wind_ftmin), dtype=np.float64)
    ecc = np.sqrt(lwr * lwr - 1.0) / lwr
    return ecc if ecc.ndim else float(ecc)


def ros_at_azimuth(
    ros_max: np.ndarray | float,
    dir_max_deg: np.ndarray | float,
    eccentricity: np.ndarray | float,
    azimuth_deg: np.ndarray | float,
) -> np.ndarray | float:
    """Spread rate towards ``azimuth_deg`` given the heading description.

    All arguments broadcast; the result keeps the broadcast shape.
    A zero ``ros_max`` yields zero in every direction.
    """
    ros_max = np.asarray(ros_max, dtype=np.float64)
    ecc = np.asarray(eccentricity, dtype=np.float64)
    theta = np.radians(
        np.asarray(azimuth_deg, dtype=np.float64)
        - np.asarray(dir_max_deg, dtype=np.float64)
    )
    denom = 1.0 - ecc * np.cos(theta)
    # ε < 1 always, so denom >= 1 - ε > 0; guard anyway for ε→1 numerics
    denom = np.maximum(denom, 1e-12)
    ros = ros_max * (1.0 - ecc) / denom
    return ros if ros.ndim else float(ros)


def backing_ros(
    ros_max: np.ndarray | float, eccentricity: np.ndarray | float
) -> np.ndarray | float:
    """Spread rate directly against the heading (rear of the ellipse)."""
    ros_max = np.asarray(ros_max, dtype=np.float64)
    ecc = np.asarray(eccentricity, dtype=np.float64)
    ros = ros_max * (1.0 - ecc) / (1.0 + ecc)
    return ros if ros.ndim else float(ros)


def flanking_ros(
    ros_max: np.ndarray | float, eccentricity: np.ndarray | float
) -> np.ndarray | float:
    """Spread rate perpendicular to the heading."""
    ros_max = np.asarray(ros_max, dtype=np.float64)
    ecc = np.asarray(eccentricity, dtype=np.float64)
    ros = ros_max * (1.0 - ecc)
    return ros if ros.ndim else float(ros)
