"""Rothermel (1972) / Albini (1976) surface-fire spread rate.

This module reproduces the fireLib computation pipeline:

1. **Fuel-bed intermediates** (:class:`FuelBed`) — everything that
   depends only on the fuel model: characteristic surface-area-to-volume
   ratio, packing ratio, optimum reaction velocity, propagating flux
   ratio, and the wind/slope factor coefficients. Computed once per
   model and cached.
2. **Environment-dependent step** (:func:`spread`) — combine the bed
   with moistures, midflame wind and slope to produce the no-wind
   spread rate, the maximum spread rate and its direction, and the
   eccentricity of the elliptical growth shape.

The unit system is customary Rothermel (ft, min, lb, Btu) exactly as in
fireLib; callers convert from Table I units (mph wind, percent
moisture, metre cells) at the boundary.

Vectorisation: all heavy math is NumPy; slope/aspect may be per-cell
arrays and broadcast through the wind–slope vector combination, so a
heterogeneous-terrain simulation costs one vectorised pass per distinct
fuel model (≤ 13) rather than one Python call per cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import SimulationError
from repro.firelib.fuel_models import (
    EFFECTIVE_MINERAL,
    HEAT_CONTENT,
    PARTICLE_DENSITY,
    TOTAL_MINERAL,
    FuelModel,
    get_model,
)
from repro.firelib.moisture import Moisture
from repro.units import MPH_TO_FTMIN

__all__ = ["FuelBed", "SpreadResult", "spread", "MPH_TO_FTMIN"]

#: Smallest spread rate treated as nonzero, ft/min. Below this the fire
#: is considered unable to propagate (matches fireLib's ros smoothing).
ROS_EPSILON = 1e-9


@dataclass(frozen=True)
class FuelBed:
    """Moisture/wind/slope-independent intermediates for one fuel model.

    All attributes follow Albini (1976) notation; see the module
    docstring for provenance. Instances are immutable and cached per
    model code via :meth:`for_model`.
    """

    model: FuelModel
    sigma: float  # characteristic SAV, 1/ft
    beta: float  # packing ratio
    beta_ratio: float  # beta / beta_opt
    gamma: float  # reaction velocity, 1/min
    xi: float  # propagating flux ratio
    wind_b: float  # Rothermel B
    wind_k: float  # C * ratio^-E  (phi_w = wind_k * U^B)
    wind_e_inv: float  # 1/B, for effective-wind inversion
    slope_k: float  # 5.275 * beta^-0.3 (phi_s = slope_k * tan²φ)
    # per-particle arrays (parallel):
    p_load: np.ndarray
    p_sav: np.ndarray
    p_dead: np.ndarray  # bool
    p_f: np.ndarray  # area weight within its life category
    p_fcat: np.ndarray  # life-category weight f_dead or f_live per particle
    p_moisture_key: tuple[str, ...]
    wn_dead: float  # net dead load weighted, lb/ft²
    wn_live: float  # net live load weighted, lb/ft²
    fine_dead: float  # Σ_dead w0 exp(-138/sav)
    fine_live: float  # Σ_live w0 exp(-500/sav)
    rho_b: float  # bulk density, lb/ft³

    @classmethod
    @lru_cache(maxsize=32)
    def for_model(cls, code: int) -> "FuelBed":
        """Build (and cache) the intermediates for model ``code``."""
        return cls.from_fuel_model(get_model(code))

    @classmethod
    def from_fuel_model(cls, model: FuelModel) -> "FuelBed":
        """Compute the Albini intermediates for an arbitrary model."""
        parts = model.particles
        if not parts:
            raise SimulationError(f"fuel model {model.code} has no particles")
        load = np.array([p.load for p in parts])
        sav = np.array([p.sav for p in parts])
        dead = np.array([p.life == "dead" for p in parts])
        keys = tuple(p.moisture_key for p in parts)

        area = load * sav / PARTICLE_DENSITY
        a_dead = float(area[dead].sum())
        a_live = float(area[~dead].sum())
        a_total = a_dead + a_live
        if a_total <= 0:
            raise SimulationError(f"fuel model {model.code} has zero surface area")

        # particle weight within its life category
        f = np.zeros_like(area)
        if a_dead > 0:
            f[dead] = area[dead] / a_dead
        if a_live > 0:
            f[~dead] = area[~dead] / a_live
        f_dead_cat = a_dead / a_total
        f_live_cat = a_live / a_total
        fcat = np.where(dead, f_dead_cat, f_live_cat)

        # characteristic SAV of the whole bed
        sigma_dead = float((f[dead] * sav[dead]).sum()) if a_dead > 0 else 0.0
        sigma_live = float((f[~dead] * sav[~dead]).sum()) if a_live > 0 else 0.0
        sigma = f_dead_cat * sigma_dead + f_live_cat * sigma_live

        # packing
        rho_b = model.total_load / model.depth
        beta = rho_b / PARTICLE_DENSITY
        beta_opt = 3.348 * sigma**-0.8189
        ratio = beta / beta_opt

        # reaction velocity
        sigma15 = sigma**1.5
        gamma_max = sigma15 / (495.0 + 0.0594 * sigma15)
        a_exp = 133.0 * sigma**-0.7913
        gamma = gamma_max * ratio**a_exp * math.exp(a_exp * (1.0 - ratio))

        # propagating flux ratio
        xi = math.exp((0.792 + 0.681 * math.sqrt(sigma)) * (beta + 0.1)) / (
            192.0 + 0.2595 * sigma
        )

        # wind & slope coefficients
        c_coef = 7.47 * math.exp(-0.133 * sigma**0.55)
        b_coef = 0.02526 * sigma**0.54
        e_coef = 0.715 * math.exp(-3.59e-4 * sigma)
        wind_k = c_coef * ratio**-e_coef
        slope_k = 5.275 * beta**-0.3

        # net loads per life category (mineral-damped)
        wn = load * (1.0 - TOTAL_MINERAL)
        wn_dead = float((f[dead] * wn[dead]).sum()) if a_dead > 0 else 0.0
        wn_live = float((f[~dead] * wn[~dead]).sum()) if a_live > 0 else 0.0

        # fine-fuel factors for the live extinction moisture
        fine_dead = float((load[dead] * np.exp(-138.0 / sav[dead])).sum())
        fine_live = float((load[~dead] * np.exp(-500.0 / sav[~dead])).sum())

        return cls(
            model=model,
            sigma=sigma,
            beta=beta,
            beta_ratio=ratio,
            gamma=gamma,
            xi=xi,
            wind_b=b_coef,
            wind_k=wind_k,
            wind_e_inv=1.0 / b_coef,
            slope_k=slope_k,
            p_load=load,
            p_sav=sav,
            p_dead=dead,
            p_f=f,
            p_fcat=fcat,
            p_moisture_key=keys,
            wn_dead=wn_dead,
            wn_live=wn_live,
            fine_dead=fine_dead,
            fine_live=fine_live,
            rho_b=rho_b,
        )

    # ------------------------------------------------------------------
    def no_wind_rate(self, moisture: Moisture) -> float:
        """Zero-wind zero-slope spread rate R₀, ft/min.

        Returns 0.0 when the bed cannot sustain combustion (moisture at
        or above extinction in every category).
        """
        m = np.array([moisture.value_for(k) for k in self.p_moisture_key])
        dead = self.p_dead

        # category moistures
        m_dead = float((self.p_f[dead] * m[dead]).sum()) if dead.any() else 0.0
        has_live = bool((~dead).any())
        m_live = float((self.p_f[~dead] * m[~dead]).sum()) if has_live else 0.0

        # extinction moistures
        mext_dead = self.model.mext_dead
        if has_live and self.fine_live > 0:
            fdmois = (
                float(
                    (
                        self.p_load[dead]
                        * np.exp(-138.0 / self.p_sav[dead])
                        * m[dead]
                    ).sum()
                )
                / self.fine_dead
                if self.fine_dead > 0
                else 0.0
            )
            w_ratio = self.fine_dead / self.fine_live
            mext_live = max(
                2.9 * w_ratio * (1.0 - fdmois / mext_dead) - 0.226, mext_dead
            )
        else:
            mext_live = mext_dead

        def eta_m(mf: float, mx: float) -> float:
            rm = mf / mx if mx > 0 else 1.0
            if rm >= 1.0:
                return 0.0  # at/above extinction: analytically zero
            return max(0.0, 1.0 - 2.59 * rm + 5.11 * rm**2 - 3.52 * rm**3)

        eta_dead = eta_m(m_dead, mext_dead)
        eta_live = eta_m(m_live, mext_live) if has_live else 0.0
        eta_s = 0.174 * EFFECTIVE_MINERAL**-0.19

        reaction_intensity = (
            self.gamma
            * HEAT_CONTENT
            * (self.wn_dead * eta_dead + self.wn_live * eta_live)
            * eta_s
        )  # Btu/ft²/min
        if reaction_intensity <= 0:
            return 0.0

        # heat sink: rho_b Σ f_cat f_i ε_i Q_ig,i
        eps = np.exp(-138.0 / self.p_sav)
        qig = 250.0 + 1116.0 * m
        heat_sink = self.rho_b * float((self.p_fcat * self.p_f * eps * qig).sum())
        if heat_sink <= 0:
            return 0.0

        return reaction_intensity * self.xi / heat_sink

    def phi_wind(self, wind_ftmin: float) -> float:
        """Wind factor φ_w for a midflame wind speed in ft/min."""
        if wind_ftmin <= 0:
            return 0.0
        return self.wind_k * wind_ftmin**self.wind_b

    def phi_slope(self, slope_deg: np.ndarray | float) -> np.ndarray | float:
        """Slope factor φ_s for slope(s) in degrees."""
        tan = np.tan(np.radians(slope_deg))
        return self.slope_k * tan * tan

    def effective_wind(self, phi_ew: np.ndarray | float) -> np.ndarray | float:
        """Invert the wind-factor relation: φ_ew → equivalent wind, ft/min."""
        phi = np.maximum(phi_ew, 0.0)
        return (phi / self.wind_k) ** self.wind_e_inv


@dataclass(frozen=True)
class SpreadResult:
    """Directional spread description at one or many cells.

    Attributes
    ----------
    ros_no_wind:
        R₀, ft/min (scalar).
    ros_max:
        Maximum spread rate, ft/min (scalar or per-cell array).
    dir_max_deg:
        Compass azimuth of maximum spread, degrees clockwise from
        North (same shape as ``ros_max``).
    eccentricity:
        Eccentricity of the elliptical growth shape in [0, 1).
    effective_wind_ftmin:
        The combined wind+slope equivalent wind speed, ft/min.
    """

    ros_no_wind: float
    ros_max: np.ndarray | float
    dir_max_deg: np.ndarray | float
    eccentricity: np.ndarray | float
    effective_wind_ftmin: np.ndarray | float

    def is_spreading(self) -> bool:
        """Whether any cell has a positive maximum spread rate."""
        return bool(np.any(np.asarray(self.ros_max) > ROS_EPSILON))


def spread(
    model_code: int,
    moisture: Moisture,
    wind_speed_mph: float,
    wind_dir_deg: float,
    slope_deg: np.ndarray | float,
    aspect_deg: np.ndarray | float,
) -> SpreadResult:
    """Full Rothermel spread computation for one fuel model.

    Parameters
    ----------
    model_code:
        NFFL fuel model, 1–13 (Table I ``Model``).
    moisture:
        Fuel moistures (fractions).
    wind_speed_mph:
        Midflame wind speed, miles/hour (Table I ``WindSpd``).
    wind_dir_deg:
        Compass azimuth **toward which** the wind blows, degrees
        clockwise from North (Table I ``WindDir``); a pure-wind fire
        heads in this direction.
    slope_deg, aspect_deg:
        Terrain slope (degrees from horizontal) and aspect (compass
        azimuth the surface faces, i.e. the downslope direction).
        Scalars or per-cell arrays (broadcast together).

    Returns
    -------
    SpreadResult
        With per-cell arrays when slope/aspect were arrays.
    """
    bed = FuelBed.for_model(model_code)
    r0 = bed.no_wind_rate(moisture)

    slope_deg = np.asarray(slope_deg, dtype=np.float64)
    aspect_deg = np.asarray(aspect_deg, dtype=np.float64)
    slope_deg, aspect_deg = np.broadcast_arrays(slope_deg, aspect_deg)
    scalar_terrain = slope_deg.ndim == 0

    if r0 <= ROS_EPSILON:
        zeros = np.zeros_like(slope_deg, dtype=np.float64)
        z = 0.0 if scalar_terrain else zeros
        return SpreadResult(
            ros_no_wind=0.0,
            ros_max=z,
            dir_max_deg=z,
            eccentricity=z,
            effective_wind_ftmin=z,
        )

    wind_ftmin = max(0.0, wind_speed_mph) * MPH_TO_FTMIN
    phi_w = bed.phi_wind(wind_ftmin)
    phi_s = bed.phi_slope(slope_deg)

    # Vector combination of wind and slope influence (fireLib scheme).
    upslope = np.mod(aspect_deg + 180.0, 360.0)
    split = np.radians(np.mod(wind_dir_deg - upslope, 360.0))
    slp_rate = r0 * phi_s
    wnd_rate = r0 * phi_w
    x = slp_rate + wnd_rate * np.cos(split)
    y = wnd_rate * np.sin(split)
    rv = np.hypot(x, y)

    ros_max = r0 + rv
    phi_ew = rv / r0
    dir_max = np.mod(upslope + np.degrees(np.arctan2(y, x)), 360.0)
    # where there is no wind/slope push, the fire has no preferred heading
    dir_max = np.where(rv > ROS_EPSILON, dir_max, 0.0)

    eff_wind = bed.effective_wind(phi_ew)
    from repro.firelib.ellipse import eccentricity_from_effective_wind

    ecc = eccentricity_from_effective_wind(eff_wind)
    ecc = np.where(rv > ROS_EPSILON, ecc, 0.0)

    if scalar_terrain:
        return SpreadResult(
            ros_no_wind=float(r0),
            ros_max=float(ros_max),
            dir_max_deg=float(dir_max),
            eccentricity=float(ecc),
            effective_wind_ftmin=float(eff_wind),
        )
    return SpreadResult(
        ros_no_wind=float(r0),
        ros_max=ros_max,
        dir_max_deg=dir_max,
        eccentricity=ecc,
        effective_wind_ftmin=np.asarray(eff_wind),
    )
