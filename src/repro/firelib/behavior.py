"""Derived fire-behaviour outputs (the rest of the fireLib API surface).

fireLib reports, besides the spread rate, the classic Byram (1959)
behaviour quantities used by fire managers. They are not needed by the
ESS pipeline itself but complete the simulator substrate for downstream
users:

* **reaction intensity** I_R (Btu/ft²/min) — already computed inside
  the Rothermel kernel; re-exposed here per fuel/moisture.
* **heat per unit area** HPA = I_R · t_r, with residence time
  t_r = 384/σ (Anderson 1969), Btu/ft².
* **fireline intensity** I_B = HPA · R / 60 (Btu/ft/s).
* **flame length** L = 0.45 · I_B^0.46 (ft, Byram 1959).
* **scorch height** — Van Wagner (1973) in the fireLib form; see
  :func:`scorch_height` for the exact formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.firelib.moisture import Moisture
from repro.firelib.rothermel import FuelBed, SpreadResult

__all__ = [
    "FireBehavior",
    "reaction_intensity",
    "residence_time",
    "heat_per_unit_area",
    "fireline_intensity",
    "flame_length",
    "scorch_height",
    "behavior_at_head",
]


def reaction_intensity(model_code: int, moisture: Moisture) -> float:
    """Rothermel reaction intensity I_R, Btu/ft²/min.

    Recomputed from the same intermediates the spread kernel uses (the
    kernel folds I_R into R₀; this exposes it separately).
    """
    bed = FuelBed.for_model(model_code)
    r0 = bed.no_wind_rate(moisture)
    if r0 <= 0:
        return 0.0
    # R0 = I_R ξ / heat_sink → invert using the same moisture-dependent
    # heat sink the kernel built.
    m = np.array([moisture.value_for(k) for k in bed.p_moisture_key])
    eps = np.exp(-138.0 / bed.p_sav)
    qig = 250.0 + 1116.0 * m
    heat_sink = bed.rho_b * float((bed.p_fcat * bed.p_f * eps * qig).sum())
    return r0 * heat_sink / bed.xi


def residence_time(model_code: int) -> float:
    """Anderson (1969) flame residence time t_r = 384/σ, minutes."""
    bed = FuelBed.for_model(model_code)
    return 384.0 / bed.sigma


def heat_per_unit_area(model_code: int, moisture: Moisture) -> float:
    """HPA = I_R · t_r, Btu/ft²."""
    return reaction_intensity(model_code, moisture) * residence_time(model_code)


def fireline_intensity(
    hpa_btu_ft2: float, ros_ftmin: np.ndarray | float
) -> np.ndarray | float:
    """Byram fireline intensity I_B = HPA·R/60, Btu/ft/s."""
    if hpa_btu_ft2 < 0:
        raise SimulationError(f"HPA must be non-negative, got {hpa_btu_ft2}")
    ros = np.asarray(ros_ftmin, dtype=np.float64)
    out = hpa_btu_ft2 * ros / 60.0
    return out if out.ndim else float(out)


def flame_length(intensity_btu_ft_s: np.ndarray | float) -> np.ndarray | float:
    """Byram flame length L = 0.45·I_B^0.46, ft."""
    i = np.maximum(np.asarray(intensity_btu_ft_s, dtype=np.float64), 0.0)
    out = 0.45 * i**0.46
    return out if out.ndim else float(out)


def scorch_height(
    intensity_btu_ft_s: np.ndarray | float,
    wind_speed_mph: float = 0.0,
    air_temp_f: float = 77.0,
) -> np.ndarray | float:
    """Van Wagner (1973) crown-scorch height, ft (fireLib formulation).

        h_s = 63 / (140 − T) · I_B^(7/6) / (I_B + 0.00106·U³)^(1/2)

    with I_B in Btu/ft/s, U the windspeed in mi/h and T the ambient air
    temperature in °F.
    """
    if not (air_temp_f < 140.0):
        raise SimulationError(
            f"air temperature must be below lethal 140°F, got {air_temp_f}"
        )
    i = np.maximum(np.asarray(intensity_btu_ft_s, dtype=np.float64), 0.0)
    u = max(wind_speed_mph, 0.0)
    denom = np.sqrt(i + 0.00106 * u**3)
    with np.errstate(divide="ignore", invalid="ignore"):
        hs = np.where(denom > 0, 63.0 / (140.0 - air_temp_f) * i ** (7.0 / 6.0) / denom, 0.0)
    return hs if hs.ndim else float(hs)


@dataclass(frozen=True)
class FireBehavior:
    """Bundle of derived behaviour quantities at the head of the fire."""

    reaction_intensity_btu_ft2_min: float
    residence_time_min: float
    heat_per_unit_area_btu_ft2: float
    fireline_intensity_btu_ft_s: float
    flame_length_ft: float
    scorch_height_ft: float


def behavior_at_head(
    model_code: int,
    moisture: Moisture,
    spread_result: SpreadResult,
    wind_speed_mph: float = 0.0,
    air_temp_f: float = 77.0,
) -> FireBehavior:
    """All derived quantities for a head-fire spread result."""
    ir = reaction_intensity(model_code, moisture)
    tr = residence_time(model_code)
    hpa = ir * tr
    ros = float(np.max(np.asarray(spread_result.ros_max)))
    ib = float(fireline_intensity(hpa, ros))
    return FireBehavior(
        reaction_intensity_btu_ft2_min=ir,
        residence_time_min=tr,
        heat_per_unit_area_btu_ft2=hpa,
        fireline_intensity_btu_ft_s=ib,
        flame_length_ft=float(flame_length(ib)),
        scorch_height_ft=float(scorch_height(ib, wind_speed_mph, air_temp_f)),
    )
