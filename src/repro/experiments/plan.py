"""Declarative experiment plans: systems × cases × seeds × backends.

The paper's deliverable is a *grid* — every prediction system run on
every case over repeated seeds — yet ad-hoc loops hide the grid inside
code. An :class:`ExperimentPlan` makes it a value: a JSON-serializable
description of which systems run on which cases under which seeds,
engine backends and search budgets. Plans are shareable artifacts
(``save_json`` / ``load_json``), and together with the per-run seed
recorded in every :mod:`~repro.experiments.store` record they make any
archived result reproducible without the code that produced it.

:meth:`ExperimentPlan.groups` is the scheduling contract the runner
relies on: runs are grouped by ``(case, backend)``, because every run
in such a group evaluates genomes against the *same* step contexts —
the unit that can share one :class:`~repro.engine.EngineSession` (and
its cross-system result cache) — while distinct groups are fully
independent and can execute in separate shard processes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping

from repro.engine import backend_names
from repro.errors import ReproError
from repro.systems.factory import SYSTEM_NAMES, build_system
from repro.workloads.cases import CASE_BUILDERS
from repro.workloads.synthetic import ReferenceFire

__all__ = ["BudgetSpec", "CaseSpec", "ExperimentPlan", "RunKey"]


@dataclass(frozen=True)
class CaseSpec:
    """One benchmark case of a plan: builder name + shape knobs."""

    name: str
    size: int = 44
    steps: int = 3

    def __post_init__(self) -> None:
        if self.name not in CASE_BUILDERS:
            raise ReproError(
                f"unknown case {self.name!r}; choose from "
                f"{sorted(CASE_BUILDERS)}"
            )
        if self.size < 8:
            raise ReproError(f"case size must be >= 8, got {self.size}")
        if self.steps < 2:
            # make_reference_fire requires >= 2 steps; failing here keeps
            # the error at plan validation instead of mid-run
            raise ReproError(f"case steps must be >= 2, got {self.steps}")

    def build(self) -> ReferenceFire:
        """Materialise the reference fire this spec describes."""
        return CASE_BUILDERS[self.name](size=self.size, n_steps=self.steps)

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {"name": self.name, "size": self.size, "steps": self.steps}

    @classmethod
    def from_dict(cls, data: dict) -> "CaseSpec":
        """Inverse of :meth:`to_dict` (bare strings name a default case)."""
        if isinstance(data, str):
            return cls(name=data)
        return cls(
            name=str(data["name"]),
            size=int(data.get("size", 44)),
            steps=int(data.get("steps", 3)),
        )


@dataclass(frozen=True)
class BudgetSpec:
    """Search/engine budget applied to every run of a plan."""

    population: int = 16
    generations: int = 6
    n_workers: int = 1
    tuning: str = "both"
    cache_size: int = 0
    session_cache_size: int = 0

    def __post_init__(self) -> None:
        if self.population < 4:
            raise ReproError(f"population must be >= 4, got {self.population}")
        if self.generations < 1:
            raise ReproError(
                f"generations must be >= 1, got {self.generations}"
            )
        if self.n_workers < 1:
            raise ReproError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.tuning not in ("none", "restart", "iqr", "both"):
            # ESSIMDEConfig's modes, checked here so a typo fails at
            # plan validation instead of mid-sweep at system build time
            raise ReproError(
                f"unknown tuning mode {self.tuning!r}; choose from "
                "('none', 'restart', 'iqr', 'both')"
            )
        if self.cache_size < 0 or self.session_cache_size < 0:
            raise ReproError("cache sizes must be >= 0")

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "population": self.population,
            "generations": self.generations,
            "n_workers": self.n_workers,
            "tuning": self.tuning,
            "cache_size": self.cache_size,
            "session_cache_size": self.session_cache_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BudgetSpec":
        """Inverse of :meth:`to_dict` (missing keys take defaults)."""
        defaults = cls()
        return cls(
            population=int(data.get("population", defaults.population)),
            generations=int(data.get("generations", defaults.generations)),
            n_workers=int(data.get("n_workers", defaults.n_workers)),
            tuning=str(data.get("tuning", defaults.tuning)),
            cache_size=int(data.get("cache_size", defaults.cache_size)),
            session_cache_size=int(
                data.get("session_cache_size", defaults.session_cache_size)
            ),
        )


@dataclass(frozen=True)
class RunKey:
    """Identity of one run: the resume/dedup key of the results store."""

    system: str
    case: str
    seed: int
    backend: str

    def as_tuple(self) -> tuple[str, str, int, str]:
        """The hashable form used against ``ResultsStore.completed()``."""
        return (self.system, self.case, self.seed, self.backend)


@dataclass(frozen=True)
class ExperimentPlan:
    """A full experiment grid as one shareable, validated value.

    Parameters
    ----------
    name:
        Plan label, recorded in every result record.
    systems:
        Lineage system names (see
        :data:`repro.systems.factory.SYSTEM_NAMES`).
    cases:
        Benchmark cases; plain strings are accepted and coerced to
        default-shaped :class:`CaseSpec` entries.
    seeds:
        Root RNG seed per repeat; a run is reproducible from its
        ``(plan, seed)`` alone.
    backends:
        Engine backends to cross with the grid.
    budget:
        Search/engine budget shared by every run.
    budgets:
        Optional per-system *search budget* overrides for
        unmatched-budget studies: ``{system: {"population": ...,
        "generations": ..., "tuning": ...}}`` (partial dicts or full
        :class:`BudgetSpec` values), applied on top of ``budget``.
        Engine-session knobs (``n_workers``, ``cache_size``,
        ``session_cache_size``) cannot be overridden per system — every
        system of a ``(case, backend)`` group shares one engine
        session, whose shape is the plan-level budget's. Overrides
        participate in :meth:`config_digest`, so resuming a store under
        a rebudgeted plan is refused.
    """

    name: str = "experiment"
    systems: tuple[str, ...] = ("ess", "ess-ns")
    cases: tuple[CaseSpec, ...] = (CaseSpec("grassland"),)
    seeds: tuple[int, ...] = (0,)
    backends: tuple[str, ...] = ("reference",)
    budget: BudgetSpec = field(default_factory=BudgetSpec)
    budgets: Mapping[str, BudgetSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "systems", tuple(self.systems))
        object.__setattr__(
            self,
            "cases",
            tuple(
                c if isinstance(c, CaseSpec) else CaseSpec.from_dict(c)
                for c in self.cases
            ),
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "backends", tuple(self.backends))
        if not self.systems:
            raise ReproError("plan needs at least one system")
        if not self.cases:
            raise ReproError("plan needs at least one case")
        if not self.seeds:
            raise ReproError("plan needs at least one seed")
        if not self.backends:
            raise ReproError("plan needs at least one backend")
        for system in self.systems:
            if system not in SYSTEM_NAMES:
                raise ReproError(
                    f"unknown system {system!r}; choose from {SYSTEM_NAMES}"
                )
        for backend in self.backends:
            if backend not in backend_names():
                raise ReproError(
                    f"unknown engine backend {backend!r}; choose from "
                    f"{backend_names()}"
                )
        if len(set(self.systems)) != len(self.systems):
            raise ReproError("duplicate systems in plan")
        if len({c.name for c in self.cases}) != len(self.cases):
            raise ReproError("duplicate cases in plan")
        if len(set(self.seeds)) != len(self.seeds):
            raise ReproError("duplicate seeds in plan")
        if len(set(self.backends)) != len(self.backends):
            raise ReproError("duplicate backends in plan")
        object.__setattr__(
            self, "budgets", self._normalize_budgets(self.budgets)
        )

    def _normalize_budgets(self, budgets) -> dict[str, BudgetSpec]:
        """Validate and coerce per-system overrides to full specs."""
        out: dict[str, BudgetSpec] = {}
        for system, override in dict(budgets or {}).items():
            if system not in self.systems:
                raise ReproError(
                    f"budget override for {system!r}, which is not one of "
                    f"the plan's systems {self.systems}"
                )
            if isinstance(override, BudgetSpec):
                spec = override
            elif isinstance(override, Mapping):
                known = set(BudgetSpec().to_dict())
                unknown = set(override) - known
                if unknown:
                    raise ReproError(
                        f"unknown budget override keys for {system!r}: "
                        f"{sorted(unknown)}; choose from {sorted(known)}"
                    )
                spec = BudgetSpec.from_dict(
                    {**self.budget.to_dict(), **dict(override)}
                )
            else:
                raise ReproError(
                    f"budget override for {system!r} must be a mapping or "
                    f"a BudgetSpec, got {type(override).__name__}"
                )
            for knob in ("n_workers", "cache_size", "session_cache_size"):
                if getattr(spec, knob) != getattr(self.budget, knob):
                    raise ReproError(
                        f"budget override for {system!r} changes {knob!r} — "
                        "engine-session knobs are shared by every system "
                        "of a (case, backend) group and can only be set "
                        "on the plan-level budget"
                    )
            out[system] = spec
        return out

    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Total grid size (systems × cases × seeds × backends)."""
        return (
            len(self.systems)
            * len(self.cases)
            * len(self.seeds)
            * len(self.backends)
        )

    def case(self, name: str) -> CaseSpec:
        """Look up one case spec by name."""
        for c in self.cases:
            if c.name == name:
                return c
        raise ReproError(f"plan has no case {name!r}")

    def runs(self) -> Iterator[RunKey]:
        """Every run of the grid, in group order (case, backend major)."""
        for _, keys in self.groups():
            yield from keys

    def groups(self) -> list[tuple[tuple[CaseSpec, str], list[RunKey]]]:
        """Runs grouped by ``(case, backend)`` — the session-sharing unit.

        Every run inside a group replays the same step contexts on the
        same backend, so one shared :class:`~repro.engine.EngineSession`
        serves the whole group and cross-system repeats hit its cache.
        Groups touch disjoint run keys, so they are independent — the
        runner may execute them in separate shard processes.
        """
        out: list[tuple[tuple[CaseSpec, str], list[RunKey]]] = []
        for case in self.cases:
            for backend in self.backends:
                keys = [
                    RunKey(system, case.name, seed, backend)
                    for system in self.systems
                    for seed in self.seeds
                ]
                out.append(((case, backend), keys))
        return out

    def budget_for(self, system: str) -> BudgetSpec:
        """The effective search budget of one system (override or plan)."""
        return self.budgets.get(system, self.budget)

    def build_system(self, name: str, backend: str):
        """Construct one of the plan's systems under its effective budget."""
        b = self.budget_for(name)
        return build_system(
            name,
            population=b.population,
            generations=b.generations,
            n_workers=b.n_workers,
            tuning=b.tuning,
            backend=backend,
            cache_size=b.cache_size,
            session_cache_size=b.session_cache_size,
        )

    def with_seeds(self, seeds) -> "ExperimentPlan":
        """Copy of the plan over a different seed set."""
        return replace(self, seeds=tuple(int(s) for s in seeds))

    def config_digest(self, case: CaseSpec, system: str | None = None) -> str:
        """Digest of everything beyond the run key that shapes a result.

        A :class:`RunKey` names a cell ``(system, case, seed,
        backend)``; the digest covers the rest — the case's grid
        size/step count and the system's *effective* search budget
        (per-system overrides included, so a rebudgeted resume is
        refused) — so a results store can refuse to resume cells that
        were recorded under a different configuration instead of
        silently serving stale results. Without a ``system`` the
        plan-level budget is digested, which matches every system of a
        plan without overrides.
        """
        budget = self.budget if system is None else self.budget_for(system)
        payload = json.dumps(
            {"case": case.to_dict(), "budget": budget.to_dict()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation (the shareable plan artifact)."""
        payload = {
            "name": self.name,
            "systems": list(self.systems),
            "cases": [c.to_dict() for c in self.cases],
            "seeds": list(self.seeds),
            "backends": list(self.backends),
            "budget": self.budget.to_dict(),
        }
        if self.budgets:
            # emitted only when present, so pre-override plan artifacts
            # stay byte-identical
            payload["budgets"] = {
                system: spec.to_dict()
                for system, spec in self.budgets.items()
            }
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentPlan":
        """Inverse of :meth:`to_dict`, with full validation."""
        try:
            return cls(
                name=str(data.get("name", "experiment")),
                systems=tuple(str(s) for s in data["systems"]),
                cases=tuple(CaseSpec.from_dict(c) for c in data["cases"]),
                seeds=tuple(int(s) for s in data["seeds"]),
                backends=tuple(
                    str(b) for b in data.get("backends", ("reference",))
                ),
                budget=BudgetSpec.from_dict(data.get("budget", {})),
                budgets=dict(data.get("budgets", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed experiment plan: {exc}") from exc

    def save_json(self, path: str | os.PathLike) -> None:
        """Write the plan to ``path`` (sorted keys: byte-stable artifact)."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load_json(cls, path: str | os.PathLike) -> "ExperimentPlan":
        """Read a plan previously written by :meth:`save_json`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
