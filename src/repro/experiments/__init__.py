"""Experiment orchestration: declarative plans, shared sessions, streams.

The layer between the CLI and the prediction systems. A declarative
:class:`ExperimentPlan` (systems × cases × seeds × backends × budget,
JSON-shareable) is executed by an :class:`ExperimentRunner` that groups
runs by ``(case, backend)`` and drives each group through **one shared**
:class:`~repro.engine.EngineSession` — cross-system repeats of the same
step context hit the shared cache — while streaming one record per
completed run into a crash-safe :class:`ResultsStore` (JSONL; re-running
the same plan resumes by skipping recorded cells). Execution's currency
is the sliceable :class:`WorkUnit` — a group plus an explicit cell
subset (:mod:`repro.experiments.work`); *where* the pending units
execute is a pluggable :mod:`repro.distributed` executor policy:
inline, local shard processes, or a TCP worker fleet with cell-level
leasing and within-group work stealing — resume stays the store's
run-key contract under all of them.

See :mod:`repro.experiments.plan`, :mod:`repro.experiments.runner`,
:mod:`repro.experiments.work`, :mod:`repro.experiments.store` and
:mod:`repro.distributed` for the pieces.
"""

from repro.experiments.costs import UnitCostModel
from repro.experiments.plan import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    RunKey,
)
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.store import ResultsStore, record_key
from repro.experiments.work import WorkSet, WorkUnit

__all__ = [
    "BudgetSpec",
    "CaseSpec",
    "ExperimentPlan",
    "RunKey",
    "ExperimentResult",
    "ExperimentRunner",
    "ResultsStore",
    "UnitCostModel",
    "WorkSet",
    "WorkUnit",
    "record_key",
]
