"""Predictive unit cost model: what will this WorkUnit cost to run?

Scheduling a :class:`~repro.experiments.work.WorkUnit` well needs a
*prediction* of its runtime before anyone has run it. All cells of a
unit share one ``(case, backend)`` kernel context (the group), so the
model estimates a unit as ``cells × per-cell rate`` with one
EMA-smoothed per-cell rate per kernel key:

* **measured** rates come from completed units — the coordinator folds
  every ``(kernel, cells, seconds)`` cost report a worker attaches to
  its ``complete``/heartbeat messages, so the model is fleet-wide, not
  per-process;
* before a kernel has a sample, the estimate falls back to an
  **engine-derived prior**: workers also ship
  :meth:`~repro.engine.backends.KernelCostModel.snapshot` rates
  (seconds per engine work unit), which — multiplied by a per-kernel
  ``prior_work`` magnitude derived from the plan's budget — give a
  relative ordering across groups of different shapes;
* with neither, the mean of the measured rates of *other* kernels, and
  finally a fixed default, so an estimate always exists.

The model is plain serializable state (:meth:`to_dict` /
:meth:`from_dict`): two schedulers built from identical snapshots make
identical decisions, which is what makes cost-aware splitting testable
for determinism. Nothing here touches results — cost estimates decide
*where and in what chunks* cells run, never what they record.

Prediction quality is itself observable: :func:`record_residual` folds
each completed unit's observed-vs-predicted ratio into the
``repro_cost_residual_ratio`` histogram (labelled by kernel) and emits
a ``slow_unit`` trace event when a unit blows past its prediction —
so a drifting or mis-seeded model shows up on ``/metrics`` instead of
silently degrading the schedule.
"""

from __future__ import annotations

import json
import logging
import os
import time
from typing import Mapping

from repro.errors import ReproError

__all__ = [
    "DEFAULT_SLOW_UNIT_FACTOR",
    "RESIDUAL_BUCKETS",
    "RESIDUAL_METRIC",
    "UnitCostModel",
    "load_cost_model",
    "plan_cost_model",
    "record_residual",
    "save_cost_model",
    "seed_plan_priors",
]

log = logging.getLogger("repro.experiments.costs")

#: Histogram of observed/predicted unit seconds, labelled by kernel.
RESIDUAL_METRIC = "repro_cost_residual_ratio"

#: Ratio-oriented bounds: 1.0 means a perfect prediction, the low end
#: catches over-predictions, the high end runaway under-predictions.
RESIDUAL_BUCKETS: tuple[float, ...] = (
    0.1,
    0.25,
    0.5,
    0.75,
    1.0,
    1.5,
    2.0,
    3.0,
    5.0,
    10.0,
)

#: A unit slower than ``factor × predicted`` earns a ``slow_unit``
#: trace event (configurable via ``--slow-unit-factor``).
DEFAULT_SLOW_UNIT_FACTOR = 3.0


class UnitCostModel:
    """EMA per-cell cost rates per kernel key, with layered fallbacks.

    Parameters
    ----------
    alpha:
        EMA smoothing factor for measured per-cell rates (and folded
        engine rates): ``rate += alpha * (sample - rate)``.
    default_rate:
        Per-cell seconds assumed when nothing at all is known.
    default_engine_rate:
        Seconds per engine work unit assumed when priors exist but no
        engine kernel rate has been folded yet.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        default_rate: float = 1e-3,
        default_engine_rate: float = 1e-8,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError(f"EMA alpha must be in (0, 1], got {alpha}")
        if default_rate <= 0 or default_engine_rate <= 0:
            raise ReproError("default cost rates must be positive")
        self.alpha = float(alpha)
        self.default_rate = float(default_rate)
        self.default_engine_rate = float(default_engine_rate)
        #: measured per-cell seconds, EMA per kernel key
        self.rates: dict[str, float] = {}
        #: number of measured unit timings folded per kernel key
        self.samples: dict[str, int] = {}
        #: folded engine kernel rates (seconds per engine work unit)
        self.engine: dict[str, float] = {}
        #: per-kernel prior work magnitude (engine work units per cell)
        self.prior_work: dict[str, float] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def kernel_key(case_name: str, backend: str) -> str:
        """The model's kernel identity of a ``(case, backend)`` group."""
        return f"{case_name}:{backend}"

    def set_prior_work(self, kernel: str, work: float) -> None:
        """Seed a kernel's pre-measurement work magnitude (per cell)."""
        if work <= 0:
            raise ReproError(f"prior work must be positive, got {work}")
        self.prior_work[str(kernel)] = float(work)

    # ------------------------------------------------------------------
    def observe(self, kernel: str, cells: int, seconds: float) -> None:
        """Fold one measured unit timing into the kernel's rate EMA."""
        if cells <= 0 or seconds <= 0.0:
            return
        rate = float(seconds) / int(cells)
        prev = self.rates.get(kernel)
        self.rates[kernel] = (
            rate if prev is None else prev + self.alpha * (rate - prev)
        )
        self.samples[kernel] = self.samples.get(kernel, 0) + 1

    def observe_lower_bound(
        self, kernel: str, cells: int, seconds: float
    ) -> None:
        """Fold an *in-flight* cost report (heartbeat of a running unit).

        The elapsed seconds of an unfinished unit bound its true cost
        from below, so only estimate-*raising* reports update the EMA —
        a unit running longer than predicted teaches the model before it
        even completes, while a half-done unit never drags rates down.
        """
        if cells <= 0 or seconds <= 0.0:
            return
        if float(seconds) / int(cells) > self.rate(kernel):
            self.observe(kernel, cells, seconds)

    def fold_engine(self, snapshot) -> None:
        """Fold a worker-shipped :class:`KernelCostModel` snapshot.

        ``snapshot`` maps engine kernel names to measured seconds per
        engine work unit; malformed payloads (wire input) are ignored.
        """
        if not isinstance(snapshot, Mapping):
            return
        for kernel, rate in snapshot.items():
            try:
                rate = float(rate)
            except (TypeError, ValueError):
                continue
            if rate <= 0.0:
                continue
            prev = self.engine.get(str(kernel))
            self.engine[str(kernel)] = (
                rate if prev is None else prev + self.alpha * (rate - prev)
            )

    # ------------------------------------------------------------------
    def rate(self, kernel: str) -> float:
        """Per-cell seconds for ``kernel``: measured, else prior, else
        the mean measured rate, else the default — never zero."""
        measured = self.rates.get(kernel)
        if measured is not None:
            return measured
        prior = self.prior_work.get(kernel)
        if prior is not None:
            engine_rate = (
                sum(self.engine.values()) / len(self.engine)
                if self.engine
                else self.default_engine_rate
            )
            return prior * engine_rate
        if self.rates:
            return sum(self.rates.values()) / len(self.rates)
        return self.default_rate

    def estimate(self, kernel: str, cells: int) -> float:
        """Predicted seconds for ``cells`` cells of ``kernel`` work."""
        return max(int(cells), 0) * self.rate(kernel)

    def min_cells_for(
        self, kernel: str, target_seconds: float, floor: int = 1
    ) -> int:
        """Cells of ``kernel`` work amounting to ``target_seconds``.

        The adaptive ``min_unit_cells``: lease sizes chase a wall-clock
        target instead of a fixed cell count, so a floor tuned for one
        workload does not produce absurd unit sizes on another. Never
        below ``floor`` (the operator's configured constant) and never
        below one cell.
        """
        floor = max(int(floor), 1)
        rate = self.rate(kernel)
        if target_seconds <= 0.0 or rate <= 0.0:
            return floor
        return max(int(target_seconds / rate), floor)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Stable JSON form (status payloads, determinism tests)."""
        return {
            "alpha": self.alpha,
            "default_rate": self.default_rate,
            "default_engine_rate": self.default_engine_rate,
            "rates": dict(sorted(self.rates.items())),
            "samples": dict(sorted(self.samples.items())),
            "engine": dict(sorted(self.engine.items())),
            "prior_work": dict(sorted(self.prior_work.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnitCostModel":
        """Inverse of :meth:`to_dict`, with validation."""
        try:
            model = cls(
                alpha=float(data.get("alpha", 0.3)),
                default_rate=float(data.get("default_rate", 1e-3)),
                default_engine_rate=float(
                    data.get("default_engine_rate", 1e-8)
                ),
            )
            model.rates = {
                str(k): float(v)
                for k, v in dict(data.get("rates", {})).items()
            }
            model.samples = {
                str(k): int(v)
                for k, v in dict(data.get("samples", {})).items()
            }
            model.engine = {
                str(k): float(v)
                for k, v in dict(data.get("engine", {})).items()
            }
            model.prior_work = {
                str(k): float(v)
                for k, v in dict(data.get("prior_work", {})).items()
            }
        except (TypeError, ValueError) as exc:
            raise ReproError(f"malformed cost model: {exc}") from exc
        return model

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"UnitCostModel(rates={self.rates!r}, "
            f"samples={self.samples!r})"
        )


def record_residual(
    model: UnitCostModel,
    kernel: str,
    cells: int,
    seconds: float,
    slow_factor: float = DEFAULT_SLOW_UNIT_FACTOR,
    registry=None,
    **attrs,
) -> float | None:
    """Record one completed unit's observed-vs-predicted ratio.

    Call *before* folding the observation into ``model`` so the ratio
    judges the prediction the scheduler actually used. The ratio lands
    in :data:`RESIDUAL_METRIC` labelled by kernel; a ``slow_unit``
    event (carrying ``attrs``, e.g. the worker) is emitted only when
    the kernel already has a *measured* sample and the ratio exceeds
    ``slow_factor`` — a unit can't meaningfully be "slow" against a
    never-measured prior. Returns the ratio, or None when it is
    undefined (zero prediction, zero cells, or non-positive timing).
    """
    if registry is None:
        from repro.obs import telemetry

        registry = telemetry()
    predicted = model.estimate(kernel, cells)
    if predicted <= 0.0 or seconds <= 0.0 or cells <= 0:
        return None
    ratio = float(seconds) / predicted
    registry.histogram(
        RESIDUAL_METRIC, buckets=RESIDUAL_BUCKETS, kernel=kernel
    ).observe(ratio)
    if (
        slow_factor
        and slow_factor > 0
        and ratio > slow_factor
        and model.samples.get(kernel, 0) > 0
    ):
        registry.emit(
            {
                "event": "slow_unit",
                "time": time.time(),
                "kernel": kernel,
                "cells": int(cells),
                "seconds": float(seconds),
                "predicted": predicted,
                "ratio": ratio,
                **attrs,
            }
        )
    return ratio


def plan_cost_model(plan) -> UnitCostModel:
    """A :class:`UnitCostModel` seeded from a plan's budgets.

    Before any unit has run, the only cost signal is the plan itself:
    a cell of a ``(case, backend)`` group runs one system's search for
    ``population × generations`` evaluations, each simulating
    ``steps`` steps of a ``size²`` grid with an 8-cell neighborhood.
    That product — averaged over the plan's systems, whose budgets may
    differ — seeds each kernel's ``prior_work``, so groups order
    correctly by *relative* cost from the first grant. The local
    engine's measured kernel rates
    (:func:`repro.engine.backends.kernel_costs`) are folded in when
    available to scale the prior toward real seconds.
    """
    from repro.engine.backends import kernel_costs

    model = UnitCostModel()
    seed_plan_priors(model, plan)
    model.fold_engine(kernel_costs().snapshot())
    return model


def seed_plan_priors(model: UnitCostModel, plan, overwrite: bool = True) -> None:
    """Seed ``model`` with a plan's budget-derived ``prior_work``.

    ``overwrite=False`` only fills kernels the model has never heard
    of — how a long-lived scheduler (a restored snapshot, or a service
    admitting its Nth plan) takes new work on board without clobbering
    priors it already refined.
    """
    for (case, backend), _keys in plan.groups():
        kernel = UnitCostModel.kernel_key(case.name, backend)
        if not overwrite and kernel in model.prior_work:
            continue
        per_system = [
            plan.budget_for(system).population
            * plan.budget_for(system).generations
            for system in plan.systems
        ]
        work = (
            (sum(per_system) / len(per_system))
            * case.steps
            * case.size**2
            * 8
        )
        model.set_prior_work(kernel, work)


def save_cost_model(model: UnitCostModel, path) -> None:
    """Persist ``model`` as a JSON sidecar (atomic replace).

    A coordinator writes this on shutdown so the *next* run's first
    grants are already informed: two schedulers built from identical
    snapshots make identical decisions, so restoring one only moves
    scheduling toward measured reality — never results.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(model.to_dict(), fh, sort_keys=True, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_cost_model(path) -> UnitCostModel | None:
    """Restore a :func:`save_cost_model` sidecar; ``None`` when the
    file is missing or unreadable (a cold start, never an error — the
    snapshot is a scheduling hint, not state the run depends on)."""
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict):
            raise ReproError("cost snapshot is not a JSON object")
        return UnitCostModel.from_dict(data)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, ReproError) as exc:
        log.warning("ignoring unreadable cost snapshot %s: %s", path, exc)
        return None
