"""Units of work: the sliceable currency of experiment execution.

The paper's grids are sets of fully independent ``(system, case, seed,
backend)`` cells, yet execution used to be handed around as whole
``(case, backend)`` *groups* — so a plan with one big group (one case,
many seeds/systems: the common comparison shape) could occupy exactly
one worker no matter how large the fleet. This module makes the
schedulable unit as small as a single cell while keeping the group as
the *context* that decides which cells may share one
:class:`~repro.engine.EngineSession`:

* a :class:`WorkUnit` is a group index plus an **explicit cell
  subset** of that group — splittable in half, mergeable with its
  sibling, JSON-serializable (the fleet wire form and the shard-process
  hand-off are the same payload);
* a :class:`WorkSet` compiles an
  :class:`~repro.experiments.plan.ExperimentPlan` plus the already
  recorded cells into the pending units — the single source of truth
  for "what remains", consumed by every executor.

Because every cell's run is reproducible from ``(plan, seed)`` alone
(systems draw their initial population as the first consumption of the
seeded stream — common random numbers) and shared sessions are caches
that never change results, **a cell's record is independent of which
unit delivered it**: units can split, migrate between workers and
re-run after stale leases without changing a byte of the results store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.plan import ExperimentPlan

__all__ = [
    "WorkUnit",
    "WorkSet",
    "assign_units",
    "assign_units_by_cost",
    "improve_assignment",
    "merge_group_units",
    "split_units",
    "split_units_by_cost",
]

#: One results-store cell: ``(system, case, seed, backend)``.
Cell = tuple[str, str, int, str]


def _as_cell(value) -> Cell:
    """Coerce one wire-form cell (a 4-list/tuple) to the tuple key."""
    try:
        system, case, seed, backend = value
        return (str(system), str(case), int(seed), str(backend))
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"malformed work-unit cell {value!r} (want "
            "[system, case, seed, backend])"
        ) from exc


@dataclass(frozen=True)
class WorkUnit:
    """A group index plus the explicit cell subset to execute.

    The atom of scheduling. ``group`` names an entry of
    :meth:`ExperimentPlan.groups` (the session-sharing context: every
    cell of a unit replays the same case on the same backend), and
    ``cells`` lists exactly which of that group's cells this unit
    covers — possibly all of them (the classic whole-group hand-off),
    possibly one.
    """

    group: int
    cells: tuple[Cell, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", int(self.group))
        object.__setattr__(
            self, "cells", tuple(_as_cell(c) for c in self.cells)
        )
        if self.group < 0:
            raise ReproError(f"work-unit group must be >= 0, got {self.group}")
        if not self.cells:
            raise ReproError("a work unit needs at least one cell")
        if len(set(self.cells)) != len(self.cells):
            raise ReproError(f"duplicate cells in work unit {self}")

    @property
    def n_cells(self) -> int:
        """Number of cells this unit covers."""
        return len(self.cells)

    # ------------------------------------------------------------------
    def split(self) -> tuple["WorkUnit", "WorkUnit"]:
        """Halve the unit (first half no smaller), preserving cell order.

        The work-stealing primitive: the two halves cover exactly this
        unit's cells, disjointly, and merging them back
        (:meth:`merge`) round-trips to the original unit.
        """
        return self.split_at((self.n_cells + 1) // 2)

    def split_at(self, cut: int) -> tuple["WorkUnit", "WorkUnit"]:
        """Split after the first ``cut`` cells, preserving cell order.

        The cost-aware generalisation of :meth:`split`: a scheduler that
        knows how many cells amount to one lease's worth of work carves
        exactly that many off the front. Both sides must keep at least
        one cell.
        """
        if self.n_cells < 2:
            raise ReproError("cannot split a single-cell work unit")
        if not 1 <= cut < self.n_cells:
            raise ReproError(
                f"split point must be in [1, {self.n_cells - 1}], got {cut}"
            )
        return (
            WorkUnit(self.group, self.cells[:cut]),
            WorkUnit(self.group, self.cells[cut:]),
        )

    def merge(self, other: "WorkUnit") -> "WorkUnit":
        """Concatenate two disjoint units of the same group."""
        if other.group != self.group:
            raise ReproError(
                f"cannot merge units of different groups "
                f"({self.group} vs {other.group})"
            )
        if set(self.cells) & set(other.cells):
            raise ReproError("cannot merge overlapping work units")
        return WorkUnit(self.group, self.cells + other.cells)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Stable JSON wire form (the fleet/shard hand-off payload)."""
        return {"group": self.group, "cells": [list(c) for c in self.cells]}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkUnit":
        """Inverse of :meth:`to_dict`, with full validation."""
        try:
            return cls(
                group=int(data["group"]),
                cells=tuple(_as_cell(c) for c in data["cells"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed work unit: {exc}") from exc


@dataclass(frozen=True)
class WorkSet:
    """A plan's pending work, expressed as validated units.

    The single source of truth for "what remains": executors receive a
    work set (not a plan plus a done-set) and are free to reshape its
    units — split for idle workers, merge for locality — because unit
    boundaries never change any cell's result. Construction validates
    that every unit's cells belong to its group and that no cell
    appears in two units.
    """

    plan: "ExperimentPlan"
    units: tuple[WorkUnit, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "units", tuple(self.units))
        groups = self.plan.groups()
        seen: set[Cell] = set()
        for unit in self.units:
            if not 0 <= unit.group < len(groups):
                raise ReproError(
                    f"work unit names group {unit.group}, but the plan "
                    f"has {len(groups)} groups"
                )
            group_cells = {k.as_tuple() for k in groups[unit.group][1]}
            foreign = [c for c in unit.cells if c not in group_cells]
            if foreign:
                raise ReproError(
                    f"work unit for group {unit.group} names cells outside "
                    f"that group: {foreign}"
                )
            overlap = [c for c in unit.cells if c in seen]
            if overlap:
                raise ReproError(
                    f"cells appear in more than one work unit: {overlap}"
                )
            seen.update(unit.cells)

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls, plan: "ExperimentPlan", done: Iterable[Cell] = ()
    ) -> "WorkSet":
        """Pending units of ``plan``: one whole-group unit per group
        that still has unrecorded cells, in group order.

        ``done`` is the recorded-cell set (usually
        :meth:`ResultsStore.completed`); recorded cells are excluded
        from the compiled units, so a unit's cells are exactly the work
        left to do.
        """
        done = set(done)
        units = []
        for index, (_, keys) in enumerate(plan.groups()):
            cells = tuple(
                k.as_tuple() for k in keys if k.as_tuple() not in done
            )
            if cells:
                units.append(WorkUnit(index, cells))
        return cls(plan=plan, units=tuple(units))

    def pending(self) -> list[WorkUnit]:
        """The units still to execute (every unit — cells are pending
        by construction)."""
        return list(self.units)

    @property
    def total_cells(self) -> int:
        """Pending cell count across all units."""
        return sum(unit.n_cells for unit in self.units)

    def __len__(self) -> int:
        return len(self.units)

    # ------------------------------------------------------------------
    def split(self, parts: int, min_unit_cells: int = 1) -> "WorkSet":
        """Copy with units split toward ``parts`` schedulable pieces
        (see :func:`split_units`); cells and results are unchanged."""
        return WorkSet(
            plan=self.plan,
            units=tuple(split_units(self.units, parts, min_unit_cells)),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Stable JSON wire form: the plan plus its pending units."""
        return {
            "plan": self.plan.to_dict(),
            "units": [unit.to_dict() for unit in self.units],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkSet":
        """Inverse of :meth:`to_dict`, with full validation."""
        from repro.experiments.plan import ExperimentPlan

        try:
            plan = ExperimentPlan.from_dict(data["plan"])
            units = tuple(WorkUnit.from_dict(u) for u in data["units"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed work set: {exc}") from exc
        return cls(plan=plan, units=units)


# ----------------------------------------------------------------------
# Unit scheduling helpers (shared by the shard executor and the fleet
# ledger, so "how work divides" has one implementation).
# ----------------------------------------------------------------------
def split_units(
    units: Sequence[WorkUnit], parts: int, min_unit_cells: int = 1
) -> list[WorkUnit]:
    """Split the largest unit, repeatedly, until there are ``parts``
    units or nothing may split further.

    ``min_unit_cells`` is the split floor: a unit only splits while
    both halves would keep at least that many cells; ``0`` disables
    splitting entirely (whole-group granularity, the pre-WorkUnit
    behaviour). Deterministic: ties break toward the earliest unit.
    """
    if parts < 1:
        raise ReproError(f"parts must be >= 1, got {parts}")
    out = list(units)
    if min_unit_cells < 1:
        return out
    while len(out) < parts:
        i = max(range(len(out)), key=lambda j: out[j].n_cells)
        if out[i].n_cells < 2 * min_unit_cells:
            break  # even the largest unit is at the floor
        first, second = out.pop(i).split()
        out += [first, second]
    return out


def assign_units(
    units: Sequence[WorkUnit], parts: int
) -> list[list[WorkUnit]]:
    """Cell-balanced assignment of units to at most ``parts`` buckets.

    Greedy longest-processing-time: units are placed largest-first
    into the least-loaded bucket (ties toward the lowest bucket), so
    bucket cell-loads stay within one unit of each other. Never yields
    an empty bucket — fewer units than ``parts`` produce fewer buckets
    instead of idle workers.
    """
    if parts < 1:
        raise ReproError(f"parts must be >= 1, got {parts}")
    buckets: list[list[WorkUnit]] = [
        [] for _ in range(min(parts, len(units)))
    ]
    loads = [0] * len(buckets)
    for unit in sorted(units, key=lambda u: -u.n_cells):
        k = min(range(len(buckets)), key=loads.__getitem__)
        buckets[k].append(unit)
        loads[k] += unit.n_cells
    return buckets


# ----------------------------------------------------------------------
# Cost-aware scheduling: the same split/assign decisions driven by a
# predicted per-cell cost instead of raw cell counts. Rates arrive as a
# ``rate_of(group) -> seconds-per-cell`` callable (usually a
# :class:`~repro.experiments.costs.UnitCostModel` bound to the plan's
# kernel keys) so this module stays free of model dependencies.
# ----------------------------------------------------------------------
def _carve(unit: WorkUnit, parts: int) -> list[WorkUnit]:
    """Carve a unit into ``parts`` contiguous near-equal-cell chunks."""
    parts = max(1, min(int(parts), unit.n_cells))
    base, extra = divmod(unit.n_cells, parts)
    out: list[WorkUnit] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(WorkUnit(unit.group, unit.cells[start : start + size]))
        start += size
    return out


def split_units_by_cost(
    units: Sequence[WorkUnit],
    parts: int,
    rate_of: Callable[[int], float],
    min_unit_cells: int = 1,
) -> list[WorkUnit]:
    """Pre-split units into near-equal-*cost* pieces, ``parts`` total.

    Each unit is carved into contiguous chunks whose count is its share
    of the total predicted cost (LPT-friendly: expensive groups yield
    more pieces, cheap ones stay whole), so downstream assignment can
    balance *time*, not cell counts. ``min_unit_cells`` keeps the same
    floor semantics as :func:`split_units` (``0`` disables splitting);
    deterministic for a given rate function. Splitting never changes
    what any cell records — only where it may run.
    """
    if parts < 1:
        raise ReproError(f"parts must be >= 1, got {parts}")
    if min_unit_cells < 1:
        return list(units)
    total = sum(rate_of(u.group) * u.n_cells for u in units)
    if total <= 0.0:
        return split_units(units, parts, min_unit_cells)
    target = total / parts
    out: list[WorkUnit] = []
    for unit in units:
        cost = rate_of(unit.group) * unit.n_cells
        pieces = max(1, round(cost / target))
        pieces = min(pieces, max(unit.n_cells // min_unit_cells, 1))
        out.extend(_carve(unit, pieces))
    return out


def merge_group_units(units: Sequence[WorkUnit]) -> list[WorkUnit]:
    """Re-merge same-group fragments into one unit per group.

    Requeued splits of one group (a dead worker's leases trickling
    back) are worth re-leasing as a whole: one engine session instead
    of several, and the cost model sizes one carve instead of many
    slivers. Fragments concatenate in input order under the
    first-seen group order; disjointness is enforced by
    :meth:`WorkUnit.merge`.
    """
    by_group: dict[int, WorkUnit] = {}
    order: list[int] = []
    for unit in units:
        if unit.group in by_group:
            by_group[unit.group] = by_group[unit.group].merge(unit)
        else:
            by_group[unit.group] = unit
            order.append(unit.group)
    return [by_group[group] for group in order]


def improve_assignment(
    buckets: Sequence[Sequence[WorkUnit]],
    cost_of: Callable[[WorkUnit], float],
    max_rounds: int = 32,
) -> list[list[WorkUnit]]:
    """Cheap neighborhood search over an assignment: shift and swap.

    Classic bin-packing local moves applied to the makespan (the
    most-loaded bucket): each round considers *shifting* one unit from
    the most- to the least-loaded bucket and *swapping* a unit pair
    between the two most-loaded buckets, applies the best strictly
    improving move, and stops when none exists (or after
    ``max_rounds``). Bounded and deterministic — a polish pass over the
    greedy LPT seed, not an exact solver.
    """
    out = [list(bucket) for bucket in buckets]
    if len(out) < 2:
        return out
    loads = [sum(cost_of(u) for u in bucket) for bucket in out]
    for _ in range(max_rounds):
        order = sorted(range(len(out)), key=lambda i: (-loads[i], i))
        hi, lo = order[0], order[-1]
        pair_max = loads[hi]
        best: tuple | None = None
        for j, unit in enumerate(out[hi]):
            cost = cost_of(unit)
            new_max = max(loads[hi] - cost, loads[lo] + cost)
            if new_max < pair_max and (best is None or new_max < best[0]):
                best = (new_max, "shift", j, -1)
        second = order[1]
        for j, unit in enumerate(out[hi]):
            cost_u = cost_of(unit)
            for k, other in enumerate(out[second]):
                cost_v = cost_of(other)
                if cost_u <= cost_v:
                    continue
                new_max = max(
                    loads[hi] - cost_u + cost_v,
                    loads[second] - cost_v + cost_u,
                )
                if new_max < pair_max and (
                    best is None or new_max < best[0]
                ):
                    best = (new_max, "swap", j, k)
        if best is None:
            break
        _, kind, j, k = best
        if kind == "shift":
            unit = out[hi].pop(j)
            out[lo].append(unit)
            loads[hi] -= cost_of(unit)
            loads[lo] += cost_of(unit)
        else:
            unit, other = out[hi][j], out[second][k]
            out[hi][j], out[second][k] = other, unit
            delta = cost_of(unit) - cost_of(other)
            loads[hi] -= delta
            loads[second] += delta
    return out


def assign_units_by_cost(
    units: Sequence[WorkUnit],
    parts: int,
    rate_of: Callable[[int], float],
) -> list[list[WorkUnit]]:
    """Cost-balanced assignment: LPT by predicted cost, then polish.

    Like :func:`assign_units` but greedy on ``rate_of``-predicted unit
    cost instead of cell count, followed by the
    :func:`improve_assignment` neighborhood pass. Never yields an empty
    bucket; deterministic (ties break toward the earlier unit and the
    lower bucket).
    """
    if parts < 1:
        raise ReproError(f"parts must be >= 1, got {parts}")

    def cost_of(unit: WorkUnit) -> float:
        return rate_of(unit.group) * unit.n_cells

    buckets: list[list[WorkUnit]] = [
        [] for _ in range(min(parts, len(units)))
    ]
    loads = [0.0] * len(buckets)
    ranked = sorted(
        range(len(units)), key=lambda i: (-cost_of(units[i]), i)
    )
    for i in ranked:
        k = min(range(len(buckets)), key=lambda j: (loads[j], j))
        buckets[k].append(units[i])
        loads[k] += cost_of(units[i])
    return [b for b in improve_assignment(buckets, cost_of) if b]
