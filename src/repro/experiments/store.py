"""Streaming JSONL results store with crash-safe resume.

Long sweeps die — machines reboot, jobs get preempted — and a sweep
that only writes its results at the end loses everything. The
:class:`ResultsStore` therefore streams: **one JSON line per completed
run**, appended and flushed the moment the run finishes. Restarting the
same plan against the same store skips every run whose
``(system, case, seed, backend)`` key is already recorded and computes
only the missing cells.

Durability/concurrency contract:

* every record is written as a single ``write`` to a file opened in
  append mode, under an exclusive ``flock``, then flushed and fsynced —
  shard processes of one experiment can append to the same store
  concurrently without interleaving lines;
* a crash can at worst leave one unterminated *final* line (no
  trailing newline), which :meth:`ResultsStore.records` detects and
  ignores — even when its payload happens to parse — and which the
  next ``append`` truncates away, so the interrupted run simply
  re-executes on resume; malformed newline-terminated lines are real
  corruption and raise.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

from repro.errors import ReproError

try:  # POSIX: appends are flock-serialised across shard processes
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = [
    "HAS_APPEND_LOCK",
    "ResultsStore",
    "backends_by_system",
    "parity_view",
    "record_key",
    "strip_wallclock",
    "system_label",
]

#: Whether concurrent appends from several processes are safe on this
#: platform (the sharded runner refuses multi-process fan-out without
#: it rather than risk interleaved, store-corrupting writes).
HAS_APPEND_LOCK = fcntl is not None


def record_key(record: dict) -> tuple[str, str, int, str]:
    """The resume/dedup identity of one result record."""
    try:
        return (
            str(record["system"]),
            str(record["case"]),
            int(record["seed"]),
            str(record["backend"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"result record without a full run key: {exc}") from exc


def parity_view(record: dict) -> dict:
    """A result record minus its scheduling-dependent observability.

    The executor-parity view: every remaining field — qualities, kign
    trajectories, requested-evaluation counts, config digests — is
    deterministic from ``(plan, seed)`` and must agree bitwise across
    execution policies *and work-unit granularities*. Two kinds of
    field cannot and are stripped:

    * **wall-clock** — top-level ``seconds``/``run_seconds`` and the
      per-step stage ``timings``: no two executions measure the same
      time;
    * **session-reuse accounting** — the ``run.session`` payload and
      the per-step engine ``simulations``/``cache`` counters: how many
      evaluations were answered by a shared cache instead of the
      simulator depends on *which cells shared a session*, i.e. on how
      units were split/stolen across workers — scheduling observability,
      not results (cache hits serve bitwise-identical values);
    * **telemetry provenance** — the top-level ``telemetry`` block
      (which work unit delivered the cell, its size, any future
      scheduling attribution): pure observability from
      :mod:`repro.obs`, different under every executor and unit
      granularity by design.

    One definition, so every parity gate (tests, benchmarks, the
    distributed-smoke CI job) normalizes the same fields.
    """
    out = dict(record)
    out.pop("seconds", None)
    out.pop("run_seconds", None)
    out.pop("telemetry", None)
    run = dict(out.get("run") or {})
    run.pop("session", None)
    steps = []
    for step in run.get("steps", []):
        step = {k: v for k, v in step.items() if k != "timings"}
        engine = step.get("engine")
        if isinstance(engine, dict):
            step["engine"] = {
                k: v
                for k, v in engine.items()
                if k not in ("simulations", "cache")
            }
        steps.append(step)
    run["steps"] = steps
    out["run"] = run
    return out


#: Migration alias — the parity view once stripped only wall-clock
#: fields; unit-level scheduling made session-reuse accounting equally
#: execution-dependent, so the one shared view now strips both.
strip_wallclock = parity_view


def backends_by_system(records: Iterable[dict]) -> dict[str, dict[str, None]]:
    """First-seen engine backends per system label.

    The shared basis of the multi-backend row-labelling rule used by
    both the sweep table and the experiment summary (one
    implementation, so the two reports can never drift apart).
    """
    out: dict[str, dict[str, None]] = {}
    for record in records:
        out.setdefault(str(record["system"]), {})[
            str(record.get("backend", ""))
        ] = None
    return out


def system_label(record: dict, backends_of: dict[str, dict[str, None]]) -> str:
    """Row label of one record: ``system[backend]`` only when that
    system's records span several backends, the plain name otherwise —
    backends are never silently merged into one row."""
    system = str(record["system"])
    if len(backends_of.get(system, {})) > 1:
        return f"{system}[{record.get('backend', '')}]"
    return system


class ResultsStore:
    """Append-only JSONL store of experiment result records.

    Parameters
    ----------
    path:
        The ``.jsonl`` file; created (with parent directories) on the
        first append. The same path may be handed to several shard
        processes of one experiment.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Whether any record has ever been written."""
        return self.path.exists()

    def __len__(self) -> int:
        return len(self.records())

    def append(self, record: dict) -> None:
        """Durably append one completed-run record (one JSON line).

        A crash mid-append leaves a truncated final line; before
        writing, the tail is cut back to the last complete line (under
        the same lock) so the store always returns to the "complete
        lines only" invariant — the interrupted run simply re-executes.
        """
        record_key(record)  # validate before touching the file
        data = (json.dumps(record, sort_keys=True) + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab+") as fh:
            if fcntl is not None:  # serialise concurrent shard appends
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            self._drop_partial_tail(fh)
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    @staticmethod
    def _drop_partial_tail(fh) -> None:
        """Truncate a crash's unterminated final line (no-op otherwise)."""
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            return
        fh.seek(size - 1)
        if fh.read(1) == b"\n":
            return
        chunk = 1 << 20
        pos = size
        while pos > 0:
            start = max(0, pos - chunk)
            fh.seek(start)
            data = fh.read(pos - start)
            cut = data.rfind(b"\n")
            if cut >= 0:
                fh.truncate(start + cut + 1)
                return
            pos = start
        fh.truncate(0)

    # ------------------------------------------------------------------
    def merge(self, *sources, dedupe=record_key) -> dict:
        """Aggregate other stores (or record iterables) into this one.

        The multi-store aggregation primitive behind ``repro
        experiments merge-stores`` and the fleet coordinator's
        end-of-run pull of worker stores:

        * **first writer wins** — this store's existing records take
          precedence, then the sources in argument order (each in its
          own append order); later records with an already-seen
          ``dedupe`` key are dropped, deterministically;
        * **sorted output** — the merged store is rewritten ordered by
          the dedupe key, so two merges covering the same cells produce
          byte-comparable files regardless of arrival order;
        * **compaction** — crash-partial tails (this store's and the
          sources') are dropped on the way through, and the rewrite is
          atomic (temp file + rename), so a crash mid-merge leaves
          either the old store or the new one, never a hybrid.

        Sources may be :class:`ResultsStore` instances or plain
        iterables of record dicts (e.g. records that arrived over the
        fleet protocol). Not safe concurrently with appends to *this*
        store. Returns a summary: total ``records`` written, duplicate
        records dropped, and sources consumed.
        """
        merged: dict[tuple, dict] = {}
        duplicates = 0
        for source in (self, *sources):
            records = (
                source.records()
                if isinstance(source, ResultsStore)
                else list(source)
            )
            for record in records:
                key = dedupe(record)
                if key in merged:
                    duplicates += 1
                else:
                    merged[key] = record
        lines = [
            json.dumps(merged[key], sort_keys=True) + "\n"
            for key in sorted(merged)
        ]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".merge-tmp")
        with open(tmp, "w") as fh:
            fh.writelines(lines)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        return {
            "records": len(merged),
            "duplicates": duplicates,
            "sources": len(sources),
        }

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """All complete records, in append order.

        A record counts as complete only when its line is terminated:
        a final line without its trailing newline — even one that
        happens to parse as JSON — is a crash-interrupted append and is
        skipped, exactly mirroring what the next ``append`` truncates
        away, so resume re-runs that cell instead of first counting it
        done and then losing it. A malformed line followed by valid
        ones is corruption and raises.
        """
        if not self.path.exists():
            return []
        with open(self.path) as fh:
            text = fh.read()
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            lines = lines[:-1]
        out: list[dict] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            # crash-partial tails were already dropped above, so any
            # malformed complete line is real corruption — raising here
            # (rather than skipping) stops the next append from burying
            # it mid-file where it would poison every later read
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"corrupt results store {self.path}: malformed record "
                    f"on line {i + 1}: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ReproError(
                    f"corrupt results store {self.path}: line {i + 1} is not "
                    "a record object"
                )
            out.append(payload)
        return out

    def completed(self) -> set[tuple[str, str, int, str]]:
        """Run keys already recorded — the resume skip-set."""
        return {record_key(r) for r in self.records()}

    def select(self, keys: Iterable[tuple[str, str, int, str]]) -> list[dict]:
        """Records matching ``keys``, in append order."""
        wanted = set(keys)
        return [r for r in self.records() if record_key(r) in wanted]
