"""Experiment execution: shared engine sessions, streaming results.

The :class:`ExperimentRunner` turns a declarative
:class:`~repro.experiments.plan.ExperimentPlan` into recorded runs:

* runs are executed as :class:`~repro.experiments.work.WorkUnit` units —
  a ``(case, backend)`` group index plus an explicit cell subset (see
  :meth:`ExperimentPlan.groups` and :mod:`repro.experiments.work`) —
  and every unit runs against **one shared**
  :class:`~repro.engine.EngineSession` — so when ESSIM-EA asks for a
  fitness value ESS already computed for the same step context, the
  shared cross-system cache answers instead of the simulator, and the
  standing worker pool is forked once per unit instead of once per
  run. Unit boundaries never change results: every cell is
  reproducible from ``(plan, seed)`` alone, so a whole-group unit and
  the same cells split across many units record identical bytes;
* every completed run streams one record into a
  :class:`~repro.experiments.store.ResultsStore`; re-running the same
  plan against the same store resumes, computing only the missing
  ``(system, case, seed, backend)`` cells;
* *where* the pending units execute is a pluggable
  :class:`~repro.distributed.executors.WorkExecutor` policy — inline
  (the default), local shard processes (``shards=N``), or a TCP worker
  fleet (:class:`~repro.distributed.coordinator.FleetExecutor`) that
  leases units cell-by-cell and steals from big groups by splitting
  them. Every executor funnels work back through
  :meth:`ExperimentRunner.run_units` so resume semantics stay the
  store's run-key contract.

The runner owns every session it creates: a crash mid-group (a raising
system, a dying callback) still closes the shared session before the
exception propagates.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.engine import EngineSession
from repro.errors import ReproError
from repro.experiments.costs import (
    DEFAULT_SLOW_UNIT_FACTOR,
    UnitCostModel,
    plan_cost_model,
    record_residual,
)
from repro.experiments.plan import ExperimentPlan, RunKey
from repro.experiments.store import (
    ResultsStore,
    backends_by_system,
    record_key,
    system_label,
)
from repro.experiments.work import WorkSet, WorkUnit
from repro.obs import span, telemetry
from repro.systems.base import PredictionSystem
from repro.systems.results import RunResult
from repro.workloads.synthetic import ReferenceFire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.distributed.executors import WorkExecutor

__all__ = ["ExperimentResult", "ExperimentRunner"]


@dataclass
class ExperimentResult:
    """All records of one experiment execution (fresh + resumed).

    ``records`` follow the plan's grid order regardless of execution
    or resume order; ``n_resumed`` counts cells served from the store
    instead of being re-run.
    """

    plan_name: str
    records: list[dict] = field(default_factory=list)
    n_resumed: int = 0

    def __post_init__(self) -> None:
        self._totals: dict[str, dict] | None = None

    def runs(self) -> list[RunResult]:
        """Rehydrated :class:`RunResult` per record, in record order."""
        return [RunResult.from_dict(r["run"]) for r in self.records]

    def record(self, system: str, case: str, seed: int, backend: str) -> dict:
        """Look up one record by its run key."""
        for r in self.records:
            if record_key(r) == (system, case, seed, backend):
                return r
        raise ReproError(
            f"no record for ({system!r}, {case!r}, {seed}, {backend!r})"
        )

    # ------------------------------------------------------------------
    def per_system_totals(self) -> dict[str, dict]:
        """Aggregate engine/session accounting per system.

        The per-system cache-reuse view of the whole experiment: each
        run's ``session`` payload is that run's scope delta over the
        (possibly shared) session, so summing them per system never
        double-counts shared totals. A system whose records span
        several backends gets one row per backend (``system[backend]``,
        matching the sweep layer) — backends are never merged into one
        total. Computed once and memoised — ``records`` is
        append-complete by construction.
        """
        if self._totals is not None:
            return self._totals
        backends_of = backends_by_system(self.records)
        out: dict[str, dict] = {}
        for record in self.records:
            payload = record.get("run", {})
            totals = out.setdefault(
                system_label(record, backends_of),
                {
                    "runs": 0,
                    "steps": 0,
                    "evaluations": 0,
                    "simulations": 0,
                    "cache_hits": 0,
                    "cross_step_hits": 0,
                    "cross_system_hits": 0,
                    "seconds": 0.0,
                },
            )
            totals["runs"] += 1
            totals["seconds"] += float(record.get("seconds", 0.0))
            # read the step/session payloads directly — no need to
            # rehydrate a full RunResult per record just to sum counters
            for step in payload.get("steps", []):
                engine = step.get("engine") or {}
                totals["evaluations"] += int(engine.get("evaluations", 0))
                totals["simulations"] += int(engine.get("simulations", 0))
            session = payload.get("session") or {}
            totals["steps"] += int(session.get("steps", 0))
            totals["cache_hits"] += int(session.get("cache", {}).get("hits", 0))
            totals["cross_step_hits"] += int(session.get("cross_step_hits", 0))
            totals["cross_system_hits"] += int(
                session.get("cross_system_hits", 0)
            )
        self._totals = out
        return out

    def cross_system_hits(self) -> int:
        """Total cache hits served across system boundaries."""
        return sum(
            t["cross_system_hits"] for t in self.per_system_totals().values()
        )


class ExperimentRunner:
    """Executes experiment grids against shared engine sessions.

    Parameters
    ----------
    store:
        Optional :class:`ResultsStore`; when given, every completed run
        is streamed into it and already-recorded cells are skipped on
        re-execution (crash-safe resume).
    share_sessions:
        When true (the default), each ``(case, backend)`` group runs
        against one shared :class:`EngineSession`; when false every run
        builds its own session (the pre-experiment-layer behaviour,
        kept for A/B comparisons and bitwise-equivalence tests).
    session_factory:
        Constructor for group sessions (an :class:`EngineSession`
        subclass or an instrumented test double); receives the same
        keyword arguments as :class:`EngineSession`.
    progress:
        Optional callback invoked with each freshly recorded run
        record. Exceptions it raises abort the experiment (after the
        record is persisted) but never leak the group session.
    slow_unit_factor:
        A unit slower than ``factor × predicted`` (against the
        plan-seeded :class:`UnitCostModel`) earns a ``slow_unit`` trace
        event; the observed/predicted ratio always lands in the
        ``repro_cost_residual_ratio`` histogram. Monitoring only —
        never changes what runs or what is recorded.
    """

    def __init__(
        self,
        store: ResultsStore | None = None,
        share_sessions: bool = True,
        session_factory: Callable[..., EngineSession] | None = None,
        progress: Callable[[dict], None] | None = None,
        slow_unit_factor: float | None = None,
    ) -> None:
        self.store = store
        self.share_sessions = share_sessions
        self.session_factory = session_factory or EngineSession
        self.progress = progress
        self.slow_unit_factor = (
            DEFAULT_SLOW_UNIT_FACTOR
            if slow_unit_factor is None
            else float(slow_unit_factor)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        plan: ExperimentPlan,
        shards: int = 1,
        executor: "WorkExecutor | None" = None,
    ) -> ExperimentResult:
        """Execute (or resume) a plan; returns the full grid's records.

        The plan plus the store's recorded cells compile into a
        :class:`WorkSet` of pending units; ``executor`` chooses *where*
        those units run (see :mod:`repro.distributed`); ``shards=N`` is
        sugar for ``executor=ProcessShardExecutor(N)`` and the two are
        mutually exclusive. The resume bookkeeping here is
        executor-independent: recorded cells are excluded at compile
        time, configuration digests are checked per system, and the
        returned records follow plan order.
        """
        if shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        if executor is not None and shards != 1:
            raise ReproError(
                "pass either shards=N or an executor, not both — "
                "shards=N is shorthand for ProcessShardExecutor(N)"
            )
        recorded = self._recorded_by_key()
        for (case, _), keys in plan.groups():
            for system in plan.systems:
                self.check_recorded_config(
                    recorded,
                    [k for k in keys if k.system == system],
                    plan.config_digest(case, system),
                )
        done = set(recorded)
        all_keys = [key.as_tuple() for key in plan.runs()]
        n_resumed = sum(1 for key in all_keys if key in done)
        if executor is None:
            # imported lazily: repro.distributed imports this module
            from repro.distributed.executors import (
                InlineExecutor,
                ProcessShardExecutor,
            )

            executor = (
                InlineExecutor()
                if shards == 1
                else ProcessShardExecutor(shards)
            )
        # one `plan` root span per execution: the registry adopts its
        # trace context so every span below — including those emitted by
        # shard processes and fleet workers, which receive the context
        # over the wire — hangs off this root under one trace_id
        registry = telemetry()
        previous = registry.trace_context()
        trace_id = (previous or {}).get("trace_id") or registry.new_trace_id()
        registry.adopt_trace(trace_id, (previous or {}).get("parent_span"))
        try:
            with span(
                "plan",
                plan=plan.name,
                runs=len(all_keys),
                resumed=n_resumed,
                executor=type(executor).__name__,
            ) as plan_span:
                registry.adopt_trace(trace_id, plan_span["id"])
                fresh = executor.execute(self, WorkSet.compile(plan, done))
        finally:
            registry.adopt_trace(
                (previous or {}).get("trace_id"),
                (previous or {}).get("parent_span"),
            )
        if fresh is None:
            # the executor's processes wrote through the store; re-read
            by_key = self._recorded_by_key()
        else:
            by_key = {**recorded, **{record_key(r): r for r in fresh}}
        records = [by_key[key] for key in all_keys if key in by_key]
        return ExperimentResult(
            plan_name=plan.name, records=records, n_resumed=n_resumed
        )

    def _recorded_by_key(self) -> dict[tuple, dict]:
        """One parse of the store's records, keyed for resume lookups."""
        if self.store is None:
            return {}
        return {record_key(r): r for r in self.store.records()}

    def check_recorded_config(
        self,
        recorded: dict[tuple, dict],
        keys: Sequence[RunKey],
        digest: str,
    ) -> None:
        """Refuse to resume cells recorded under another configuration.

        The run key names a cell but not its shape: without this check,
        re-running a grid with a changed case size/steps or budget
        against an old store would silently serve the stale results.
        Part of the executor SPI alongside :meth:`run_groups` — fleet
        workers apply it to their *local* store before resuming a
        leased group, so a reused worker store is held to the same
        contract as a coordinator store.
        """
        for key in keys:
            stored = (recorded.get(key.as_tuple()) or {}).get("config")
            if stored is not None and stored != digest:
                raise ReproError(
                    f"results store {self.store.path} already records "
                    f"{key.as_tuple()} under a different configuration "
                    "(case size/steps or budget changed since it was "
                    "written — note plan-based and run_grid invocations "
                    "use different digest schemes, so a store is resumable "
                    "by the entry point that wrote it); use a fresh store "
                    "path or the original invocation"
                )

    def run_groups(
        self,
        plan: ExperimentPlan,
        group_indices: Sequence[int],
        done: set[tuple[str, str, int, str]],
    ) -> list[dict]:
        """Execute the pending cells of the named plan groups, in order.

        Compatibility shim over :meth:`run_units` (the execution SPI
        since the unit-of-work redesign): each named group becomes one
        whole-group :class:`WorkUnit`. Prefer :meth:`run_units` in new
        code — it can execute arbitrary cell subsets.
        """
        groups = plan.groups()
        units = [
            WorkUnit(index, tuple(k.as_tuple() for k in groups[index][1]))
            for index in group_indices
        ]
        return self.run_units(plan, units, done)

    def run_units(
        self,
        plan: ExperimentPlan,
        units: Sequence[WorkUnit],
        done: set[tuple[str, str, int, str]],
    ) -> list[dict]:
        """Execute the pending cells of the given work units, in order.

        The executor SPI: every execution policy — inline, a shard
        process, a fleet worker — ultimately calls this with the units
        it is responsible for, so the session-sharing and
        store-streaming semantics are identical everywhere. Each unit
        runs against one shared :class:`EngineSession` built for its
        group's ``(case, backend)`` context; cells in ``done`` are
        skipped (the resume contract, applied identically at every
        granularity); the session kwargs come from the plan-level
        budget (per-system budget overrides never touch the session
        shape, see :class:`ExperimentPlan`). A cell's record is
        independent of which unit delivered it — splitting or merging
        units never changes a byte of the store.
        """
        groups = plan.groups()
        records: list[dict] = []
        cost_model: UnitCostModel | None = None
        for unit in units:
            if not 0 <= unit.group < len(groups):
                raise ReproError(
                    f"work unit names group {unit.group}, but plan "
                    f"{plan.name!r} has {len(groups)} groups"
                )
            (case, backend), keys = groups[unit.group]
            by_cell = {k.as_tuple(): k for k in keys}
            foreign = [c for c in unit.cells if c not in by_cell]
            if foreign:
                raise ReproError(
                    f"work unit for group {unit.group} names cells outside "
                    f"that group: {foreign}"
                )
            pending = [
                by_cell[c] for c in unit.cells if c not in done
            ]
            if not pending:
                continue
            fire = case.build()
            budget = plan.budget
            obs = telemetry()
            obs.counter("repro_units_total", plan=plan.name).inc()
            obs.counter("repro_unit_cells_total", plan=plan.name).inc(
                len(pending)
            )
            if cost_model is None:
                cost_model = plan_cost_model(plan)
            kernel = UnitCostModel.kernel_key(case.name, backend)
            with span(
                "unit",
                plan=plan.name,
                group=unit.group,
                cells=unit.n_cells,
                pending=len(pending),
                case=case.name,
                backend=backend,
            ) as unit_span:
                records += self._execute_group(
                    fire=fire,
                    keys=pending,
                    make_system=lambda key, b=backend: plan.build_system(
                        key.system, b
                    ),
                    session_kwargs=dict(
                        backend=backend,
                        n_workers=budget.n_workers,
                        cache_size=budget.cache_size,
                        session_cache_size=budget.session_cache_size,
                    ),
                    plan_name=plan.name,
                    config={
                        system: plan.config_digest(case, system)
                        for system in plan.systems
                    },
                    unit_meta={
                        "unit_group": unit.group,
                        "unit_cells": unit.n_cells,
                    },
                )
            # judge the prediction the model held *before* this unit,
            # then teach it — later units in the same batch get
            # measured rates instead of plan priors
            record_residual(
                cost_model,
                kernel,
                len(pending),
                unit_span["seconds"],
                slow_factor=self.slow_unit_factor,
                plan=plan.name,
                group=unit.group,
            )
            cost_model.observe(kernel, len(pending), unit_span["seconds"])
        return records

    # ------------------------------------------------------------------
    def run_grid(
        self,
        system_factories: Mapping[str, Callable[[], PredictionSystem]],
        cases: Mapping[str, ReferenceFire],
        seeds: Sequence[int],
        seed_offset: int = 0,
        name: str = "sweep",
    ) -> ExperimentResult:
        """Execute a pre-built grid (the :func:`run_sweep` contract).

        Unlike :meth:`run`, the systems arrive as opaque factories and
        the cases as materialised fires, so grouping reads each
        factory's engine configuration off a probe instance: factories
        with identical ``(backend, workers, cache sizes)`` share one
        session per case, mismatched ones get their own group. Resume
        digests are likewise probe-derived (:func:`_grid_digest`), a
        different scheme than :meth:`ExperimentPlan.config_digest` — a
        store written here resumes here, not through :meth:`run`, and
        vice versa.
        """
        if not system_factories:
            raise ReproError("need at least one system")
        if not cases:
            raise ReproError("need at least one case")
        if not seeds:
            raise ReproError("need at least one seed")
        recorded = self._recorded_by_key()
        done = set(recorded)
        probes = {label: factory() for label, factory in system_factories.items()}
        configs = {
            label: _engine_signature(probe) for label, probe in probes.items()
        }
        # search-config reprs (dataclass configs render deterministically)
        # fold the EA budget into the per-label resume digest
        search = {
            label: repr(getattr(probe, "config", None))
            for label, probe in probes.items()
        }
        by_signature: dict[tuple, list[str]] = {}
        for label in system_factories:
            by_signature.setdefault(configs[label], []).append(label)
        records: list[dict] = []
        n_resumed = 0
        for case_label, fire in cases.items():
            for signature, labels in by_signature.items():
                backend, n_workers, cache_size, session_cache_size = signature
                digests = {
                    label: _grid_digest(fire, signature, search[label])
                    for label in labels
                }
                keys = [
                    RunKey(label, case_label, seed_offset + seed, backend)
                    for label in labels
                    for seed in seeds
                ]
                for label in labels:
                    self.check_recorded_config(
                        recorded,
                        [k for k in keys if k.system == label],
                        digests[label],
                    )
                pending = [k for k in keys if k.as_tuple() not in done]
                n_resumed += len(keys) - len(pending)
                if not pending:
                    continue
                records += self._execute_group(
                    fire=fire,
                    keys=pending,
                    make_system=lambda key: system_factories[key.system](),
                    session_kwargs=dict(
                        backend=backend,
                        n_workers=n_workers,
                        cache_size=cache_size,
                        session_cache_size=session_cache_size,
                    ),
                    plan_name=name,
                    config=digests,
                )
        # grid order (system-major) regardless of execution/resume order,
        # matching ExperimentResult's documented ordering contract
        by_key = {**recorded, **{record_key(r): r for r in records}}
        wanted = [
            RunKey(label, case_label, seed_offset + seed, configs[label][0])
            for label in system_factories
            for case_label in cases
            for seed in seeds
        ]
        records = [
            by_key[k.as_tuple()] for k in wanted if k.as_tuple() in by_key
        ]
        return ExperimentResult(
            plan_name=name, records=records, n_resumed=n_resumed
        )

    # ------------------------------------------------------------------
    def _execute_group(
        self,
        fire: ReferenceFire,
        keys: Sequence[RunKey],
        make_system: Callable[[RunKey], PredictionSystem],
        session_kwargs: dict,
        plan_name: str,
        config: str | Mapping[str, str] | None = None,
        unit_meta: dict | None = None,
    ) -> list[dict]:
        """Run one group's pending cells against one shared session.

        The ``finally`` is the lifecycle guarantee: whatever dies inside
        the loop — a system run, a store append, a progress callback —
        the group's shared session is closed before the exception
        escapes the runner. ``unit_meta`` is the scheduling provenance
        attached to each record's ``telemetry`` block (and stripped by
        :func:`~repro.experiments.store.parity_view`).
        """
        session = (
            self.session_factory(**session_kwargs)
            if self.share_sessions
            else None
        )
        records: list[dict] = []
        try:
            for key in keys:
                system = make_system(key)
                start = time.perf_counter()
                with span(
                    "run",
                    system=key.system,
                    case=key.case,
                    seed=key.seed,
                    backend=key.backend,
                ):
                    run = system.run(
                        fire,
                        rng=key.seed,
                        session=session,
                        scope_label=key.system,
                    )
                seconds = time.perf_counter() - start
                digest = (
                    config.get(key.system)
                    if isinstance(config, Mapping)
                    else config
                )
                record = self._record(
                    key, run, seconds, plan_name, digest, unit_meta
                )
                if self.store is not None:
                    self.store.append(record)
                records.append(record)
                if self.progress is not None:
                    self.progress(record)
        finally:
            if session is not None:
                session.close()
        return records

    def _record(
        self,
        key: RunKey,
        run: RunResult,
        seconds: float,
        plan_name: str,
        config: str | None,
        unit_meta: dict | None = None,
    ) -> dict:
        quality = run.mean_quality()
        record = {
            "plan": plan_name,
            "system": key.system,
            "case": key.case,
            "seed": key.seed,
            "backend": key.backend,
            "config": config,
            "quality": None if quality != quality else quality,
            "evaluations": run.total_evaluations(),
            # wall-clock of the whole run (experiment accounting) and
            # the summed stage timings (the sweep-table metric) are both
            # persisted so store round-trips reproduce either view
            "seconds": seconds,
            "run_seconds": run.total_time(),
            "shared_session": self.share_sessions,
            "run": run.to_dict(),
        }
        if unit_meta is not None:
            # scheduling provenance (which unit delivered this cell) —
            # execution-dependent by definition, stripped by parity_view
            record["telemetry"] = dict(unit_meta)
        return record


def _engine_signature(system: PredictionSystem) -> tuple:
    """The session-compatibility key of one system instance."""
    return (
        system.backend,
        system.n_workers,
        system.cache_size,
        system.session_cache_size,
    )


def _grid_digest(fire: ReferenceFire, signature: tuple, search: str) -> str:
    """Configuration digest of a pre-built grid cell (``run_grid``).

    Factories are opaque, so the digest covers what is observable: the
    fire's actual shape (terrain dimensions, cell size, step count —
    not the free-form description, which need not encode any of it),
    the engine signature and the probe system's search-config repr
    (the EA budget). Coarser than
    :meth:`ExperimentPlan.config_digest` but it catches the common
    resume foot-guns of re-pointing an old store at a differently
    shaped grid or a re-budgeted factory.
    """
    terrain = fire.terrain
    payload = json.dumps(
        {
            "fire": fire.description,
            "shape": [int(terrain.rows), int(terrain.cols)],
            "cell_size": float(terrain.cell_size),
            "n_steps": int(fire.n_steps),
            "engine": list(signature),
            "search": search,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
