"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ScenarioError(ReproError):
    """Invalid scenario definition: out-of-range or malformed parameters."""


class TerrainError(ReproError):
    """Invalid terrain specification (shape mismatch, bad fuel codes...)."""


class SimulationError(ReproError):
    """The fire simulator was driven with inconsistent inputs."""


class FitnessError(ReproError):
    """Fitness evaluation received maps of mismatched geometry."""


class NoveltyError(ReproError):
    """Novelty computation was requested with an unusable reference set."""


class EvolutionError(ReproError):
    """Misconfigured evolutionary algorithm (bad rates, empty population)."""


class ParallelError(ReproError):
    """Failure inside the master/worker or island parallel runtime."""


class CalibrationError(ReproError):
    """The calibration stage could not produce a Key Ignition Value."""


class WorkloadError(ReproError):
    """A synthetic workload was requested with inconsistent parameters."""
