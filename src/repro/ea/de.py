"""Differential evolution — the ESSIM-DE optimisation engine.

ESSIM-DE (Tardivo et al.) replaces the island GA of ESSIM-EA with
Differential Evolution. Each island Master runs one DE population; this
module implements the canonical DE/rand/1/bin and DE/best/1/bin schemes
with greedy one-to-one replacement.

§II-B notes that ESSIM-DE suffered premature convergence and population
stagnation, later mitigated by dynamic tuning (population restart, IQR
analysis — :mod:`repro.tuning`). The diversity experiment (E2)
reproduces that failure mode with this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.individual import Individual, fitness_vector, genomes_matrix
from repro.core.scenario import ParameterSpace
from repro.ea.ga import FitnessFunction, _evaluate_missing, population_stats
from repro.ea.history import EvolutionHistory, GenerationRecord
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.obs import span
from repro.rng import ensure_rng

__all__ = ["DEConfig", "DEResult", "DifferentialEvolution"]

_STRATEGIES = ("rand/1/bin", "best/1/bin")


@dataclass(frozen=True)
class DEConfig:
    """DE hyper-parameters.

    Defaults follow the common settings of the ESSIM-DE papers:
    DE/rand/1/bin with F = 0.9, CR = 0.5.
    """

    population_size: int = 50
    differential_weight: float = 0.9  # F
    crossover_probability: float = 0.5  # CR
    strategy: str = "rand/1/bin"

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise EvolutionError(
                "DE needs a population of at least 4 (target + 3 distinct "
                f"donors), got {self.population_size}"
            )
        if not (0.0 < self.differential_weight <= 2.0):
            raise EvolutionError(
                f"differential_weight must be in (0, 2], got "
                f"{self.differential_weight}"
            )
        if not (0.0 <= self.crossover_probability <= 1.0):
            raise EvolutionError(
                "crossover_probability must be in [0, 1], got "
                f"{self.crossover_probability}"
            )
        if self.strategy not in _STRATEGIES:
            raise EvolutionError(
                f"unknown DE strategy {self.strategy!r}; choose from {_STRATEGIES}"
            )


@dataclass
class DEResult:
    """Outcome of one DE run (same shape as the GA result)."""

    population: list[Individual]
    best: Individual
    history: EvolutionHistory
    evaluations: int
    stop_reason: str

    def population_genomes(self) -> np.ndarray:
        """Genome matrix of the final population."""
        return genomes_matrix(self.population)


class DifferentialEvolution:
    """DE/rand-or-best/1/bin with greedy selection."""

    def __init__(self, config: DEConfig | None = None) -> None:
        self.config = config or DEConfig()

    def run(
        self,
        evaluate: FitnessFunction,
        space: ParameterSpace,
        termination: Termination,
        rng: np.random.Generator | int | None = None,
        initial_population: Sequence[Individual] | None = None,
        observer: Callable[[int, list[Individual]], None] | None = None,
    ) -> DEResult:
        """Run DE to termination (interface mirrors the GA)."""
        cfg = self.config
        gen_rng = ensure_rng(rng)
        n = cfg.population_size
        evaluations = 0

        if initial_population is None:
            genomes = space.sample(n, gen_rng)
            population = [Individual(genome=g) for g in genomes]
        else:
            if len(initial_population) != n:
                raise EvolutionError(
                    f"initial population size {len(initial_population)} != "
                    f"configured {n}"
                )
            population = [ind.copy() for ind in initial_population]

        evaluations += _evaluate_missing(population, evaluate)
        best = max(population, key=lambda ind: ind.fitness).copy()  # type: ignore[arg-type, return-value]

        history = EvolutionHistory()
        generation = 0
        d = space.dimension
        while termination.should_continue(generation, best.fitness):  # type: ignore[arg-type]
            genomes = genomes_matrix(population)
            fitness = fitness_vector(population)

            # Donor indices: three distinct rows, all different from the
            # target. Drawn per target with a vectorised rejection trick.
            donors = _distinct_donors(n, gen_rng)
            if cfg.strategy == "best/1/bin":
                base = np.broadcast_to(
                    genomes[int(np.argmax(fitness))], (n, d)
                ).copy()
            else:
                base = genomes[donors[:, 0]]
            mutant = base + cfg.differential_weight * (
                genomes[donors[:, 1]] - genomes[donors[:, 2]]
            )

            # Binomial crossover with a forced j_rand coordinate.
            cross = gen_rng.random((n, d)) < cfg.crossover_probability
            j_rand = gen_rng.integers(0, d, size=n)
            cross[np.arange(n), j_rand] = True
            trial_genomes = space.clip(np.where(cross, mutant, genomes))

            trials = [
                Individual(genome=trial_genomes[i], birth_generation=generation + 1)
                for i in range(n)
            ]
            with span("generation", algo="de", generation=generation + 1):
                evaluations += _evaluate_missing(trials, evaluate)

            # Greedy one-to-one replacement.
            for i in range(n):
                if trials[i].fitness >= population[i].fitness:  # type: ignore[operator]
                    population[i] = trials[i]
            gen_best = max(population, key=lambda ind: ind.fitness)  # type: ignore[arg-type, return-value]
            if gen_best.fitness > best.fitness:  # type: ignore[operator]
                best = gen_best.copy()

            generation += 1
            mx, mean, iqr, div = population_stats(population, space)
            history.append(
                GenerationRecord(
                    generation=generation,
                    max_fitness=mx,
                    mean_fitness=mean,
                    fitness_iqr=iqr,
                    mean_novelty=float("nan"),
                    genotypic_diversity=div,
                    archive_size=0,
                    best_set_size=0,
                    evaluations=evaluations,
                )
            )
            if observer is not None:
                observer(generation, population)

        return DEResult(
            population=population,
            best=best,
            history=history,
            evaluations=evaluations,
            stop_reason=termination.reason(generation, best.fitness),  # type: ignore[arg-type]
        )


def _distinct_donors(n: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, 3)`` donor indices, each row distinct and != the row index.

    Uses the classic shifted-permutation trick: sample within
    ``[0, n-1)`` then bump values ≥ forbidden index, guaranteeing
    distinctness without rejection loops.
    """
    donors = np.empty((n, 3), dtype=np.int64)
    for j in range(3):
        # choice from n-1-j values, then map around the already-used ones
        donors[:, j] = rng.integers(0, n - 1 - j, size=n)
    for i in range(n):
        used = [i]
        for j in range(3):
            v = donors[i, j]
            for u in sorted(used):
                if v >= u:
                    v += 1
            donors[i, j] = v
            used.append(v)
    return donors
