"""Algorithm 1 — the Novelty-based Genetic Algorithm with Multiple Solutions.

This is the paper's contribution: a classical GA re-targeted by the
Novelty Search paradigm. Exploration is guided *exclusively* by the
novelty score ρ(x) (Eq. 1 over the Eq. 2 fitness-difference behaviour
distance); the fitness function is only used to harvest results into
``bestSet``, which is the algorithm's output (Algorithm 1 line 21).

Line-by-line correspondence with the paper's pseudocode::

    1  population ← initializePopulation(N)        run(): space.sample
    2  archive ← ∅                                  NoveltyArchive(...)
    3  bestSet ← ∅                                  BestSet(...)
    4  generations ← 0
    5  maxFitness ← 0
    6  while generations < maxGen and maxFitness < fThreshold
    7      offspring ← generateOffspring(...)       roulette on novelty
    8-10   fitness for population ∪ offspring       cached, Workers
    11     noveltySet ← population∪offspring∪archive
    12-14  novelty for population ∪ offspring       novelty_scores(...)
    15     archive ← updateArchive(archive, offspring)
    16     population ← replaceByNovelty(...)       top-N by novelty
    17     bestSet ← updateBest(bestSet, offspring)
    18     maxFitness ← getMaxFitness(bestSet)
    19     generations ← generations + 1
    21 return bestSet

Deviations (all configurable, defaults faithful):

* Fitness evaluations are cached per individual; re-simulating an
  unchanged genome every generation would only waste Workers.
* In the first iteration the population has no novelty yet, so the
  roulette degenerates to uniform parent choice (see
  :func:`repro.ea.operators.roulette_wheel`).
* ``best_include_population=True`` additionally feeds the *initial*
  population into bestSet (the literal line 17 only ever adds
  offspring, silently discarding a lucky initial individual); default
  ``False`` = literal pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.archive import BestSet, NoveltyArchive
from repro.core.individual import Individual, fitness_vector, genomes_matrix
from repro.core.novelty import novelty_scores
from repro.core.scenario import ParameterSpace
from repro.ea.ga import (
    FitnessFunction,
    GAConfig,
    _evaluate_missing,
    generate_offspring,
    population_stats,
)
from repro.ea.history import EvolutionHistory, GenerationRecord
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.obs import span
from repro.rng import ensure_rng, spawn

__all__ = ["NoveltyGAConfig", "NoveltyGAResult", "NoveltyGA"]


@dataclass(frozen=True)
class NoveltyGAConfig:
    """Inputs of Algorithm 1 (plus the archive/bestSet capacities).

    Parameters
    ----------
    population_size:
        ``N`` — population size.
    n_offspring:
        ``m`` — offspring per generation (``None`` → same as ``N``).
    mutation_rate, crossover_rate:
        ``mR`` and ``cR``.
    k_neighbors:
        ``k`` — nearest neighbours in Eq. 1. ``None`` uses the whole
        reference set (the "entire population" variant, refs [14][28]).
    archive_capacity, best_set_capacity:
        Fixed sizes of the two accumulators (§III-B "fixed size archive
        and solution set").
    archive_policy:
        ``"novelty"`` (paper) or ``"random"`` (Doncieux-style ablation).
    signed_distance:
        Use the literal signed Eq. 2 (ablation; default absolute).
    best_include_population:
        See module docstring.
    fitness_weight:
        §IV "hybridization with fitness-based strategies" (Cuccu &
        Gomez 2011, the paper's ref [31]): selection and replacement
        use ``(1−w)·ρ̂(x) + w·fitness`` where ρ̂ is novelty normalised
        to [0, 1] per generation. 0 (default) is the paper's pure NS;
        1 degenerates to a fitness-guided GA that still maintains the
        archive and bestSet.
    selection / crossover / mutation:
        Operator choices, as :class:`repro.ea.ga.GAConfig`.
    """

    population_size: int = 50
    n_offspring: int | None = None
    mutation_rate: float = 0.1
    crossover_rate: float = 0.9
    k_neighbors: int | None = 15
    archive_capacity: int = 100
    best_set_capacity: int = 25
    archive_policy: str = "novelty"
    signed_distance: bool = False
    best_include_population: bool = False
    fitness_weight: float = 0.0
    selection: str = "roulette"
    crossover: str = "one_point"
    mutation: str = "uniform_reset"

    def __post_init__(self) -> None:
        if self.k_neighbors is not None and self.k_neighbors < 1:
            raise EvolutionError(
                f"k_neighbors must be >= 1 or None, got {self.k_neighbors}"
            )
        if self.archive_policy not in ("novelty", "random"):
            raise EvolutionError(
                f"unknown archive policy {self.archive_policy!r}"
            )
        if not (0.0 <= self.fitness_weight <= 1.0):
            raise EvolutionError(
                f"fitness_weight must be in [0, 1], got {self.fitness_weight}"
            )
        # Delegate the common validations to GAConfig.
        self.as_ga_config()

    def as_ga_config(self) -> GAConfig:
        """The reproduction-operator subset, shared with the classical GA."""
        return GAConfig(
            population_size=self.population_size,
            n_offspring=self.n_offspring,
            crossover_rate=self.crossover_rate,
            mutation_rate=self.mutation_rate,
            elitism=0,  # replacement is novelty-elitist, handled here
            selection=self.selection,
            crossover=self.crossover,
            mutation=self.mutation,
        )

    @property
    def offspring_count(self) -> int:
        """Effective ``m``."""
        return self.n_offspring or self.population_size


@dataclass
class NoveltyGAResult:
    """Outcome of an Algorithm 1 run.

    ``best_set`` (the pseudocode's return value) is what the prediction
    systems feed to the Statistical Stage; the final ``population`` and
    ``archive`` are exposed for analysis.
    """

    best_set: BestSet
    population: list[Individual]
    archive: NoveltyArchive
    history: EvolutionHistory
    evaluations: int
    stop_reason: str

    def best_genomes(self) -> np.ndarray:
        """Genome matrix of the bestSet (the OS output of Fig. 3)."""
        return self.best_set.genomes()


#: Observer signature: (generation, population, offspring, archive, best_set).
NoveltyObserver = Callable[
    [int, list[Individual], list[Individual], NoveltyArchive, BestSet], None
]


def _guidance_scores(
    individuals: Sequence[Individual], fitness_weight: float
) -> np.ndarray:
    """Search-guidance score: ρ(x), optionally blended with fitness.

    Novelty is shifted non-negative (the signed Eq. 2 variant can go
    below zero) and, when blending, normalised to [0, 1] per call so
    the two objectives share a scale (Cuccu & Gomez 2011).
    """
    rho = np.asarray([ind.novelty for ind in individuals], dtype=np.float64)
    if rho.size and rho.min() < 0:
        rho = rho - rho.min()
    if fitness_weight <= 0.0:
        return rho
    peak = rho.max()
    rho_hat = rho / peak if peak > 0 else rho
    fit = np.asarray([ind.fitness for ind in individuals], dtype=np.float64)
    return (1.0 - fitness_weight) * rho_hat + fitness_weight * fit


class NoveltyGA:
    """Executable form of Algorithm 1."""

    def __init__(self, config: NoveltyGAConfig | None = None) -> None:
        self.config = config or NoveltyGAConfig()

    def run(
        self,
        evaluate: FitnessFunction,
        space: ParameterSpace,
        termination: Termination,
        rng: np.random.Generator | int | None = None,
        initial_population: Sequence[Individual] | None = None,
        observer: NoveltyObserver | None = None,
        archive: NoveltyArchive | None = None,
        best_set: BestSet | None = None,
    ) -> NoveltyGAResult:
        """Run Algorithm 1 to termination (see class docstring).

        ``archive`` / ``best_set`` allow continuing accumulators across
        calls — the island ESS-NS variant advances each island in
        epochs and must not lose its memory between them. When omitted,
        fresh accumulators are created (Algorithm 1 lines 2–3).
        """
        cfg = self.config
        ga_cfg = cfg.as_ga_config()
        gen_rng = ensure_rng(rng)

        # Lines 1-5. The initial population is the *first* draw from the
        # caller's stream — the common-random-numbers alignment shared
        # by every EA core (GA and DE sample the same way), so matched-
        # budget systems compared under one seed start from the
        # identical sample and a shared experiment session can serve
        # their overlapping evaluations from its cross-system cache.
        # (spawn() derives children from the seed sequence, not the
        # generator state, so the auxiliary streams are unaffected.)
        if initial_population is None:
            genomes = space.sample(cfg.population_size, gen_rng)
            population = [Individual(genome=g) for g in genomes]
        else:
            if len(initial_population) != cfg.population_size:
                raise EvolutionError(
                    f"initial population size {len(initial_population)} != "
                    f"configured {cfg.population_size}"
                )
            population = [ind.copy() for ind in initial_population]
        archive_rng, loop_rng = spawn(gen_rng, 2)
        if archive is None:
            archive = NoveltyArchive(
                cfg.archive_capacity, policy=cfg.archive_policy, rng=archive_rng
            )
        if best_set is None:
            best_set = BestSet(cfg.best_set_capacity)
        history = EvolutionHistory()
        generations = 0
        evaluations = 0

        if cfg.best_include_population:
            evaluations += _evaluate_missing(population, evaluate)
            best_set.update(population)

        # Line 6.
        while termination.should_continue(generations, best_set.max_fitness()):
            # Line 7: parents chosen by novelty (uniform before any
            # exists), optionally blended with fitness (§IV hybrid).
            if all(ind.novelty is not None for ind in population):
                scores = _guidance_scores(population, cfg.fitness_weight)
            else:
                scores = np.ones(len(population))
            offspring = generate_offspring(
                population,
                scores,
                cfg.offspring_count,
                ga_cfg,
                space,
                loop_rng,
                generations + 1,
            )

            # Lines 8-10: fitness for population ∪ offspring (cached).
            combined = population + offspring
            with span("generation", algo="ns", generation=generations + 1):
                evaluations += _evaluate_missing(combined, evaluate)

            # Line 11: noveltySet = population ∪ offspring ∪ archive.
            combined_fitness = fitness_vector(combined)
            reference = (
                np.concatenate([combined_fitness, archive.fitness_values()])
                if len(archive)
                else combined_fitness
            )

            # Lines 12-14: novelty of population ∪ offspring.
            k = cfg.k_neighbors if cfg.k_neighbors is not None else reference.size
            rho = novelty_scores(
                combined_fitness,
                reference,
                k=k,
                exclude_self=True,
                signed=cfg.signed_distance,
            )
            for ind, value in zip(combined, rho):
                ind.novelty = float(value)

            # Line 15: archive update with the new offspring.
            archive.update(offspring)

            # Line 16: novelty-elitist replacement over the whole pool
            # (hybrid-blended when fitness_weight > 0).
            pool_scores = _guidance_scores(combined, cfg.fitness_weight)
            order = np.argsort(pool_scores)[::-1]
            population = [combined[i] for i in order[: cfg.population_size]]

            # Lines 17-19.
            best_set.update(offspring)
            generations += 1

            mx, mean, iqr, div = population_stats(population, space)
            history.append(
                GenerationRecord(
                    generation=generations,
                    max_fitness=best_set.max_fitness(),
                    mean_fitness=mean,
                    fitness_iqr=iqr,
                    mean_novelty=float(
                        np.mean([ind.novelty for ind in population])
                    ),
                    genotypic_diversity=div,
                    archive_size=len(archive),
                    best_set_size=len(best_set),
                    evaluations=evaluations,
                )
            )
            if observer is not None:
                observer(generations, population, offspring, archive, best_set)

        # Line 21.
        return NoveltyGAResult(
            best_set=best_set,
            population=population,
            archive=archive,
            history=history,
            evaluations=evaluations,
            stop_reason=termination.reason(generations, best_set.max_fitness()),
        )
