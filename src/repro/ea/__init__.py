"""Evolutionary metaheuristics: the paper's Algorithm 1 and its baselines.

* :mod:`~repro.ea.operators` — selection / crossover / mutation
  operators shared by all algorithms (roulette-wheel selection and the
  conventional GA operators named in §III-B).
* :mod:`~repro.ea.ga` — the classical fitness-guided genetic algorithm
  used by ESS and (per island) ESSIM-EA.
* :mod:`~repro.ea.nsga` — **Algorithm 1**: the novelty-search-based GA
  with archive and bestSet (the paper's contribution).
* :mod:`~repro.ea.de` — differential evolution used by ESSIM-DE.
* :mod:`~repro.ea.termination` — the two stopping conditions of
  Algorithm 1 line 6 (generation budget, fitness threshold).
"""

from repro.ea.termination import Termination
from repro.ea.history import GenerationRecord, EvolutionHistory
from repro.ea.operators import (
    roulette_wheel,
    tournament,
    one_point_crossover,
    two_point_crossover,
    uniform_crossover,
    blx_alpha_crossover,
    uniform_reset_mutation,
    gaussian_mutation,
)
from repro.ea.ga import GAConfig, GeneticAlgorithm, GAResult
from repro.ea.nsga import NoveltyGAConfig, NoveltyGA, NoveltyGAResult
from repro.ea.de import DEConfig, DifferentialEvolution, DEResult

__all__ = [
    "Termination",
    "GenerationRecord",
    "EvolutionHistory",
    "roulette_wheel",
    "tournament",
    "one_point_crossover",
    "two_point_crossover",
    "uniform_crossover",
    "blx_alpha_crossover",
    "uniform_reset_mutation",
    "gaussian_mutation",
    "GAConfig",
    "GeneticAlgorithm",
    "GAResult",
    "NoveltyGAConfig",
    "NoveltyGA",
    "NoveltyGAResult",
    "DEConfig",
    "DifferentialEvolution",
    "DEResult",
]
