"""Genetic operators: selection, crossover, mutation.

§III-B fixes the paper's choices — roulette-wheel selection, and
"conventional GA parameters, such as mutation rate and crossover" — and
leaves the concrete crossover/mutation operators open. This module
provides the conventional set; algorithms take the operator callables as
configuration so the E5 ablation can swap them.

All operators work on genome matrices ``(n, d)`` and take an explicit
:class:`numpy.random.Generator`; none mutates its inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvolutionError
from repro.rng import ensure_rng

__all__ = [
    "roulette_wheel",
    "tournament",
    "rank_selection",
    "one_point_crossover",
    "two_point_crossover",
    "uniform_crossover",
    "blx_alpha_crossover",
    "uniform_reset_mutation",
    "gaussian_mutation",
]


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def roulette_wheel(
    scores: np.ndarray,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Fitness-proportionate selection (the paper's choice, §III-B).

    Returns ``n`` selected indices (with replacement). Scores must be
    non-negative; an all-zero score vector degenerates to uniform
    selection (every individual is equally (un)attractive), which is
    exactly the first-generation situation before novelty exists.
    """
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    if s.size == 0:
        raise EvolutionError("cannot select from an empty population")
    if (s < 0).any():
        raise EvolutionError("roulette-wheel selection needs non-negative scores")
    gen = ensure_rng(rng)
    total = s.sum()
    if total <= 0 or not np.isfinite(total):
        return gen.integers(0, s.size, size=n)
    return gen.choice(s.size, size=n, replace=True, p=s / total)


def tournament(
    scores: np.ndarray,
    n: int,
    rng: np.random.Generator | int | None = None,
    size: int = 2,
) -> np.ndarray:
    """Tournament selection of ``n`` indices (tournament ``size`` ≥ 1)."""
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    if s.size == 0:
        raise EvolutionError("cannot select from an empty population")
    if size < 1:
        raise EvolutionError(f"tournament size must be >= 1, got {size}")
    gen = ensure_rng(rng)
    entrants = gen.integers(0, s.size, size=(n, size))
    winners = entrants[np.arange(n), np.argmax(s[entrants], axis=1)]
    return winners


def rank_selection(
    scores: np.ndarray,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Linear-rank selection: probability proportional to rank position."""
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    if s.size == 0:
        raise EvolutionError("cannot select from an empty population")
    gen = ensure_rng(rng)
    order = np.argsort(np.argsort(s))  # rank 0 = worst
    weights = (order + 1).astype(np.float64)
    return gen.choice(s.size, size=n, replace=True, p=weights / weights.sum())


# ----------------------------------------------------------------------
# Crossover (each takes two parent matrices of equal shape and returns
# one child matrix of that shape)
# ----------------------------------------------------------------------
def _check_parents(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape != b.shape:
        raise EvolutionError(f"parent shapes differ: {a.shape} vs {b.shape}")
    if a.shape[1] < 1:
        raise EvolutionError("genomes must have at least one gene")
    return a, b


def one_point_crossover(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Classic single-point crossover per parent pair."""
    a, b = _check_parents(a, b)
    gen = ensure_rng(rng)
    n, d = a.shape
    points = gen.integers(1, d, size=n) if d > 1 else np.zeros(n, dtype=int)
    cols = np.arange(d)
    take_from_a = cols[None, :] < points[:, None]
    return np.where(take_from_a, a, b)


def two_point_crossover(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Two-point crossover: the middle segment comes from parent ``b``."""
    a, b = _check_parents(a, b)
    gen = ensure_rng(rng)
    n, d = a.shape
    p1 = gen.integers(0, d, size=n)
    p2 = gen.integers(0, d, size=n)
    lo = np.minimum(p1, p2)[:, None]
    hi = np.maximum(p1, p2)[:, None]
    cols = np.arange(d)[None, :]
    middle = (cols >= lo) & (cols < hi)
    return np.where(middle, b, a)


def uniform_crossover(
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator | int | None = None,
    p_swap: float = 0.5,
) -> np.ndarray:
    """Per-gene uniform crossover: each gene from ``b`` with prob ``p_swap``."""
    a, b = _check_parents(a, b)
    if not (0.0 <= p_swap <= 1.0):
        raise EvolutionError(f"p_swap must be in [0, 1], got {p_swap}")
    gen = ensure_rng(rng)
    mask = gen.random(a.shape) < p_swap
    return np.where(mask, b, a)


def blx_alpha_crossover(
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator | int | None = None,
    alpha: float = 0.5,
) -> np.ndarray:
    """BLX-α blend crossover for real-coded genomes.

    Each child gene is uniform in the parent interval extended by a
    fraction ``alpha`` on both sides. Children may leave the box; the
    caller clips via :meth:`ParameterSpace.clip`.
    """
    a, b = _check_parents(a, b)
    if alpha < 0:
        raise EvolutionError(f"alpha must be >= 0, got {alpha}")
    gen = ensure_rng(rng)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    spread = hi - lo
    low = lo - alpha * spread
    high = hi + alpha * spread
    return low + gen.random(a.shape) * (high - low)


# ----------------------------------------------------------------------
# Mutation (per-gene probability; returns a new matrix; caller clips)
# ----------------------------------------------------------------------
def uniform_reset_mutation(
    genomes: np.ndarray,
    rate: float,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Each gene is replaced by a fresh uniform draw with prob ``rate``."""
    if not (0.0 <= rate <= 1.0):
        raise EvolutionError(f"mutation rate must be in [0, 1], got {rate}")
    g = np.atleast_2d(np.asarray(genomes, dtype=np.float64)).copy()
    gen = ensure_rng(rng)
    mask = gen.random(g.shape) < rate
    fresh = lower + gen.random(g.shape) * (upper - lower)
    g[mask] = fresh[mask]
    return g


def gaussian_mutation(
    genomes: np.ndarray,
    rate: float,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator | int | None = None,
    sigma_fraction: float = 0.1,
) -> np.ndarray:
    """Each gene gets Gaussian noise (σ = fraction of its span) with prob ``rate``.

    Results may leave the box; the caller clips.
    """
    if not (0.0 <= rate <= 1.0):
        raise EvolutionError(f"mutation rate must be in [0, 1], got {rate}")
    if sigma_fraction <= 0:
        raise EvolutionError(f"sigma_fraction must be > 0, got {sigma_fraction}")
    g = np.atleast_2d(np.asarray(genomes, dtype=np.float64)).copy()
    gen = ensure_rng(rng)
    mask = gen.random(g.shape) < rate
    sigma = (np.asarray(upper) - np.asarray(lower)) * sigma_fraction
    noise = gen.normal(0.0, 1.0, size=g.shape) * sigma
    g[mask] += noise[mask]
    return g
