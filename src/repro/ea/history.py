"""Per-generation evolution records shared by GA / NoveltyGA / DE.

The diversity experiment (E2) and the tuning metrics (IQR analysis)
consume these records, so every algorithm emits the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GenerationRecord", "EvolutionHistory"]


@dataclass(frozen=True)
class GenerationRecord:
    """Summary statistics of one generation.

    Attributes
    ----------
    generation:
        Generation index (1-based, matching Algorithm 1's counter after
        the increment on line 19).
    max_fitness, mean_fitness:
        Of the individuals evaluated this generation.
    fitness_iqr:
        Interquartile range of the population fitness — the signal the
        ESSIM-DE IQR tuning metric watches (§II-B).
    mean_novelty:
        Mean ρ(x) of the scored individuals (``nan`` for algorithms
        that do not compute novelty).
    genotypic_diversity:
        Mean pairwise normalised genome distance of the population
        after replacement.
    archive_size, best_set_size:
        Sizes of the NS accumulators (0 for non-NS algorithms).
    evaluations:
        Cumulative number of simulator/fitness evaluations so far.
    """

    generation: int
    max_fitness: float
    mean_fitness: float
    fitness_iqr: float
    mean_novelty: float
    genotypic_diversity: float
    archive_size: int
    best_set_size: int
    evaluations: int


@dataclass
class EvolutionHistory:
    """Ordered collection of :class:`GenerationRecord`."""

    records: list[GenerationRecord] = field(default_factory=list)

    def append(self, record: GenerationRecord) -> None:
        """Add the record for the latest generation."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def series(self, attribute: str) -> np.ndarray:
        """Extract one attribute across generations as an array."""
        return np.asarray(
            [getattr(r, attribute) for r in self.records], dtype=np.float64
        )

    def final_max_fitness(self) -> float:
        """Max fitness at the last generation (0.0 for an empty history)."""
        return self.records[-1].max_fitness if self.records else 0.0
