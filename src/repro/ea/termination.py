"""Stopping conditions — Algorithm 1 line 6.

The loop runs "while generations < maxGen and maxFitness < fThreshold":
it stops when either the generation budget is exhausted or a solution of
sufficient quality has been recorded. Both conditions are also present
in ESSIM-EA and ESSIM-DE (§III-B), so every algorithm in
:mod:`repro.ea` shares this object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvolutionError

__all__ = ["Termination"]


@dataclass(frozen=True)
class Termination:
    """Evaluation of the Algorithm 1 line 6 condition.

    Parameters
    ----------
    max_generations:
        ``maxGen`` — upper bound on GA generations (≥ 1).
    fitness_threshold:
        ``fThreshold`` — stop as soon as the recorded maximum fitness
        reaches this value. The default 1.0 can only be met by a
        perfect prediction, i.e. effectively "run the full budget".
    """

    max_generations: int
    fitness_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.max_generations < 1:
            raise EvolutionError(
                f"max_generations must be >= 1, got {self.max_generations}"
            )
        if not (0.0 < self.fitness_threshold <= 1.0):
            raise EvolutionError(
                "fitness_threshold must be in (0, 1], got "
                f"{self.fitness_threshold}"
            )

    def should_continue(self, generations: int, max_fitness: float) -> bool:
        """The literal line 6 test."""
        return (
            generations < self.max_generations
            and max_fitness < self.fitness_threshold
        )

    def reason(self, generations: int, max_fitness: float) -> str:
        """Human-readable stop reason (for logs and result records)."""
        if generations >= self.max_generations:
            return f"generation budget exhausted ({generations}/{self.max_generations})"
        if max_fitness >= self.fitness_threshold:
            return (
                f"fitness threshold reached ({max_fitness:.4f} >= "
                f"{self.fitness_threshold:.4f})"
            )
        return "still running"
