"""Classical fitness-guided genetic algorithm (the ESS baseline).

ESS and (per island) ESSIM-EA drive their Optimization Stage with a
conventional generational GA: roulette-wheel selection on fitness,
crossover + mutation, elitist replacement. Its final population is the
OS output (contrast with Algorithm 1's bestSet) — the very design §II-B
criticises for converging to similar genotypes.

The fitness function is an arbitrary callable ``(n, d) genome matrix →
(n,) fitness vector``; the parallel layer supplies implementations that
fan the evaluations out to Workers, so this module stays runtime-
agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.individual import Individual, fitness_vector, genomes_matrix
from repro.core.scenario import ParameterSpace
from repro.ea.history import EvolutionHistory, GenerationRecord
from repro.ea.operators import (
    blx_alpha_crossover,
    gaussian_mutation,
    one_point_crossover,
    rank_selection,
    roulette_wheel,
    tournament,
    two_point_crossover,
    uniform_crossover,
    uniform_reset_mutation,
)
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.obs import span
from repro.rng import ensure_rng

__all__ = ["FitnessFunction", "GAConfig", "GAResult", "GeneticAlgorithm", "generate_offspring"]

#: Batch fitness evaluator: genome matrix (n, d) → fitness vector (n,).
FitnessFunction = Callable[[np.ndarray], np.ndarray]

_SELECTIONS = {
    "roulette": roulette_wheel,
    "tournament": tournament,
    "rank": rank_selection,
}
_CROSSOVERS = {
    "one_point": one_point_crossover,
    "two_point": two_point_crossover,
    "uniform": uniform_crossover,
    "blx": blx_alpha_crossover,
}
_MUTATIONS = {
    "uniform_reset": uniform_reset_mutation,
    "gaussian": gaussian_mutation,
}


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the classical GA.

    Defaults follow the conventional settings of the ESS lineage:
    roulette selection, one-point crossover, uniform-reset mutation.
    """

    population_size: int = 50
    n_offspring: int | None = None  # None → same as population_size
    crossover_rate: float = 0.9
    mutation_rate: float = 0.1
    elitism: int = 2
    selection: str = "roulette"
    crossover: str = "one_point"
    mutation: str = "uniform_reset"

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise EvolutionError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.n_offspring is not None and self.n_offspring < 1:
            raise EvolutionError(f"n_offspring must be >= 1, got {self.n_offspring}")
        for rate_name in ("crossover_rate", "mutation_rate"):
            rate = getattr(self, rate_name)
            if not (0.0 <= rate <= 1.0):
                raise EvolutionError(f"{rate_name} must be in [0, 1], got {rate}")
        if not (0 <= self.elitism <= self.population_size):
            raise EvolutionError(
                f"elitism must be in [0, population_size], got {self.elitism}"
            )
        for table, key in (
            (_SELECTIONS, self.selection),
            (_CROSSOVERS, self.crossover),
            (_MUTATIONS, self.mutation),
        ):
            if key not in table:
                raise EvolutionError(
                    f"unknown operator {key!r}; choose from {sorted(table)}"
                )

    @property
    def offspring_count(self) -> int:
        """Effective number of offspring per generation."""
        return self.n_offspring or self.population_size


@dataclass
class GAResult:
    """Outcome of one GA run.

    ``population`` is the final evolved population — the OS output used
    by ESS for the Statistical Stage.
    """

    population: list[Individual]
    best: Individual
    history: EvolutionHistory
    evaluations: int
    stop_reason: str

    def population_genomes(self) -> np.ndarray:
        """Genome matrix of the final population."""
        return genomes_matrix(self.population)


def generate_offspring(
    population: Sequence[Individual],
    scores: np.ndarray,
    m: int,
    config: GAConfig,
    space: ParameterSpace,
    rng: np.random.Generator,
    generation: int,
) -> list[Individual]:
    """Algorithm 1 line 7 / classical GA reproduction.

    Selects ``2·m`` parents with the configured selection operator on
    ``scores`` (fitness for the classical GA, novelty for Algorithm 1),
    applies crossover with probability ``crossover_rate`` (otherwise the
    first parent is copied), mutates, clips into the Table I box.
    """
    if m < 1:
        raise EvolutionError(f"offspring count must be >= 1, got {m}")
    select = _SELECTIONS[config.selection]
    cross = _CROSSOVERS[config.crossover]
    mutate = _MUTATIONS[config.mutation]

    genomes = genomes_matrix(population)
    idx = select(scores, 2 * m, rng)
    parents_a = genomes[idx[:m]]
    parents_b = genomes[idx[m:]]

    children = cross(parents_a, parents_b, rng)
    no_cross = rng.random(m) >= config.crossover_rate
    children[no_cross] = parents_a[no_cross]

    children = mutate(
        children,
        config.mutation_rate,
        space.lower_bounds,
        space.upper_bounds,
        rng,
    )
    children = space.clip(children)
    return [
        Individual(genome=children[i], birth_generation=generation)
        for i in range(m)
    ]


def population_stats(
    population: Sequence[Individual], space: ParameterSpace
) -> tuple[float, float, float, float]:
    """(max, mean, IQR of fitness, genotypic diversity) of a population."""
    fit = fitness_vector(population)
    q75, q25 = np.percentile(fit, [75, 25])
    genomes = genomes_matrix(population)
    n = genomes.shape[0]
    if n > 1:
        diversity = float(
            space.pairwise_distances(genomes).sum() / (n * (n - 1))
        )
    else:
        diversity = 0.0
    return float(fit.max()), float(fit.mean()), float(q75 - q25), diversity


class GeneticAlgorithm:
    """Generational GA with elitist replacement, guided by fitness."""

    def __init__(self, config: GAConfig | None = None) -> None:
        self.config = config or GAConfig()

    def run(
        self,
        evaluate: FitnessFunction,
        space: ParameterSpace,
        termination: Termination,
        rng: np.random.Generator | int | None = None,
        initial_population: Sequence[Individual] | None = None,
        observer: Callable[[int, list[Individual]], None] | None = None,
    ) -> GAResult:
        """Run the GA to termination.

        Parameters
        ----------
        evaluate:
            Batch fitness function (typically a parallel evaluator).
        space:
            The scenario parameter space.
        termination:
            Stopping conditions.
        rng:
            Seeded generator (or seed) for reproducibility.
        initial_population:
            Optional seed population (used by the per-step systems to
            carry state across prediction steps); sampled uniformly
            when omitted.
        observer:
            Optional callback ``(generation, population)`` invoked after
            each replacement (used by the diversity experiment).
        """
        cfg = self.config
        gen_rng = ensure_rng(rng)
        evaluations = 0

        if initial_population is None:
            genomes = space.sample(cfg.population_size, gen_rng)
            population = [Individual(genome=g) for g in genomes]
        else:
            if len(initial_population) != cfg.population_size:
                raise EvolutionError(
                    f"initial population size {len(initial_population)} != "
                    f"configured {cfg.population_size}"
                )
            population = [ind.copy() for ind in initial_population]

        evaluations += _evaluate_missing(population, evaluate)
        best = max(population, key=lambda ind: ind.fitness).copy()  # type: ignore[arg-type, return-value]

        history = EvolutionHistory()
        generation = 0
        while termination.should_continue(generation, best.fitness):  # type: ignore[arg-type]
            with span("generation", algo="ga", generation=generation + 1):
                offspring = generate_offspring(
                    population,
                    fitness_vector(population),
                    cfg.offspring_count,
                    cfg,
                    space,
                    gen_rng,
                    generation + 1,
                )
                evaluations += _evaluate_missing(offspring, evaluate)

            # Elitist generational replacement: keep the top `elitism`
            # parents, fill the rest with the best offspring; fall back
            # to parents when there are too few offspring.
            parents_sorted = sorted(
                population, key=lambda ind: ind.fitness, reverse=True  # type: ignore[arg-type, return-value]
            )
            offspring_sorted = sorted(
                offspring, key=lambda ind: ind.fitness, reverse=True  # type: ignore[arg-type, return-value]
            )
            keep = parents_sorted[: cfg.elitism]
            fill = offspring_sorted[: cfg.population_size - len(keep)]
            if len(keep) + len(fill) < cfg.population_size:
                fill += parents_sorted[
                    cfg.elitism : cfg.population_size - len(fill)
                ]
            population = keep + fill

            gen_best = max(population, key=lambda ind: ind.fitness)  # type: ignore[arg-type, return-value]
            if gen_best.fitness > best.fitness:  # type: ignore[operator]
                best = gen_best.copy()

            generation += 1
            mx, mean, iqr, div = population_stats(population, space)
            history.append(
                GenerationRecord(
                    generation=generation,
                    max_fitness=mx,
                    mean_fitness=mean,
                    fitness_iqr=iqr,
                    mean_novelty=float("nan"),
                    genotypic_diversity=div,
                    archive_size=0,
                    best_set_size=0,
                    evaluations=evaluations,
                )
            )
            if observer is not None:
                observer(generation, population)

        return GAResult(
            population=population,
            best=best,
            history=history,
            evaluations=evaluations,
            stop_reason=termination.reason(generation, best.fitness),  # type: ignore[arg-type]
        )


def _evaluate_missing(
    individuals: Sequence[Individual], evaluate: FitnessFunction
) -> int:
    """Evaluate fitness for individuals that lack it; returns eval count."""
    missing = [ind for ind in individuals if ind.fitness is None]
    if not missing:
        return 0
    values = np.asarray(evaluate(genomes_matrix(missing)), dtype=np.float64)
    if values.shape != (len(missing),):
        raise EvolutionError(
            f"fitness function returned shape {values.shape}, "
            f"expected ({len(missing)},)"
        )
    for ind, v in zip(missing, values):
        ind.fitness = float(v)
    return len(missing)
