"""Batched simulation engine with pluggable backends and a result cache.

The engine layer sits between the evolutionary systems and the fire
simulator: a :class:`SimulationEngine` evaluates an entire ``(n, 9)``
genome batch in one call through a registered backend (``reference``,
``vectorized`` or ``process``), with an LRU scenario-result cache in
front. An :class:`EngineSession` scopes the expensive parts — worker
pool, cross-step result cache — to a whole multi-step run, handing out
per-step engine views. See :mod:`repro.engine.core` for the facade,
:mod:`repro.engine.backends` for the registry,
:mod:`repro.engine.cache` for the cache semantics and
:mod:`repro.engine.session` for the run-scoped lifetime.
"""

from repro.engine.backends import (
    EngineBackend,
    ProcessBackend,
    ReferenceBackend,
    StepSpec,
    VectorizedBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.engine.cache import (
    CacheStats,
    ScenarioResultCache,
    SessionCacheView,
    SessionResultCache,
)
from repro.engine.core import EngineStats, SimulationEngine
from repro.engine.session import (
    EngineSession,
    SessionScope,
    SessionStats,
    step_context_digest,
)

__all__ = [
    "SimulationEngine",
    "EngineStats",
    "EngineSession",
    "SessionScope",
    "SessionStats",
    "step_context_digest",
    "StepSpec",
    "EngineBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "ProcessBackend",
    "register_backend",
    "backend_names",
    "create_backend",
    "ScenarioResultCache",
    "SessionResultCache",
    "SessionCacheView",
    "CacheStats",
]
