"""Batched simulation engine with pluggable backends and a result cache.

The engine layer sits between the evolutionary systems and the fire
simulator: a :class:`SimulationEngine` evaluates an entire ``(n, 9)``
genome batch in one call through a registered backend (``reference``,
``vectorized`` or ``process``), with an LRU scenario-result cache in
front. See :mod:`repro.engine.core` for the facade,
:mod:`repro.engine.backends` for the registry and
:mod:`repro.engine.cache` for the cache semantics.
"""

from repro.engine.backends import (
    EngineBackend,
    ProcessBackend,
    ReferenceBackend,
    StepSpec,
    VectorizedBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.engine.cache import CacheStats, ScenarioResultCache
from repro.engine.core import EngineStats, SimulationEngine

__all__ = [
    "SimulationEngine",
    "EngineStats",
    "StepSpec",
    "EngineBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "ProcessBackend",
    "register_backend",
    "backend_names",
    "create_backend",
    "ScenarioResultCache",
    "CacheStats",
]
