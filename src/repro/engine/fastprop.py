"""Flat-index Dijkstra kernels for the batched simulation engine.

:func:`repro.firelib.propagation.propagate` spends nearly all of its
time in the heap loop, where every relaxation performs two NumPy scalar
index operations (``tt[d, r, c]`` and ``times[nr, nc]``) — each an
order of magnitude slower than a plain ``list`` access. The kernels
here run the *same* algorithm over flattened Python lists:

* the grid is padded with a border so neighbour offsets become a single
  flat-index addition (no bounds checks in the hot loop);
* blocked and border cells hold a ``-inf`` arrival-time sentinel, so
  "can the fire enter this cell" collapses into the ordinary
  ``nt < times[ni]`` relaxation test (always false against ``-inf``);
* travel times are plain Python floats (``np.float64 → float`` is an
  exact conversion, so every addition and comparison produces the same
  IEEE-754 double bit pattern as the reference loop);
* for spatially-uniform scenarios the ``(D, H, W)`` travel-time array
  collapses to ``D`` scalars, skipping the array assembly entirely;
* a :class:`FlatGrid` amortises the padded-grid and ignition-seed setup
  across a whole genome batch (the geometry and the step-start burned
  region never change within a batch).

Dijkstra settles each cell at its unique minimum arrival time
regardless of heap tie order, and every candidate arrival is the same
left-to-right float sum along its path, so the returned ignition-time
maps are **bitwise identical** to the reference propagation — the
property-test suite asserts this for all 13 NFFL fuel models.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = ["FlatGrid", "propagate_uniform", "propagate_raster"]

_INF = float("inf")
_BLOCKED = float("-inf")


class FlatGrid:
    """Padded flat-index view of a grid, reusable across a batch.

    Parameters
    ----------
    shape:
        Grid shape ``(rows, cols)``.
    offsets:
        Stencil offsets ``(drow, dcol)``; padding is sized to the
        largest offset so neighbour arithmetic never leaves the array.
    blocked:
        Optional boolean mask of cells fire can never enter.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        offsets: Sequence[tuple[int, int]],
        blocked: np.ndarray | None = None,
    ) -> None:
        rows, cols = shape
        self.rows, self.cols = rows, cols
        self.offsets = tuple(offsets)
        self.pad = max(max(abs(dr), abs(dc)) for dr, dc in self.offsets)
        self.width = cols + 2 * self.pad
        self.flat_offsets = [dr * self.width + dc for dr, dc in self.offsets]

        mask = np.ones((rows + 2 * self.pad, self.width), dtype=bool)
        inner = (
            np.zeros((rows, cols), dtype=bool)
            if blocked is None
            else np.asarray(blocked, dtype=bool)
        )
        if inner.shape != (rows, cols):
            raise SimulationError(
                f"blocked mask shape {inner.shape} != grid {(rows, cols)}"
            )
        mask[self.pad : self.pad + rows, self.pad : self.pad + cols] = inner
        # -inf sentinel: the relaxation test nt < times[ni] is always
        # false against it, so blocked cells need no dedicated branch.
        self._template = np.where(mask, _BLOCKED, _INF).reshape(-1).tolist()

    # ------------------------------------------------------------------
    def flat_index(self, row: int, col: int) -> int:
        """Flat padded index of cell ``(row, col)``."""
        return (row + self.pad) * self.width + (col + self.pad)

    def seed(
        self,
        ignitions: Iterable[tuple[int, int]] | Mapping[tuple[int, int], float],
    ) -> tuple[list[float], list[tuple[float, int]]]:
        """Initial ``(times, heap)`` state for one propagation run.

        Validation matches :func:`repro.firelib.propagation.propagate`:
        out-of-grid cells and negative start times raise, igniting a
        blocked cell is a no-op. The returned lists are templates —
        copy them (:meth:`prepared`) when running many propagations
        from the same ignition set.
        """
        if isinstance(ignitions, Mapping):
            seeds = {(int(r), int(c)): float(t) for (r, c), t in ignitions.items()}
        else:
            seeds = {(int(r), int(c)): 0.0 for (r, c) in ignitions}
        if not seeds:
            raise SimulationError("at least one ignition cell is required")
        times = self._template.copy()
        heap: list[tuple[float, int]] = []
        for (r, c), t0 in seeds.items():
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise SimulationError(
                    f"ignition cell {(r, c)} outside {self.rows}x{self.cols} grid"
                )
            if t0 < 0:
                raise SimulationError(
                    f"ignition time must be non-negative, got {t0}"
                )
            i = self.flat_index(r, c)
            if t0 < times[i]:  # false for blocked cells (-inf sentinel)
                times[i] = t0
                heapq.heappush(heap, (t0, i))
        return times, heap

    # ------------------------------------------------------------------
    def run_uniform(
        self,
        weights: Sequence[float],
        seeded: tuple[list[float], list[tuple[float, int]]],
        horizon: float | None = None,
    ) -> np.ndarray:
        """Propagate with one travel time per direction (uniform terrain).

        ``seeded`` is a ``(times, heap)`` template from :meth:`seed`;
        it is copied, not consumed.
        """
        if len(weights) != len(self.flat_offsets):
            raise SimulationError(
                f"{len(weights)} weights for {len(self.flat_offsets)} "
                "stencil directions"
            )
        times, heap = seeded[0].copy(), seeded[1].copy()
        edges = [
            (off, float(w))
            for off, w in zip(self.flat_offsets, weights)
            if w < _INF
        ]
        limit = _INF if horizon is None else float(horizon)
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            t, i = pop(heap)
            if t > times[i]:
                continue  # stale entry
            if t > limit:
                break  # all remaining arrivals exceed the horizon
            for off, w in edges:
                ni = i + off
                nt = t + w
                if nt < times[ni]:
                    times[ni] = nt
                    push(heap, (nt, ni))
        return self._finish(times, horizon)

    def run_table(
        self,
        weight_table: Sequence[Sequence[float]],
        class_flat: Sequence[int],
        seeded: tuple[list[float], list[tuple[float, int]]],
        horizon: float | None = None,
    ) -> np.ndarray:
        """Propagate with per-cell-class travel times.

        ``class_flat[i]`` indexes ``weight_table`` for the padded flat
        cell ``i``; ``weight_table[k]`` holds the ``D`` per-direction
        travel times of class ``k``. This is the fuel-raster case: at
        most 13 distinct Rothermel ellipses exist per scenario, so the
        ``(D, H, W)`` travel array collapses to a ``K × D`` table.
        """
        for row in weight_table:
            if len(row) != len(self.flat_offsets):
                raise SimulationError(
                    f"weight row has {len(row)} entries for "
                    f"{len(self.flat_offsets)} stencil directions"
                )
        times, heap = seeded[0].copy(), seeded[1].copy()
        class_edges = [
            list(zip(self.flat_offsets, (float(w) for w in row)))
            for row in weight_table
        ]
        limit = _INF if horizon is None else float(horizon)
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            t, i = pop(heap)
            if t > times[i]:
                continue  # stale entry
            if t > limit:
                break
            for off, w in class_edges[class_flat[i]]:
                ni = i + off
                nt = t + w
                if nt < times[ni]:
                    times[ni] = nt
                    push(heap, (nt, ni))
        return self._finish(times, horizon)

    def run_raster(
        self,
        travel_time: np.ndarray,
        seeded: tuple[list[float], list[tuple[float, int]]],
        horizon: float | None = None,
    ) -> np.ndarray:
        """Propagate with per-cell ``(D, H, W)`` travel times."""
        travel_time = np.asarray(travel_time, dtype=np.float64)
        if travel_time.shape != (
            len(self.flat_offsets),
            self.rows,
            self.cols,
        ):
            raise SimulationError(
                f"travel_time shape {travel_time.shape} != "
                f"({len(self.flat_offsets)}, {self.rows}, {self.cols})"
            )
        # Embed each direction's plane into the padded flat grid
        # (padding value is irrelevant: padded cells stay blocked).
        padded = np.full(
            (travel_time.shape[0], self.rows + 2 * self.pad, self.width),
            np.inf,
            dtype=np.float64,
        )
        padded[
            :, self.pad : self.pad + self.rows, self.pad : self.pad + self.cols
        ] = travel_time
        edges = [
            (off, plane.reshape(-1).tolist())
            for off, plane in zip(self.flat_offsets, padded)
        ]

        times, heap = seeded[0].copy(), seeded[1].copy()
        limit = _INF if horizon is None else float(horizon)
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            t, i = pop(heap)
            if t > times[i]:
                continue  # stale entry
            if t > limit:
                break
            for off, plane in edges:
                ni = i + off
                nt = t + plane[i]
                if nt < times[ni]:
                    times[ni] = nt
                    push(heap, (nt, ni))
        return self._finish(times, horizon)

    # ------------------------------------------------------------------
    def _finish(self, times: list[float], horizon: float | None) -> np.ndarray:
        out = np.asarray(times, dtype=np.float64).reshape(
            self.rows + 2 * self.pad, self.width
        )[self.pad : self.pad + self.rows, self.pad : self.pad + self.cols].copy()
        out[np.isneginf(out)] = np.inf  # blocked cells: never ignited
        if horizon is not None:
            out[out > horizon] = np.inf
        return out


# ----------------------------------------------------------------------
# One-shot functional wrappers (tests, ad-hoc use)
# ----------------------------------------------------------------------
def propagate_uniform(
    weights: Sequence[float],
    shape: tuple[int, int],
    offsets: Sequence[tuple[int, int]],
    ignitions: Iterable[tuple[int, int]] | Mapping[tuple[int, int], float],
    horizon: float | None = None,
    blocked: np.ndarray | None = None,
) -> np.ndarray:
    """Earliest-arrival times when travel cost is uniform per direction.

    ``weights[d]`` is the travel time (minutes) along ``offsets[d]``
    from *any* cell — the homogeneous-terrain case where the Rothermel
    ellipse is the same everywhere. Semantics (including the horizon
    clip to ``inf``) match :func:`repro.firelib.propagation.propagate`.
    """
    grid = FlatGrid(shape, offsets, blocked)
    return grid.run_uniform(weights, grid.seed(ignitions), horizon)


def propagate_raster(
    travel_time: np.ndarray,
    offsets: Sequence[tuple[int, int]],
    ignitions: Iterable[tuple[int, int]] | Mapping[tuple[int, int], float],
    horizon: float | None = None,
    blocked: np.ndarray | None = None,
) -> np.ndarray:
    """Earliest-arrival times from a ``(D, H, W)`` travel-time array.

    The heterogeneous-terrain case: same inputs and semantics as
    :func:`repro.firelib.propagation.propagate`, with the heap loop run
    over flattened Python lists.
    """
    travel_time = np.asarray(travel_time, dtype=np.float64)
    if travel_time.ndim != 3:
        raise SimulationError(
            f"travel_time must be (D, H, W), got shape {travel_time.shape}"
        )
    if travel_time.shape[0] != len(offsets):
        raise SimulationError(
            f"stencil size {len(offsets)} != travel_time directions "
            f"{travel_time.shape[0]}"
        )
    grid = FlatGrid(travel_time.shape[1:], offsets, blocked)
    return grid.run_raster(travel_time, grid.seed(ignitions), horizon)
