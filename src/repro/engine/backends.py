"""Pluggable execution backends for the batched simulation engine.

A backend turns a genome batch into Eq. 3 fitness values (and burned
maps) for one prediction step. Three implementations ship:

* ``reference`` — wraps today's per-scenario
  :class:`~repro.firelib.simulator.FireSimulator`; the semantics every
  other backend must reproduce bit-for-bit.
* ``vectorized`` — batches the Rothermel/ellipse math across the whole
  genome batch (one NumPy pass for the directional travel times of
  every spatially-uniform scenario), deduplicates bitwise-equal
  genomes, and runs the propagation through the flat-index Dijkstra
  kernels of :mod:`repro.engine.fastprop`.
* ``process`` — fans the batch out to a multiprocess pool layered on
  :class:`~repro.parallel.executor.ProcessPoolEvaluator`; each worker
  receives the step spec once (copy-on-write shared rasters under the
  ``fork`` start method) and evaluates its chunk with the vectorized
  kernel.

Backends register themselves in a name → class registry so new
execution strategies (GPU kernels, remote workers) plug in without
touching the engine facade.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.fitness import batch_jaccard, jaccard_fitness
from repro.core.scenario import ParameterSpace
from repro.engine.fastprop import FlatGrid
from repro.errors import ReproError, SimulationError
from repro.firelib.ellipse import ros_at_azimuth
from repro.firelib.moisture import Moisture
from repro.firelib.propagation import (
    _offset_azimuth_deg,
    directional_travel_times,
    propagate,
    stencil,
)
from repro.firelib.rothermel import ROS_EPSILON, spread
from repro.firelib.simulator import FireSimulator
from repro.grid.terrain import Terrain
from repro.units import METERS_TO_FEET

__all__ = [
    "StepSpec",
    "EngineBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "ProcessBackend",
    "register_backend",
    "backend_names",
    "create_backend",
]


@dataclass(frozen=True)
class StepSpec:
    """Everything a backend needs to evaluate one prediction step.

    The picklable, engine-level equivalent of
    :class:`repro.systems.problem.PredictionStepProblem` (which wraps
    one of these): terrain, the burned region the simulation restarts
    from, the real burned region it is scored against, and the step
    horizon.
    """

    terrain: Terrain
    start_burned: np.ndarray
    real_burned: np.ndarray
    horizon: float
    space: ParameterSpace
    n_neighbors: int = 8

    def __post_init__(self) -> None:
        start = np.asarray(self.start_burned, dtype=bool)
        real = np.asarray(self.real_burned, dtype=bool)
        if start.shape != self.terrain.shape:
            raise SimulationError(
                f"start_burned shape {start.shape} != terrain {self.terrain.shape}"
            )
        if real.shape != self.terrain.shape:
            raise SimulationError(
                f"real_burned shape {real.shape} != terrain {self.terrain.shape}"
            )
        if not start.any():
            raise SimulationError("start_burned must contain at least one cell")
        if self.horizon <= 0 or not math.isfinite(self.horizon):
            raise SimulationError(
                f"horizon must be a positive finite time: {self.horizon}"
            )
        object.__setattr__(self, "start_burned", start)
        object.__setattr__(self, "real_burned", real)


class EngineBackend(ABC):
    """One execution strategy for a step's genome batches."""

    #: Registry name (set by :func:`register_backend`).
    name: str = "?"

    def __init__(self, spec: StepSpec) -> None:
        self.spec = spec

    @abstractmethod
    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Eq. 3 fitness of each genome row, shape ``(n,)``."""

    @abstractmethod
    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Simulated burned masks at the step end, shape ``(n, H, W)``."""

    def close(self) -> None:
        """Release any held resources (idempotent; default no-op)."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[EngineBackend]] = {}


def register_backend(name: str):
    """Class decorator adding a backend to the registry under ``name``."""

    def deco(cls: type[EngineBackend]) -> type[EngineBackend]:
        if name in _REGISTRY:
            raise ReproError(f"backend {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, spec: StepSpec, **kwargs) -> EngineBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown engine backend {name!r}; choose from {backend_names()}"
        ) from None
    return cls(spec, **kwargs)


# ----------------------------------------------------------------------
# reference
# ----------------------------------------------------------------------
@register_backend("reference")
class ReferenceBackend(EngineBackend):
    """Per-scenario evaluation through :class:`FireSimulator`.

    This is exactly the pre-engine Worker loop: decode one genome,
    restart the fire from the step-start region, score the burned map.
    """

    def __init__(self, spec: StepSpec) -> None:
        super().__init__(spec)
        self._simulator = FireSimulator(spec.terrain, n_neighbors=spec.n_neighbors)

    def _burned_map(self, genome: np.ndarray) -> np.ndarray:
        scenario = self.spec.space.decode(genome)
        result = self._simulator.simulate_from_burned(
            scenario, self.spec.start_burned, self.spec.horizon
        )
        return result.burned()

    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        out = np.empty(genomes.shape[0], dtype=np.float64)
        for i, g in enumerate(genomes):
            out[i] = jaccard_fitness(
                self.spec.real_burned, self._burned_map(g), self.spec.start_burned
            )
        return out

    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        maps = np.empty((genomes.shape[0], *self.spec.terrain.shape), dtype=bool)
        for i, g in enumerate(genomes):
            maps[i] = self._burned_map(g)
        return maps


# ----------------------------------------------------------------------
# vectorized
# ----------------------------------------------------------------------
@register_backend("vectorized")
class VectorizedBackend(EngineBackend):
    """Batched NumPy kernel + flat-index Dijkstra propagation.

    For spatially-uniform scenarios (no fuel/slope/aspect rasters) the
    per-cell spread fields collapse to per-genome scalars, so the
    directional travel times of the **whole batch** are produced in one
    ``(n, D)`` NumPy pass; heterogeneous terrains reuse the simulator's
    field assembly per genome and gain from the faster propagation.
    Bitwise-identical rows are simulated once and broadcast back.
    """

    def __init__(self, spec: StepSpec) -> None:
        super().__init__(spec)
        terrain = spec.terrain
        self._simulator = FireSimulator(terrain, n_neighbors=spec.n_neighbors)
        self._offsets = stencil(spec.n_neighbors)
        self._blocked = terrain.blocked_mask()
        cell_ft = terrain.cell_size * METERS_TO_FEET
        self._azimuths = np.array(
            [_offset_azimuth_deg(dr, dc) for dr, dc in self._offsets]
        )
        self._distances = np.array(
            [cell_ft * math.hypot(dr, dc) for dr, dc in self._offsets]
        )
        # Per-cell variation decides the propagation mode: scalar
        # scenarios collapse to D weights, fuel-only rasters to a
        # (fuel code × D) table, anything with slope/aspect rasters
        # keeps the full (D, H, W) travel array.
        if terrain.slope is None and terrain.aspect is None:
            self._mode = "uniform" if terrain.fuel is None else "fuel_table"
        else:
            self._mode = "raster"
        # Padded flat grid + seeded-state template, shared by the whole
        # batch: geometry and the step-start burned region are fixed.
        # Seed cells in row-major order, simulate_from_burned's ordering.
        self._seed_cells = [
            (int(r), int(c)) for r, c in zip(*np.nonzero(spec.start_burned))
        ]
        self._grid = FlatGrid(terrain.shape, self._offsets, self._blocked)
        self._seeded = self._grid.seed(self._seed_cells)
        if self._mode == "fuel_table":
            self._codes = [int(c) for c in np.unique(terrain.fuel)]
            pad, width = self._grid.pad, self._grid.width
            classes = np.zeros(
                (terrain.rows + 2 * pad, width), dtype=np.int64
            )
            classes[pad : pad + terrain.rows, pad : pad + terrain.cols] = (
                np.searchsorted(self._codes, terrain.fuel)
            )
            self._class_flat = classes.reshape(-1).tolist()

    # ------------------------------------------------------------------
    def _uniform_weight_matrix(self, scenarios: Sequence) -> np.ndarray:
        """Travel-time weights for a batch of uniform scenarios, ``(n, D)``.

        The Rothermel ellipse of each scenario is three scalars; the
        per-direction spread rates of the whole batch then come from a
        single broadcast ``ros_at_azimuth`` evaluation.
        """
        ros = np.empty(len(scenarios), dtype=np.float64)
        heading = np.empty_like(ros)
        ecc = np.empty_like(ros)
        for i, sc in enumerate(scenarios):
            moisture = Moisture.from_percent(sc.m1, sc.m10, sc.m100, sc.mherb)
            result = spread(
                int(sc.model),
                moisture,
                float(sc.wind_speed),
                float(sc.wind_dir),
                float(sc.slope),
                float(sc.aspect),
            )
            ros[i] = result.ros_max
            heading[i] = result.dir_max_deg
            ecc[i] = result.eccentricity
        rates = ros_at_azimuth(
            ros[:, None], heading[:, None], ecc[:, None], self._azimuths[None, :]
        )
        with np.errstate(divide="ignore"):
            return np.where(
                rates > ROS_EPSILON, self._distances[None, :] / rates, np.inf
            )

    def _direction_weights(self, result) -> np.ndarray:
        """Per-direction travel times, ``(D,)``, of one scalar ellipse."""
        rates = ros_at_azimuth(
            result.ros_max,
            result.dir_max_deg,
            result.eccentricity,
            self._azimuths,
        )
        with np.errstate(divide="ignore"):
            return np.where(rates > ROS_EPSILON, self._distances / rates, np.inf)

    def _fuel_weight_table(self, scenario) -> list[list[float]]:
        """``(fuel code × D)`` travel-time table for one scenario."""
        moisture = Moisture.from_percent(
            scenario.m1, scenario.m10, scenario.m100, scenario.mherb
        )
        table: list[list[float]] = []
        for code in self._codes:
            if code == 0:
                table.append([np.inf] * len(self._offsets))
                continue  # unburnable: also blocked, rows never read
            result = spread(
                code,
                moisture,
                float(scenario.wind_speed),
                float(scenario.wind_dir),
                float(scenario.slope),
                float(scenario.aspect),
            )
            table.append(self._direction_weights(result).tolist())
        return table

    def _ignition_times(self, scenario, weights: np.ndarray | None) -> np.ndarray:
        spec = self.spec
        if weights is not None:
            return self._grid.run_uniform(
                weights.tolist(), self._seeded, horizon=spec.horizon
            )
        if self._mode == "fuel_table":
            return self._grid.run_table(
                self._fuel_weight_table(scenario),
                self._class_flat,
                self._seeded,
                horizon=spec.horizon,
            )
        # Full per-cell rasters (slope/aspect fields): assembling the
        # flat-list planes costs more than it saves on typical burns,
        # so propagate with the reference kernel — the batch still
        # gains from genome deduplication.
        fields = self._simulator.spread_fields(scenario)
        travel = directional_travel_times(
            *fields,
            spec.terrain.cell_size * METERS_TO_FEET,
            blocked=self._blocked,
            n_neighbors=spec.n_neighbors,
        )
        return propagate(
            travel, self._seed_cells, horizon=spec.horizon, blocked=self._blocked
        )

    def _unique_burned(self, genomes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Burned masks of the deduplicated batch + inverse index map."""
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        uniq, inverse = np.unique(genomes, axis=0, return_inverse=True)
        scenarios = [self.spec.space.decode(g) for g in uniq]
        weight_rows = (
            self._uniform_weight_matrix(scenarios)
            if self._mode == "uniform"
            else None
        )
        maps = np.empty((len(scenarios), *self.spec.terrain.shape), dtype=bool)
        for k, sc in enumerate(scenarios):
            times = self._ignition_times(
                sc, weight_rows[k] if weight_rows is not None else None
            )
            maps[k] = times <= self.spec.horizon
        return maps, inverse.reshape(-1)

    # ------------------------------------------------------------------
    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        maps, inverse = self._unique_burned(genomes)
        fits = batch_jaccard(
            self.spec.real_burned, maps, pre_burned=self.spec.start_burned
        )
        return fits[inverse]

    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        maps, inverse = self._unique_burned(genomes)
        return maps[inverse]


# ----------------------------------------------------------------------
# process
# ----------------------------------------------------------------------
class _SpecProblem:
    """Picklable shim shipping a :class:`StepSpec` into pool workers.

    Satisfies :class:`repro.parallel.executor.BatchProblem`; the inner
    backend is rebuilt lazily after unpickling so only the spec crosses
    the process boundary (once, at pool start).
    """

    def __init__(self, spec: StepSpec, inner: str) -> None:
        self.spec = spec
        self.inner = inner
        self._backend: EngineBackend | None = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_backend"] = None
        return state

    def _get_backend(self) -> EngineBackend:
        if self._backend is None:
            self._backend = create_backend(self.inner, self.spec)
        return self._backend

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        return self._get_backend().fitness_batch(genomes)


@register_backend("process")
class ProcessBackend(EngineBackend):
    """Multiprocess fan-out layered on the executor's pool machinery.

    Fitness batches are chunked across a
    :class:`~repro.parallel.executor.ProcessPoolEvaluator` whose
    workers each hold one ``inner``-backend instance (``vectorized`` by
    default, so every worker also gets the batched kernel). Burned-map
    batches — the small per-step Statistical Stage calls — run on a
    local inner backend to avoid shipping ``(n, H, W)`` masks back
    through the pipe.
    """

    def __init__(
        self,
        spec: StepSpec,
        inner: str = "vectorized",
        n_workers: int | None = None,
        chunks_per_worker: int = 4,
    ) -> None:
        super().__init__(spec)
        if inner == self.name:
            raise ReproError("process backend cannot nest itself")
        # imported here: executor pulls in multiprocessing, keep the
        # serial backends importable without it
        from repro.parallel.executor import ProcessPoolEvaluator

        self.inner = inner
        self._local: EngineBackend | None = None  # built on first map batch
        self._pool = ProcessPoolEvaluator(
            _SpecProblem(spec, inner),
            n_workers=n_workers,
            chunks_per_worker=chunks_per_worker,
        )
        self.n_workers = self._pool.n_workers

    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        return self._pool(genomes)

    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        if self._local is None:
            self._local = create_backend(self.inner, self.spec)
        return self._local.burned_map_batch(genomes)

    def close(self) -> None:
        self._pool.close()
