"""Pluggable execution backends for the batched simulation engine.

A backend turns a genome batch into Eq. 3 fitness values (and burned
maps) for one prediction step. Three implementations ship:

* ``reference`` — wraps today's per-scenario
  :class:`~repro.firelib.simulator.FireSimulator`; the semantics every
  other backend must reproduce bit-for-bit.
* ``vectorized`` — batches the Rothermel/ellipse math across the whole
  genome batch (one NumPy pass for the directional travel times of
  every spatially-uniform scenario), deduplicates bitwise-equal
  genomes, and runs the propagation through the flat-index Dijkstra
  kernels of :mod:`repro.engine.fastprop`.
* ``process`` — fans the batch out to a multiprocess pool layered on
  :class:`~repro.parallel.executor.ProcessPoolEvaluator`; each worker
  receives the step spec once (copy-on-write shared rasters under the
  ``fork`` start method) and evaluates its chunk with the vectorized
  kernel.

Backends register themselves in a name → class registry so new
execution strategies (GPU kernels, remote workers) plug in without
touching the engine facade.
"""

from __future__ import annotations

import math
import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.fitness import batch_jaccard, jaccard_fitness
from repro.core.scenario import ParameterSpace
from repro.engine.fastprop import FlatGrid
from repro.errors import ReproError, SimulationError
from repro.firelib.ellipse import eccentricity_from_effective_wind, ros_at_azimuth
from repro.firelib.moisture import Moisture
from repro.firelib.propagation import _offset_azimuth_deg, stencil
from repro.firelib.rothermel import ROS_EPSILON, FuelBed, spread
from repro.firelib.simulator import FireSimulator
from repro.grid.terrain import Terrain
from repro.obs import telemetry
from repro.units import METERS_TO_FEET, MPH_TO_FTMIN

#: Element budget for the three batched ``(chunk, n_classes)`` field
#: arrays of the heterogeneous-raster path (float64: ~32 MB per chunk);
#: the per-genome ``(D, bh, bw)`` travel block is not chunked.
_RASTER_BLOCK_ELEMENTS = 4_000_000

__all__ = [
    "StepSpec",
    "EngineBackend",
    "KernelCostModel",
    "ReferenceBackend",
    "VectorizedBackend",
    "ProcessBackend",
    "register_backend",
    "backend_names",
    "create_backend",
    "kernel_costs",
    "reset_kernel_costs",
]

#: Environment escape hatch pinning the heterogeneous-raster propagation
#: kernel: ``table`` forces ``run_table``, ``raster`` forces
#: ``run_raster``, anything else (or unset) leaves the adaptive model in
#: charge. Both kernels are bitwise-equivalent, so forcing is safe — the
#: hatch exists for tests and for debugging cost-model regressions.
FORCE_KERNEL_ENV = "repro_engine_force_kernel"


class KernelCostModel:
    """Measured per-unit kernel costs, EMA-smoothed over prior calls.

    The heterogeneous-raster path can propagate one genome through
    either ``run_table`` (edge lists over the ``u`` terrain classes:
    setup ~ ``u·D`` plus the Dijkstra sweep) or ``run_raster``
    (flattened per-cell planes: setup ~ ``box·D``). Which is faster
    depends on the machine, the box size and the class count — a fixed
    class/box ratio guesses it, this model *measures* it: every call
    updates an exponential moving average of that kernel's seconds per
    work unit, and the next choice takes the cheaper prediction.

    Until a kernel has a sample the model first defers to the static
    ratio rule, then measures the still-unsampled kernel once. Every
    ``probe_interval``-th adaptive choice deliberately takes the
    *other* kernel, so one outlier measurement (a GC pause inflating
    an EMA) cannot exclude a kernel for the rest of the process — its
    rate keeps refreshing at a bounded ~1/``probe_interval`` cost.
    Both kernels produce bitwise-identical times, so exploration never
    changes results.
    """

    def __init__(self, alpha: float = 0.2, probe_interval: int = 64) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError(f"EMA alpha must be in (0, 1], got {alpha}")
        if probe_interval < 0:
            raise ReproError(
                f"probe_interval must be >= 0, got {probe_interval}"
            )
        self.alpha = alpha
        self.probe_interval = probe_interval
        self.rates: dict[str, float] = {}
        self._choices = 0

    @staticmethod
    def work(kernel: str, n_classes: int, box_cells: int, n_dirs: int) -> int:
        """The cost-driving unit count of one kernel invocation."""
        if kernel == "table":
            return n_classes * n_dirs + box_cells
        return box_cells * n_dirs

    def observe(
        self,
        kernel: str,
        n_classes: int,
        box_cells: int,
        n_dirs: int,
        seconds: float,
    ) -> None:
        """Fold one measured invocation into the kernel's EMA rate."""
        work = self.work(kernel, n_classes, box_cells, n_dirs)
        if work <= 0 or seconds <= 0.0:
            return
        obs = telemetry()
        obs.histogram("repro_engine_kernel_seconds", kernel=kernel).observe(
            seconds
        )
        obs.counter("repro_engine_kernel_calls_total", kernel=kernel).inc()
        rate = seconds / work
        prev = self.rates.get(kernel)
        self.rates[kernel] = (
            rate if prev is None else prev + self.alpha * (rate - prev)
        )

    def choose(self, n_classes: int, box_cells: int, n_dirs: int) -> str:
        """Pick the predicted-cheaper kernel for the given shape."""
        forced = os.environ.get(FORCE_KERNEL_ENV, "").strip().lower()
        if forced in ("table", "raster"):
            return forced
        table_rate = self.rates.get("table")
        raster_rate = self.rates.get("raster")
        if table_rate is None and raster_rate is None:
            # un-primed: the static ratio rule (run_table pays O(u·D)
            # setup, run_raster O(box·D) — take the table only when it
            # is clearly the smaller)
            return "table" if 4 * n_classes <= box_cells else "raster"
        if table_rate is None:
            return "table"
        if raster_rate is None:
            return "raster"
        table_cost = table_rate * self.work("table", n_classes, box_cells, n_dirs)
        raster_cost = raster_rate * self.work(
            "raster", n_classes, box_cells, n_dirs
        )
        best = "table" if table_cost <= raster_cost else "raster"
        self._choices += 1
        if self.probe_interval and self._choices % self.probe_interval == 0:
            return "raster" if best == "table" else "table"
        return best

    def snapshot(self) -> dict[str, float]:
        """Serializable copy of the measured rates (fleet cost reports).

        Workers attach this to their wire telemetry so a coordinator's
        :class:`~repro.experiments.costs.UnitCostModel` can seed unit
        cost estimates from engine measurements made anywhere in the
        fleet.
        """
        return dict(self.rates)

    def restore(self, snapshot) -> None:
        """Fold a :meth:`snapshot` back in (existing rates EMA-merge).

        Unknown kernels adopt the snapshot rate outright; already
        measured kernels move toward it by ``alpha``, so restoring a
        stale snapshot cannot erase fresher local measurements.
        """
        if not isinstance(snapshot, dict):
            return
        for kernel, rate in snapshot.items():
            try:
                rate = float(rate)
            except (TypeError, ValueError):
                continue
            if rate <= 0.0:
                continue
            prev = self.rates.get(kernel)
            self.rates[str(kernel)] = (
                rate if prev is None else prev + self.alpha * (rate - prev)
            )


#: Process-wide cost model: measurements survive step and session
#: boundaries, so later steps start from calibrated rates.
_KERNEL_COSTS = KernelCostModel()


def kernel_costs() -> KernelCostModel:
    """The process-wide kernel cost model (snapshot it for the wire)."""
    return _KERNEL_COSTS


def reset_kernel_costs() -> None:
    """Drop all measured kernel rates (tests and benchmarks)."""
    _KERNEL_COSTS.rates.clear()
    _KERNEL_COSTS._choices = 0


@dataclass(frozen=True)
class StepSpec:
    """Everything a backend needs to evaluate one prediction step.

    The picklable, engine-level equivalent of
    :class:`repro.systems.problem.PredictionStepProblem` (which wraps
    one of these): terrain, the burned region the simulation restarts
    from, the real burned region it is scored against, and the step
    horizon.
    """

    terrain: Terrain
    start_burned: np.ndarray
    real_burned: np.ndarray
    horizon: float
    space: ParameterSpace
    n_neighbors: int = 8

    @classmethod
    def from_problem(cls, problem) -> "StepSpec":
        """Build a spec from anything shaped like a step problem.

        ``problem`` must expose ``terrain``, ``start_burned``,
        ``real_burned``, ``horizon``, ``space`` and ``n_neighbors`` —
        :class:`repro.systems.problem.PredictionStepProblem` does. The
        single construction point shared by the engine facade and the
        run-scoped session, so a new spec field cannot silently go
        missing on one path.
        """
        if isinstance(problem, cls):
            return problem
        return cls(
            terrain=problem.terrain,
            start_burned=problem.start_burned,
            real_burned=problem.real_burned,
            horizon=problem.horizon,
            space=problem.space,
            n_neighbors=problem.n_neighbors,
        )

    def __post_init__(self) -> None:
        start = np.asarray(self.start_burned, dtype=bool)
        real = np.asarray(self.real_burned, dtype=bool)
        if start.shape != self.terrain.shape:
            raise SimulationError(
                f"start_burned shape {start.shape} != terrain {self.terrain.shape}"
            )
        if real.shape != self.terrain.shape:
            raise SimulationError(
                f"real_burned shape {real.shape} != terrain {self.terrain.shape}"
            )
        if not start.any():
            raise SimulationError("start_burned must contain at least one cell")
        if self.horizon <= 0 or not math.isfinite(self.horizon):
            raise SimulationError(
                f"horizon must be a positive finite time: {self.horizon}"
            )
        object.__setattr__(self, "start_burned", start)
        object.__setattr__(self, "real_burned", real)


class EngineBackend(ABC):
    """One execution strategy for a step's genome batches."""

    #: Registry name (set by :func:`register_backend`).
    name: str = "?"

    def __init__(self, spec: StepSpec) -> None:
        self.spec = spec

    @abstractmethod
    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Eq. 3 fitness of each genome row, shape ``(n,)``."""

    @abstractmethod
    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Simulated burned masks at the step end, shape ``(n, H, W)``."""

    def close(self) -> None:
        """Release any held resources (idempotent; default no-op)."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[EngineBackend]] = {}


def register_backend(name: str):
    """Class decorator adding a backend to the registry under ``name``."""

    def deco(cls: type[EngineBackend]) -> type[EngineBackend]:
        if name in _REGISTRY:
            raise ReproError(f"backend {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, spec: StepSpec, **kwargs) -> EngineBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown engine backend {name!r}; choose from {backend_names()}"
        ) from None
    return cls(spec, **kwargs)


# ----------------------------------------------------------------------
# reference
# ----------------------------------------------------------------------
@register_backend("reference")
class ReferenceBackend(EngineBackend):
    """Per-scenario evaluation through :class:`FireSimulator`.

    This is exactly the pre-engine Worker loop: decode one genome,
    restart the fire from the step-start region, score the burned map.
    """

    def __init__(self, spec: StepSpec) -> None:
        super().__init__(spec)
        self._simulator = FireSimulator(spec.terrain, n_neighbors=spec.n_neighbors)

    def _burned_map(self, genome: np.ndarray) -> np.ndarray:
        scenario = self.spec.space.decode(genome)
        result = self._simulator.simulate_from_burned(
            scenario, self.spec.start_burned, self.spec.horizon
        )
        return result.burned()

    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        out = np.empty(genomes.shape[0], dtype=np.float64)
        for i, g in enumerate(genomes):
            out[i] = jaccard_fitness(
                self.spec.real_burned, self._burned_map(g), self.spec.start_burned
            )
        return out

    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        maps = np.empty((genomes.shape[0], *self.spec.terrain.shape), dtype=bool)
        for i, g in enumerate(genomes):
            maps[i] = self._burned_map(g)
        return maps


# ----------------------------------------------------------------------
# vectorized
# ----------------------------------------------------------------------
@register_backend("vectorized")
class VectorizedBackend(EngineBackend):
    """Batched NumPy kernel + flat-index Dijkstra propagation.

    For spatially-uniform scenarios (no fuel/slope/aspect rasters) the
    per-cell spread fields collapse to per-genome scalars, so the
    directional travel times of the **whole batch** are produced in one
    ``(n, D)`` NumPy pass. Heterogeneous slope/aspect rasters keep
    per-cell fields, but the Rothermel/ellipse math is vectorized over
    the **genome axis** with the rasters broadcast — one NumPy pass per
    fuel-bed group instead of one per genome — and the propagation runs
    through the flat-index Dijkstra kernels. Bitwise-identical rows are
    simulated once and broadcast back.
    """

    def __init__(self, spec: StepSpec) -> None:
        super().__init__(spec)
        terrain = spec.terrain
        self._offsets = stencil(spec.n_neighbors)
        self._blocked = terrain.blocked_mask()
        cell_ft = terrain.cell_size * METERS_TO_FEET
        self._cell_ft = cell_ft
        self._azimuths = np.array(
            [_offset_azimuth_deg(dr, dc) for dr, dc in self._offsets]
        )
        self._distances = np.array(
            [cell_ft * math.hypot(dr, dc) for dr, dc in self._offsets]
        )
        # Per-cell variation decides the propagation mode: scalar
        # scenarios collapse to D weights, fuel-only rasters to a
        # (fuel code × D) table, anything with slope/aspect rasters
        # keeps the full (D, H, W) travel array.
        if terrain.slope is None and terrain.aspect is None:
            self._mode = "uniform" if terrain.fuel is None else "fuel_table"
        else:
            self._mode = "raster"
        # Padded flat grid + seeded-state template, shared by the whole
        # batch: geometry and the step-start burned region are fixed.
        # Seed cells in row-major order, simulate_from_burned's ordering.
        seed_rows, seed_cols = np.nonzero(spec.start_burned)
        self._seed_cells = [
            (int(r), int(c)) for r, c in zip(seed_rows, seed_cols)
        ]
        self._grid = FlatGrid(terrain.shape, self._offsets, self._blocked)
        self._seeded = self._grid.seed(self._seed_cells)
        self._seed_bbox = (
            (int(seed_rows.min()), int(seed_rows.max())),
            (int(seed_cols.min()), int(seed_cols.max())),
        )
        # Reachability-clipped FlatGrids of the heterogeneous path,
        # keyed by box bounds (reused across genomes and batches).
        self._box_grids: dict[tuple[int, int, int, int], tuple] = {}
        #: Heterogeneous-path propagation calls by chosen kernel.
        self.kernel_calls: dict[str, int] = {"table": 0, "raster": 0}
        if self._mode == "fuel_table":
            self._codes = [int(c) for c in np.unique(terrain.fuel)]
            pad, width = self._grid.pad, self._grid.width
            classes = np.zeros(
                (terrain.rows + 2 * pad, width), dtype=np.int64
            )
            classes[pad : pad + terrain.rows, pad : pad + terrain.cols] = (
                np.searchsorted(self._codes, terrain.fuel)
            )
            self._class_flat = classes.reshape(-1).tolist()
        elif self._mode == "raster":
            # Deduplicate cells into terrain classes: every per-cell
            # quantity of the Rothermel/ellipse math depends only on
            # the (fuel, slope, aspect) tuple, so fields and travel
            # times are computed once per distinct tuple and gathered
            # back — typically tens of classes for thousands of cells
            # on DEM-derived (quantized) rasters.
            columns = []
            for raster in (terrain.fuel, terrain.slope, terrain.aspect):
                if raster is not None:
                    columns.append(
                        np.asarray(raster, dtype=np.float64).reshape(-1)
                    )
            uniq, inverse = np.unique(
                np.stack(columns, axis=1), axis=0, return_inverse=True
            )
            self._class_of_cell = inverse.reshape(terrain.shape)
            col = 0
            if terrain.fuel is not None:
                self._class_fuel = uniq[:, col].astype(np.int64)
                col += 1
            else:
                self._class_fuel = None
            if terrain.slope is not None:
                self._class_slope = uniq[:, col]
                col += 1
            else:
                self._class_slope = None
            self._class_aspect = uniq[:, col] if terrain.aspect is not None else None
            self._n_classes = uniq.shape[0]

    # ------------------------------------------------------------------
    def _uniform_weight_matrix(self, scenarios: Sequence) -> np.ndarray:
        """Travel-time weights for a batch of uniform scenarios, ``(n, D)``.

        The Rothermel ellipse of each scenario is three scalars; the
        per-direction spread rates of the whole batch then come from a
        single broadcast ``ros_at_azimuth`` evaluation.
        """
        ros = np.empty(len(scenarios), dtype=np.float64)
        heading = np.empty_like(ros)
        ecc = np.empty_like(ros)
        for i, sc in enumerate(scenarios):
            moisture = Moisture.from_percent(sc.m1, sc.m10, sc.m100, sc.mherb)
            result = spread(
                int(sc.model),
                moisture,
                float(sc.wind_speed),
                float(sc.wind_dir),
                float(sc.slope),
                float(sc.aspect),
            )
            ros[i] = result.ros_max
            heading[i] = result.dir_max_deg
            ecc[i] = result.eccentricity
        rates = ros_at_azimuth(
            ros[:, None], heading[:, None], ecc[:, None], self._azimuths[None, :]
        )
        with np.errstate(divide="ignore"):
            return np.where(
                rates > ROS_EPSILON, self._distances[None, :] / rates, np.inf
            )

    def _direction_weights(self, result) -> np.ndarray:
        """Per-direction travel times, ``(D,)``, of one scalar ellipse."""
        rates = ros_at_azimuth(
            result.ros_max,
            result.dir_max_deg,
            result.eccentricity,
            self._azimuths,
        )
        with np.errstate(divide="ignore"):
            return np.where(rates > ROS_EPSILON, self._distances / rates, np.inf)

    def _fuel_weight_table(self, scenario) -> list[list[float]]:
        """``(fuel code × D)`` travel-time table for one scenario."""
        moisture = Moisture.from_percent(
            scenario.m1, scenario.m10, scenario.m100, scenario.mherb
        )
        table: list[list[float]] = []
        for code in self._codes:
            if code == 0:
                table.append([np.inf] * len(self._offsets))
                continue  # unburnable: also blocked, rows never read
            result = spread(
                code,
                moisture,
                float(scenario.wind_speed),
                float(scenario.wind_dir),
                float(scenario.slope),
                float(scenario.aspect),
            )
            table.append(self._direction_weights(result).tolist())
        return table

    def _ignition_times(self, scenario, weights: np.ndarray | None) -> np.ndarray:
        spec = self.spec
        if weights is not None:
            return self._grid.run_uniform(
                weights.tolist(), self._seeded, horizon=spec.horizon
            )
        return self._grid.run_table(
            self._fuel_weight_table(scenario),
            self._class_flat,
            self._seeded,
            horizon=spec.horizon,
        )

    # ------------------------------------------------------------------
    # Heterogeneous slope/aspect rasters: genome-axis batched fields
    # ------------------------------------------------------------------
    def _raster_fields(
        self, scenarios: Sequence
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-class ellipse fields for a whole batch, each ``(n, u)``.

        The genome-axis vectorization of
        :meth:`repro.firelib.simulator.FireSimulator.spread_fields`:
        scenarios are grouped by fuel bed (the scenario ``Model`` on
        fuel-free terrains, each raster fuel code otherwise) and the
        wind–slope vector combination of every group is computed in one
        broadcast NumPy pass over ``(genomes × terrain classes)`` — the
        same elementwise float operations the reference path performs
        per genome per cell, deduplicated to the ``u`` distinct
        (fuel, slope, aspect) tuples, so the gathered per-cell values
        are bitwise identical.
        """
        n = len(scenarios)
        ros = np.zeros((n, self._n_classes), dtype=np.float64)
        dir_ = np.zeros((n, self._n_classes), dtype=np.float64)
        ecc = np.zeros((n, self._n_classes), dtype=np.float64)
        if self._class_fuel is None:
            by_model: dict[int, list[int]] = {}
            for i, sc in enumerate(scenarios):
                by_model.setdefault(int(sc.model), []).append(i)
            for code, rows in by_model.items():
                self._fill_raster_group(
                    code, rows, scenarios, self._class_slope,
                    self._class_aspect, None, ros, dir_, ecc,
                )
        else:
            all_rows = list(range(n))
            for code in np.unique(self._class_fuel):
                if code == 0:
                    continue  # unburnable: fields stay zero, cells blocked
                classes = np.flatnonzero(self._class_fuel == code)
                self._fill_raster_group(
                    int(code),
                    all_rows,
                    scenarios,
                    (
                        self._class_slope[classes]
                        if self._class_slope is not None
                        else None
                    ),
                    (
                        self._class_aspect[classes]
                        if self._class_aspect is not None
                        else None
                    ),
                    classes,
                    ros,
                    dir_,
                    ecc,
                )
        return ros, dir_, ecc

    def _fill_raster_group(
        self,
        code: int,
        rows: list[int],
        scenarios: Sequence,
        slope_cells: np.ndarray | None,
        aspect_cells: np.ndarray | None,
        cells: np.ndarray | None,
        out_ros: np.ndarray,
        out_dir: np.ndarray,
        out_ecc: np.ndarray,
    ) -> None:
        """One fuel bed × all its genomes, broadcast over the cells.

        ``slope_cells``/``aspect_cells`` are the raster values gathered
        at ``cells`` (``None`` = the scenario scalar applies, varying
        per genome); ``cells`` are the flat indices to scatter into
        (``None`` = the whole grid).
        """
        bed = FuelBed.for_model(code)
        r0 = np.empty(len(rows), dtype=np.float64)
        phi_w = np.empty_like(r0)
        wind_dir = np.empty_like(r0)
        for j, i in enumerate(rows):
            sc = scenarios[i]
            moisture = Moisture.from_percent(sc.m1, sc.m10, sc.m100, sc.mherb)
            r0[j] = bed.no_wind_rate(moisture)
            phi_w[j] = bed.phi_wind(
                max(0.0, float(sc.wind_speed)) * MPH_TO_FTMIN
            )
            wind_dir[j] = float(sc.wind_dir)
        # Non-spreading beds short-circuit to all-zero fields in the
        # reference path; keep those rows at the zero initialisation.
        alive = r0 > ROS_EPSILON
        if not alive.any():
            return
        live_rows = np.asarray(rows, dtype=np.intp)[alive]
        r0 = r0[alive, None]
        wnd_rate = (r0[:, 0] * phi_w[alive])[:, None]
        wind_dir = wind_dir[alive, None]
        if slope_cells is not None:
            slope = slope_cells[None, :]
        else:
            slope = np.array(
                [float(scenarios[i].slope) for i in live_rows], dtype=np.float64
            )[:, None]
        if aspect_cells is not None:
            aspect = aspect_cells[None, :]
        else:
            aspect = np.array(
                [float(scenarios[i].aspect) for i in live_rows], dtype=np.float64
            )[:, None]

        # The fireLib wind–slope vector combination, exactly as in
        # repro.firelib.rothermel.spread, with genomes down the rows.
        phi_s = bed.phi_slope(slope)
        upslope = np.mod(aspect + 180.0, 360.0)
        split = np.radians(np.mod(wind_dir - upslope, 360.0))
        slp_rate = r0 * phi_s
        x = slp_rate + wnd_rate * np.cos(split)
        y = wnd_rate * np.sin(split)
        rv = np.hypot(x, y)
        ros_max = r0 + rv
        phi_ew = rv / r0
        dir_max = np.mod(upslope + np.degrees(np.arctan2(y, x)), 360.0)
        dir_max = np.where(rv > ROS_EPSILON, dir_max, 0.0)
        ecc = eccentricity_from_effective_wind(bed.effective_wind(phi_ew))
        ecc = np.where(rv > ROS_EPSILON, ecc, 0.0)

        m = out_ros.shape[1] if cells is None else len(cells)
        target = (len(live_rows), m)
        if cells is None:
            out_ros[live_rows] = np.broadcast_to(ros_max, target)
            out_dir[live_rows] = np.broadcast_to(dir_max, target)
            out_ecc[live_rows] = np.broadcast_to(ecc, target)
        else:
            scatter = np.ix_(live_rows, cells)
            out_ros[scatter] = np.broadcast_to(ros_max, target)
            out_dir[scatter] = np.broadcast_to(dir_max, target)
            out_ecc[scatter] = np.broadcast_to(ecc, target)

    def _reach_box(self, ros_peak: float) -> tuple[slice, slice]:
        """Subgrid that provably contains everything the fire can reach.

        Every stencil move advances the Chebyshev distance by at most
        ``max(|dr|, |dc|) ≤ hypot(dr, dc)`` cells while costing at least
        ``cell_ft·hypot(dr, dc) / ros_peak`` minutes, so reaching a cell
        ``L`` Chebyshev-cells away from the seed set takes at least
        ``L·cell_ft / ros_peak`` minutes. Cells beyond
        ``horizon·ros_peak / cell_ft`` therefore stay unburned in the
        reference propagation too — restricting travel-time assembly
        and Dijkstra to this box cannot change the output.

        The radius is rounded up to a multiple of 8 cells: enlarging
        the box never changes the output, and quantizing collapses the
        near-equal radii of a batch's many ros_max values onto a few
        shared, cached box grids instead of one per distinct radius.
        """
        rows, cols = self.spec.terrain.shape
        if ros_peak > ROS_EPSILON:
            radius = int(math.ceil(self.spec.horizon * ros_peak / self._cell_ft)) + 2
            radius = -(-radius // 8) * 8
        else:
            radius = 0
        (r0, r1), (c0, c1) = self._seed_bbox
        return (
            slice(max(0, r0 - radius), min(rows, r1 + 1 + radius)),
            slice(max(0, c0 - radius), min(cols, c1 + 1 + radius)),
        )

    def _box_grid(self, box: tuple[slice, slice]) -> tuple:
        """Per-box propagation state, cached by box bounds.

        Returns ``(grid, seeded, class_flat, class_of_cell)``: the
        :class:`FlatGrid` of the box, its seeded state, the padded flat
        class indices (``run_table`` input) and the unpadded class map
        of the box.
        """
        key = (box[0].start, box[0].stop, box[1].start, box[1].stop)
        cached = self._box_grids.get(key)
        if cached is None:
            rows, cols = key[1] - key[0], key[3] - key[2]
            grid = FlatGrid((rows, cols), self._offsets, self._blocked[box])
            seeded = grid.seed(
                [(r - key[0], c - key[2]) for r, c in self._seed_cells]
            )
            pad = grid.pad
            classes = np.zeros(
                (rows + 2 * pad, grid.width), dtype=np.int64
            )
            box_classes = self._class_of_cell[box]
            classes[pad : pad + rows, pad : pad + cols] = box_classes
            cached = self._box_grids[key] = (
                grid,
                seeded,
                classes.reshape(-1).tolist(),
                box_classes,
            )
        return cached

    def _raster_burned(self, scenarios: Sequence) -> np.ndarray:
        """Burned masks of a deduplicated heterogeneous-raster batch.

        Fields come from the genome-axis, class-deduplicated batched
        kernel; per genome, the ``(u, D)`` travel-time table follows in
        one broadcast pass and the Dijkstra run is clipped to the
        reachability box of :meth:`_reach_box`, so slow/wet scenarios
        (the bulk of a Table I sample) cost a handful of cells instead
        of the whole grid. Per genome, the propagation kernel —
        ``run_table`` (class-axis tables, cheap for quantized DEM
        rasters) vs ``run_raster`` (per-cell planes, cheap for
        continuous rasters) — is chosen by the process-wide
        :class:`KernelCostModel` from measured per-unit costs; the
        ``repro_engine_force_kernel`` environment variable pins one
        kernel for tests. Both kernels are bitwise-equivalent, so the
        choice only ever moves time, never results.
        """
        spec = self.spec
        maps = np.zeros((len(scenarios), *spec.terrain.shape), dtype=bool)
        n_dirs = len(self._offsets)
        chunk = max(
            1, _RASTER_BLOCK_ELEMENTS // max(1, 3 * self._n_classes)
        )
        for lo in range(0, len(scenarios), chunk):
            sub = scenarios[lo : lo + chunk]
            ros, dir_, ecc = self._raster_fields(sub)
            for k in range(len(sub)):
                # Class max == cell max: every class occurs on ≥1 cell.
                box = self._reach_box(float(ros[k].max()))
                grid, seeded, class_flat, box_classes = self._box_grid(box)
                # One broadcast pass for all D directions — over the
                # class axis (run_table) or the box's gathered per-cell
                # fields (run_raster). Both run the identical
                # elementwise ops of the per-direction, per-cell
                # reference loop; the assembly cost is part of what the
                # cost model measures.
                kernel = _KERNEL_COSTS.choose(
                    self._n_classes, box_classes.size, n_dirs
                )
                start = time.perf_counter()
                if kernel == "table":
                    rates = ros_at_azimuth(
                        ros[k][None, :],
                        dir_[k][None, :],
                        ecc[k][None, :],
                        self._azimuths[:, None],
                    )
                    with np.errstate(divide="ignore"):
                        table = np.where(
                            rates > ROS_EPSILON,
                            self._distances[:, None] / rates,
                            np.inf,
                        )  # (D, u)
                    # Blocked cells never enter the heap, so sharing a
                    # table row with open cells cannot leak fire out of
                    # them — no per-cell blocked override needed.
                    times = grid.run_table(
                        table.T.tolist(),
                        class_flat,
                        seeded,
                        horizon=spec.horizon,
                    )
                else:
                    rates = ros_at_azimuth(
                        ros[k][box_classes][None],
                        dir_[k][box_classes][None],
                        ecc[k][box_classes][None],
                        self._azimuths[:, None, None],
                    )
                    with np.errstate(divide="ignore"):
                        travel = np.where(
                            rates > ROS_EPSILON,
                            self._distances[:, None, None] / rates,
                            np.inf,
                        )  # (D, bh, bw)
                    travel[:, self._blocked[box]] = np.inf
                    times = grid.run_raster(
                        travel, seeded, horizon=spec.horizon
                    )
                _KERNEL_COSTS.observe(
                    kernel,
                    self._n_classes,
                    box_classes.size,
                    n_dirs,
                    time.perf_counter() - start,
                )
                self.kernel_calls[kernel] += 1
                maps[lo + k][box] = times <= spec.horizon
        return maps

    def _unique_burned(self, genomes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Burned masks of the deduplicated batch + inverse index map."""
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        uniq, inverse = np.unique(genomes, axis=0, return_inverse=True)
        scenarios = [self.spec.space.decode(g) for g in uniq]
        if self._mode == "raster":
            return self._raster_burned(scenarios), inverse.reshape(-1)
        weight_rows = (
            self._uniform_weight_matrix(scenarios)
            if self._mode == "uniform"
            else None
        )
        maps = np.empty((len(scenarios), *self.spec.terrain.shape), dtype=bool)
        for k, sc in enumerate(scenarios):
            times = self._ignition_times(
                sc, weight_rows[k] if weight_rows is not None else None
            )
            maps[k] = times <= self.spec.horizon
        return maps, inverse.reshape(-1)

    # ------------------------------------------------------------------
    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        maps, inverse = self._unique_burned(genomes)
        fits = batch_jaccard(
            self.spec.real_burned, maps, pre_burned=self.spec.start_burned
        )
        return fits[inverse]

    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        maps, inverse = self._unique_burned(genomes)
        return maps[inverse]


# ----------------------------------------------------------------------
# process
# ----------------------------------------------------------------------
class _SpecProblem:
    """Picklable shim shipping a :class:`StepSpec` into pool workers.

    Satisfies :class:`repro.parallel.executor.BatchProblem`; the inner
    backend is rebuilt lazily after unpickling so only the spec crosses
    the process boundary (once, at pool start).
    """

    def __init__(self, spec: StepSpec, inner: str) -> None:
        self.spec = spec
        self.inner = inner
        self._backend: EngineBackend | None = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_backend"] = None
        return state

    def _get_backend(self) -> EngineBackend:
        if self._backend is None:
            self._backend = create_backend(self.inner, self.spec)
        return self._backend

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        return self._get_backend().fitness_batch(genomes)


@register_backend("process")
class ProcessBackend(EngineBackend):
    """Multiprocess fan-out layered on the executor's pool machinery.

    Fitness batches are chunked across a
    :class:`~repro.parallel.executor.ProcessPoolEvaluator` whose
    workers each hold one ``inner``-backend instance (``vectorized`` by
    default, so every worker also gets the batched kernel). Burned-map
    batches — the small per-step Statistical Stage calls — run on a
    local inner backend to avoid shipping ``(n, H, W)`` masks back
    through the pipe.

    When ``pool`` is given (a run-scoped session's persistent pool),
    the backend broadcasts this step's spec to the standing workers
    via :meth:`~repro.parallel.executor.ProcessPoolEvaluator.
    update_problem` instead of forking a fresh pool, and :meth:`close`
    leaves the pool running for the next step.
    """

    def __init__(
        self,
        spec: StepSpec,
        inner: str = "vectorized",
        n_workers: int | None = None,
        chunks_per_worker: int = 4,
        pool=None,
    ) -> None:
        super().__init__(spec)
        if inner == self.name:
            raise ReproError("process backend cannot nest itself")
        self.inner = inner
        self._local: EngineBackend | None = None  # built on first map batch
        if pool is not None:
            self._owns_pool = False
            self._pool = pool
            pool.update_problem(_SpecProblem(spec, inner))
        else:
            # imported here: executor pulls in multiprocessing, keep the
            # serial backends importable without it
            from repro.parallel.executor import ProcessPoolEvaluator

            self._owns_pool = True
            self._pool = ProcessPoolEvaluator(
                _SpecProblem(spec, inner),
                n_workers=n_workers,
                chunks_per_worker=chunks_per_worker,
            )
        self.n_workers = self._pool.n_workers

    def fitness_batch(self, genomes: np.ndarray) -> np.ndarray:
        return self._pool(genomes)

    def burned_map_batch(self, genomes: np.ndarray) -> np.ndarray:
        if self._local is None:
            self._local = create_backend(self.inner, self.spec)
        return self._local.burned_map_batch(genomes)

    def close(self) -> None:
        if self._owns_pool:
            self._pool.close()
