"""The :class:`SimulationEngine` facade — one call per genome batch.

The engine is the single entry point the prediction systems use on the
hot path. It composes three layers:

1. an LRU :class:`~repro.engine.cache.ScenarioResultCache` keyed on
   quantized genomes, so repeated individuals (GA elitism, DE
   restarts) skip simulation entirely;
2. a pluggable :class:`~repro.engine.backends.EngineBackend` selected
   by name (``reference`` / ``vectorized`` / ``process``);
3. evaluation accounting (requests vs. actual simulations) surfaced to
   the per-step results and the reporting layer.

The engine satisfies the ``FitnessFunction`` contract of the
evolutionary algorithms (callable ``(n, d) → (n,)`` with
``evaluations`` and ``close()``), so it drops in wherever a
:class:`~repro.parallel.executor.SerialEvaluator` was used.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine.backends import StepSpec, backend_names, create_backend
from repro.engine.cache import (
    DEFAULT_CACHE_DECIMALS,
    CacheStats,
    ScenarioResultCache,
)
from repro.errors import ParallelError, ReproError
from repro.obs import telemetry

__all__ = ["EngineStats", "SimulationEngine"]


@dataclass
class EngineStats:
    """Per-engine accounting, embedded in each step's result record.

    ``evaluations`` counts genomes requested through the engine;
    ``simulations`` counts genomes actually handed to the backend — the
    difference is work the cache (and backend-level deduplication)
    saved. ``map_simulations`` counts genomes simulated for burned-map
    batches (the Statistical Stage), which never touch the cache.
    """

    backend: str = "reference"
    n_workers: int = 1
    evaluations: int = 0
    simulations: int = 0
    map_simulations: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "evaluations": self.evaluations,
            "simulations": self.simulations,
            "map_simulations": self.map_simulations,
            "cache": self.cache.to_dict(),
        }


class SimulationEngine:
    """Evaluates whole genome batches for one prediction step.

    Parameters
    ----------
    spec:
        The step description (terrain, start/real burned regions,
        horizon, parameter space, stencil).
    backend:
        Registered backend name. ``process`` fans out to a pool of
        exactly ``n_workers`` processes with the vectorized kernel
        inside each worker (pair it with a real worker count); any
        other backend combined with ``n_workers > 1`` is likewise
        wrapped in the pool with itself as the worker-side kernel.
    n_workers:
        Worker processes (1 = in-process for the serial backends, a
        single-worker pool for ``process``).
    cache_size:
        LRU capacity of the scenario-result cache; 0 disables caching
        (the default — cached runs are not bitwise-reproducible, see
        :mod:`repro.engine.cache`).
    cache_decimals:
        Genome quantization used for cache keys.
    cache:
        Optional externally-owned cache (a
        :class:`~repro.engine.cache.SessionCacheView` from an
        :class:`~repro.engine.session.EngineSession`); overrides
        ``cache_size``/``cache_decimals`` when given.
    pool:
        Optional externally-owned
        :class:`~repro.parallel.executor.ProcessPoolEvaluator` reused
        for the pooled backends; the engine then never forks its own
        workers and ``close()`` leaves the pool running.
    """

    def __init__(
        self,
        spec: StepSpec,
        backend: str = "reference",
        n_workers: int = 1,
        cache_size: int = 0,
        cache_decimals: int = DEFAULT_CACHE_DECIMALS,
        cache=None,
        pool=None,
    ) -> None:
        if n_workers < 1:
            raise ReproError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in backend_names():
            raise ReproError(
                f"unknown engine backend {backend!r}; choose from {backend_names()}"
            )
        self.spec = spec
        if backend == "process":
            self._backend = create_backend(
                "process", spec, n_workers=n_workers, pool=pool
            )
        elif n_workers > 1:
            self._backend = create_backend(
                "process", spec, inner=backend, n_workers=n_workers, pool=pool
            )
        else:
            self._backend = create_backend(backend, spec)
        self._cache = (
            cache
            if cache is not None
            else ScenarioResultCache(capacity=cache_size, decimals=cache_decimals)
        )
        self.stats = EngineStats(
            backend=backend,
            n_workers=getattr(self._backend, "n_workers", 1),
            cache=self._cache.stats,
        )
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def from_problem(
        cls,
        problem,
        backend: str = "reference",
        n_workers: int = 1,
        cache_size: int = 0,
        cache_decimals: int = DEFAULT_CACHE_DECIMALS,
    ) -> "SimulationEngine":
        """Build an engine from anything shaped like a step problem.

        ``problem`` must expose ``terrain``, ``start_burned``,
        ``real_burned``, ``horizon``, ``space`` and ``n_neighbors`` —
        :class:`repro.systems.problem.PredictionStepProblem` does.
        """
        spec = StepSpec.from_problem(problem)
        return cls(
            spec,
            backend=backend,
            n_workers=n_workers,
            cache_size=cache_size,
            cache_decimals=cache_decimals,
        )

    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """The selected backend's registry name."""
        return self.stats.backend

    @property
    def evaluations(self) -> int:
        """Genomes requested through the engine (evaluator contract)."""
        return self.stats.evaluations

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the scenario-result cache."""
        return self._cache.stats

    # ------------------------------------------------------------------
    def __call__(self, genomes: np.ndarray) -> np.ndarray:
        return self.evaluate_batch(genomes)

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Fitness vector of a genome matrix, cache-first."""
        if self._closed:
            raise ParallelError("engine already closed")
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        n = genomes.shape[0]
        self.stats.evaluations += n
        if n == 0:
            return np.zeros(0)
        obs = telemetry()
        obs.counter(
            "repro_engine_evaluations_total", backend=self.backend_name
        ).inc(n)

        if not self._cache.enabled:
            values = self._timed_fitness(genomes, n, obs)
            self.stats.simulations += n
            obs.counter(
                "repro_engine_cache_misses_total", backend=self.backend_name
            ).inc(n)
            return values

        out = np.empty(n, dtype=np.float64)
        pending: dict[bytes, list[int]] = {}
        for i, g in enumerate(genomes):
            key = self._cache.key(g)
            hit = self._cache.get(key)
            if hit is None:
                pending.setdefault(key, []).append(i)
            else:
                out[i] = hit
        misses = sum(len(indices) for indices in pending.values())
        obs.counter(
            "repro_engine_cache_hits_total", backend=self.backend_name
        ).inc(n - misses)
        obs.counter(
            "repro_engine_cache_misses_total", backend=self.backend_name
        ).inc(misses)
        if pending:
            rows = [indices[0] for indices in pending.values()]
            values = self._timed_fitness(genomes[rows], len(rows), obs)
            self.stats.simulations += len(rows)
            for (key, indices), value in zip(pending.items(), values):
                self._cache.put(key, float(value))
                out[indices] = value
        return out

    def burned_maps(self, genomes: np.ndarray) -> np.ndarray:
        """Simulated burned masks (the Statistical Stage input).

        Maps bypass the cache — only fitness values are cached — so the
        SS always aggregates freshly simulated maps.
        """
        if self._closed:
            raise ParallelError("engine already closed")
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        self.stats.map_simulations += genomes.shape[0]
        return self._backend.burned_map_batch(genomes)

    def _timed_fitness(self, genomes, expected: int, obs) -> np.ndarray:
        """Backend fitness batch, timed into the engine-batch histogram."""
        started = time.perf_counter()
        values = self._fitness(genomes, expected)
        elapsed = time.perf_counter() - started
        obs.histogram(
            "repro_engine_batch_seconds", backend=self.backend_name
        ).observe(elapsed)
        obs.counter(
            "repro_engine_simulations_total", backend=self.backend_name
        ).inc(expected)
        return values

    def _fitness(self, genomes: np.ndarray, expected: int) -> np.ndarray:
        values = np.asarray(
            self._backend.fitness_batch(genomes), dtype=np.float64
        ).reshape(-1)
        if values.shape != (expected,):
            raise ParallelError(
                f"backend {self.backend_name!r} returned {values.shape[0]} "
                f"fitness values for {expected} genomes"
            )
        return values

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources and freeze the stats (idempotent).

        After closing, :attr:`stats` is a detached snapshot: later
        mutation of the (possibly shared, session-owned) cache counters
        can no longer alter what this engine reports. Externally-owned
        pools are left running.
        """
        if not self._closed:
            self._backend.close()
            self.stats = EngineStats(
                backend=self.stats.backend,
                n_workers=self.stats.n_workers,
                evaluations=self.stats.evaluations,
                simulations=self.stats.simulations,
                map_simulations=self.stats.map_simulations,
                cache=CacheStats(**self.stats.cache.to_dict()),
            )
            self._closed = True

    def __enter__(self) -> "SimulationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
