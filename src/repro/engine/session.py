"""Run-scoped engine session: persistent backends across prediction steps.

The predictive loop (OS → SS → PS → CS per step) used to rebuild the
whole :class:`~repro.engine.core.SimulationEngine` — process pool, LRU
cache, precomputed tables — inside the hot loop, once per step. An
:class:`EngineSession` owns everything whose lifetime is really the
*run*:

* the **worker pool** (``process`` backend, or any backend wrapped by
  ``n_workers > 1``): forked once, then each step's terrain reaches the
  standing workers as a lightweight update message
  (:meth:`~repro.parallel.executor.ProcessPoolEvaluator.update_problem`)
  instead of a re-fork;
* the **cross-step result cache**
  (:class:`~repro.engine.cache.SessionResultCache`), keyed on
  ``(step-context digest, quantized genome)`` so results survive step
  boundaries and repeated step contexts — re-calibration, comparing
  systems on the same fire, sweep repeats — skip the simulator
  entirely;
* run-level accounting (:class:`SessionStats`) threaded into
  :class:`~repro.systems.results.RunResult` and the reporting layer.

Per step, :meth:`EngineSession.for_step` hands out an ordinary
:class:`~repro.engine.core.SimulationEngine` view wired to the shared
pool and cache; closing the view is cheap and never tears down the
session-owned resources.

Sessions can also be shared *across systems* (the experiment layer's
``compare``/sweep groups): each
:meth:`~repro.systems.base.PredictionSystem.run` borrowing the session
enters a :class:`SessionScope`, whose ``stats`` are the counter deltas
of that system alone — per-system views over the one shared cache.
Hits served from entries another scope inserted are counted as
``cross_system_hits``: the reuse only session sharing can provide.
Ownership stays with whoever constructed the session — borrowing a
session through ``run(..., session=...)`` never closes it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.engine.backends import StepSpec, backend_names
from repro.engine.cache import (
    DEFAULT_CACHE_DECIMALS,
    CacheStats,
    SessionResultCache,
)
from repro.engine.core import SimulationEngine
from repro.errors import ReproError
from repro.obs import telemetry

__all__ = [
    "EngineSession",
    "SessionScope",
    "SessionStats",
    "step_context_digest",
]


def step_context_digest(spec: StepSpec) -> bytes:
    """Stable digest of everything that determines a step's fitness.

    Two specs share a digest exactly when a genome's Eq. 3 fitness is
    guaranteed identical under both: terrain geometry and rasters, the
    start/real burned regions, the horizon, the stencil and the
    parameter space all feed the hash.
    """
    h = hashlib.sha256()
    terrain = spec.terrain
    h.update(np.asarray([terrain.rows, terrain.cols], dtype=np.int64).tobytes())
    h.update(np.float64(terrain.cell_size).tobytes())
    for name in ("fuel", "slope", "aspect", "unburnable"):
        arr = getattr(terrain, name)
        if arr is None:
            h.update(b"\x00")
        else:
            h.update(b"\x01")
            h.update(np.ascontiguousarray(arr).tobytes())
    h.update(np.packbits(spec.start_burned).tobytes())
    h.update(np.packbits(spec.real_burned).tobytes())
    h.update(np.float64(spec.horizon).tobytes())
    h.update(np.int64(spec.n_neighbors).tobytes())
    for p in spec.space.specs:
        h.update(
            f"{p.name}:{p.low}:{p.high}:{int(p.integer)}:{int(p.circular)}".encode()
        )
    return h.digest()


@dataclass
class SessionStats:
    """Run-level engine accounting (the ``session`` block of a run).

    ``cache`` aggregates the cross-step store's hit/miss/eviction
    counters over the whole run; ``cross_step_hits`` is the subset of
    hits served from an entry inserted by an *earlier* step view — the
    reuse a per-step engine could never provide. ``cross_system_hits``
    is the subset served from an entry a *different scope* (another
    system sharing the session; repeat runs of one system share a
    scope) inserted — the reuse only session sharing provides.
    ``systems`` counts the distinct scope labels entered;
    ``pool_reuses`` counts steps that reused the standing worker pool
    instead of forking one.
    """

    backend: str = "reference"
    n_workers: int = 1
    steps: int = 0
    contexts: int = 0
    systems: int = 0
    pool_reuses: int = 0
    cross_step_hits: int = 0
    cross_system_hits: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    def minus(self, earlier: "SessionStats") -> "SessionStats":
        """Counter-wise difference against an earlier snapshot.

        The per-scope stat view over a shared session: everything that
        happened between two snapshots of one monotonically growing
        stats stream.
        """
        return SessionStats(
            backend=self.backend,
            n_workers=self.n_workers,
            steps=self.steps - earlier.steps,
            contexts=self.contexts - earlier.contexts,
            systems=self.systems - earlier.systems,
            pool_reuses=self.pool_reuses - earlier.pool_reuses,
            cross_step_hits=self.cross_step_hits - earlier.cross_step_hits,
            cross_system_hits=(
                self.cross_system_hits - earlier.cross_system_hits
            ),
            cache=CacheStats(
                hits=self.cache.hits - earlier.cache.hits,
                misses=self.cache.misses - earlier.cache.misses,
                evictions=self.cache.evictions - earlier.cache.evictions,
            ),
        )

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "steps": self.steps,
            "contexts": self.contexts,
            "systems": self.systems,
            "pool_reuses": self.pool_reuses,
            "cross_step_hits": self.cross_step_hits,
            "cross_system_hits": self.cross_system_hits,
            "cache": self.cache.to_dict(),
        }


class SessionScope:
    """One consumer's window onto a shared :class:`EngineSession`.

    A scope is entered per system run borrowing the session
    (:meth:`EngineSession.scoped`); its :attr:`stats` are the session's
    counter deltas between scope entry and exit — what *this* system
    contributed and reused, even though the cache and pool are shared.
    Exiting the scope freezes the delta; reading :attr:`stats` while
    the scope is active returns a live delta.

    Scopes are sequential by design (one active scope per session);
    they never own session resources — closing/exiting a scope never
    touches the pool or the cache.
    """

    def __init__(self, session: "EngineSession", label: str, serial: int) -> None:
        self._session = session
        self.label = label
        self.serial = serial
        self._entry = session.stats
        self._frozen: SessionStats | None = None

    @property
    def active(self) -> bool:
        """Whether the scope is still accumulating (not yet exited)."""
        return self._frozen is None

    @property
    def stats(self) -> SessionStats:
        """This scope's counter deltas (frozen once the scope exits)."""
        current = self._frozen if self._frozen is not None else self._session.stats
        return current.minus(self._entry)

    def close(self) -> None:
        """Freeze the delta and release the session's active-scope slot.

        The frozen delta is also folded into the process metric
        registry (``repro_session_*`` counters labelled by scope), so
        session-reuse effectiveness is observable without parsing run
        records.
        """
        if self._frozen is None:
            self._frozen = self._session.stats
            self._session._scope_exited(self)
            self._export_metrics()

    def _export_metrics(self) -> None:
        delta = self.stats
        obs = telemetry()
        labels = {"scope": self.label, "backend": delta.backend}
        for name, value in (
            ("repro_session_steps_total", delta.steps),
            ("repro_session_contexts_total", delta.contexts),
            ("repro_session_pool_reuses_total", delta.pool_reuses),
            ("repro_session_cross_step_hits_total", delta.cross_step_hits),
            (
                "repro_session_cross_system_hits_total",
                delta.cross_system_hits,
            ),
            ("repro_session_cache_hits_total", delta.cache.hits),
            ("repro_session_cache_misses_total", delta.cache.misses),
            ("repro_session_cache_evictions_total", delta.cache.evictions),
        ):
            if value > 0:
                obs.counter(name, **labels).inc(value)

    def __enter__(self) -> "SessionScope":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EngineSession:
    """Owns engine resources for one full multi-step run.

    Parameters
    ----------
    backend:
        Registered backend name, applied to every step view.
    n_workers:
        Worker processes; above 1 (or with ``backend="process"``) one
        pool is forked lazily and reused by every step.
    cache_size:
        Per-step LRU capacity used only when the session cache is off
        (``session_cache_size == 0``); each step view then gets its own
        throwaway :class:`~repro.engine.cache.ScenarioResultCache`.
    session_cache_size:
        Capacity of the run-scoped cross-step cache; when positive it
        replaces the per-step cache entirely (one lookup path).
    cache_decimals:
        Genome quantization for either cache tier.
    """

    def __init__(
        self,
        backend: str = "reference",
        n_workers: int = 1,
        cache_size: int = 0,
        session_cache_size: int = 0,
        cache_decimals: int = DEFAULT_CACHE_DECIMALS,
    ) -> None:
        if backend not in backend_names():
            raise ReproError(
                f"unknown engine backend {backend!r}; choose from {backend_names()}"
            )
        if n_workers < 1:
            raise ReproError(f"n_workers must be >= 1, got {n_workers}")
        if cache_size < 0:
            raise ReproError(f"cache_size must be >= 0, got {cache_size}")
        if session_cache_size < 0:
            raise ReproError(
                f"session_cache_size must be >= 0, got {session_cache_size}"
            )
        self.backend = backend
        self.n_workers = n_workers
        self.cache_size = cache_size
        self.cache_decimals = cache_decimals
        self._store = (
            SessionResultCache(
                capacity=session_cache_size, decimals=cache_decimals
            )
            if session_cache_size > 0
            else None
        )
        self._pool = None
        self._steps = 0
        self._pool_reuses = 0
        self._scope: SessionScope | None = None
        self._scope_labels: dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def cache(self) -> SessionResultCache | None:
        """The cross-step store (``None`` when disabled)."""
        return self._store

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def stats(self) -> SessionStats:
        """Current run-level accounting snapshot."""
        return SessionStats(
            backend=self.backend,
            n_workers=(
                self._pool.n_workers if self._pool is not None else self.n_workers
            ),
            steps=self._steps,
            contexts=self._store.n_contexts if self._store is not None else 0,
            systems=len(self._scope_labels),
            pool_reuses=self._pool_reuses,
            cross_step_hits=(
                self._store.cross_step_hits if self._store is not None else 0
            ),
            cross_system_hits=(
                self._store.cross_scope_hits if self._store is not None else 0
            ),
            cache=(
                CacheStats(**self._store.stats.to_dict())
                if self._store is not None
                else CacheStats()
            ),
        )

    # ------------------------------------------------------------------
    def scoped(self, label: str) -> SessionScope:
        """Enter a per-consumer stat scope (one system of a shared run).

        Scopes are keyed by ``label``: two runs of the *same* system
        (repeat seeds of one sweep cell) share a scope identity, so
        cache hits between them count as cross-step reuse but not as
        ``cross_system_hits`` — that counter is reserved for hits
        served across genuinely different systems.

        Scopes are sequential: entering a new scope while another is
        active raises, because interleaved consumers would make the
        per-scope deltas meaningless.
        """
        if self._closed:
            raise ReproError(
                "engine session already closed; create a new session per run"
            )
        if self._scope is not None and self._scope.active:
            raise ReproError(
                f"session scope {self._scope.label!r} is still active; "
                "scopes must be sequential"
            )
        serial = self._scope_labels.get(label, len(self._scope_labels) + 1)
        scope = SessionScope(self, label, serial)  # snapshot before register
        self._scope_labels[label] = serial
        self._scope = scope
        return scope

    def _scope_exited(self, scope: SessionScope) -> None:
        if self._scope is scope:
            self._scope = None

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """The session's persistent worker pool (forked on first use)."""
        if self._pool is None:
            # imported here: keep pool-less sessions import-light
            from repro.parallel.executor import ProcessPoolEvaluator

            self._pool = ProcessPoolEvaluator(None, n_workers=self.n_workers)
        else:
            self._pool_reuses += 1
        return self._pool

    def for_step(self, problem) -> SimulationEngine:
        """A per-step engine view wired to the session's resources.

        ``problem`` is anything shaped like a step problem (``terrain``,
        ``start_burned``, ``real_burned``, ``horizon``, ``space``,
        ``n_neighbors`` — or an actual :class:`StepSpec`). The returned
        engine is a full :class:`SimulationEngine`; its ``close()``
        releases only per-step state, never the pool or the cross-step
        cache.
        """
        if self._closed:
            raise ReproError(
                "engine session already closed; create a new session per run"
            )
        spec = StepSpec.from_problem(problem)
        self._steps += 1
        cache = None
        if self._store is not None:
            scope = self._scope.serial if self._scope is not None else 0
            cache = self._store.view(
                step_context_digest(spec), self._steps, scope
            )
        pool = None
        if self.backend == "process" or self.n_workers > 1:
            pool = self._ensure_pool()
        return SimulationEngine(
            spec,
            backend=self.backend,
            n_workers=self.n_workers,
            cache_size=self.cache_size,
            cache_decimals=self.cache_decimals,
            cache=cache,
            pool=pool,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent); stats stay readable."""
        if self._closed:
            return
        if self._pool is not None:
            self._pool.close()
        self._closed = True

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
