"""LRU scenario-result cache keyed on quantized genomes.

GA elitism and DE restarts re-submit identical (or near-identical)
individuals across generations; each re-submission would otherwise
re-run a full fire simulation. The cache maps a *quantized* genome —
every coordinate rounded to ``decimals`` decimal places — to its Eq. 3
fitness, so exact repeats and sub-resolution perturbations both skip
the simulator.

Quantization semantics: two genomes that round to the same key share
one fitness value. At the default ``decimals=8`` the merged genomes
differ by less than 5·10⁻⁹ in every Table I coordinate — far below any
physically meaningful resolution — but a cached run is *not* guaranteed
bitwise-equal to an uncached one. Backends are only bitwise-verified
against each other with the cache disabled (``capacity=0``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError

__all__ = ["CacheStats", "ScenarioResultCache", "DEFAULT_CACHE_DECIMALS"]

#: Default quantization, decimal places per genome coordinate.
DEFAULT_CACHE_DECIMALS = 8


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (all counters monotonic)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats record into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class ScenarioResultCache:
    """Bounded LRU map from quantized genomes to fitness values.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables the cache (every lookup
        misses, nothing is stored).
    decimals:
        Quantization applied to every genome coordinate before keying.
    """

    capacity: int = 0
    decimals: int = DEFAULT_CACHE_DECIMALS
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ReproError(f"cache capacity must be >= 0, got {self.capacity}")
        if self.decimals < 0:
            raise ReproError(f"cache decimals must be >= 0, got {self.decimals}")
        self._data: OrderedDict[bytes, float] = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether the cache can store anything."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._data)

    def key(self, genome: np.ndarray) -> bytes:
        """Quantized byte key of one genome.

        Adding ``0.0`` after rounding folds ``-0.0`` into ``+0.0`` so
        the two byte patterns of zero share one cache entry.
        """
        q = np.round(np.asarray(genome, dtype=np.float64), self.decimals) + 0.0
        return q.tobytes()

    def get(self, key: bytes) -> float | None:
        """Cached fitness for ``key``, or ``None`` on a miss."""
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: bytes, fitness: float) -> None:
        """Insert (or refresh) one entry, evicting the LRU tail if full."""
        if not self.enabled:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = float(fitness)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._data.clear()
