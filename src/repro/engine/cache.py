"""LRU scenario-result cache keyed on quantized genomes.

GA elitism and DE restarts re-submit identical (or near-identical)
individuals across generations; each re-submission would otherwise
re-run a full fire simulation. The cache maps a *quantized* genome —
every coordinate rounded to ``decimals`` decimal places — to its Eq. 3
fitness, so exact repeats and sub-resolution perturbations both skip
the simulator.

Quantization semantics: two genomes that round to the same key share
one fitness value. At the default ``decimals=8`` the merged genomes
differ by less than 5·10⁻⁹ in every Table I coordinate — far below any
physically meaningful resolution — but a cached run is *not* guaranteed
bitwise-equal to an uncached one. Backends are only bitwise-verified
against each other with the cache disabled (``capacity=0``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError

__all__ = [
    "CacheStats",
    "ScenarioResultCache",
    "SessionResultCache",
    "SessionCacheView",
    "DEFAULT_CACHE_DECIMALS",
]

#: Default quantization, decimal places per genome coordinate.
DEFAULT_CACHE_DECIMALS = 8


def _validate_cache_params(capacity: int, decimals: int) -> None:
    if capacity < 0:
        raise ReproError(f"cache capacity must be >= 0, got {capacity}")
    if decimals < 0:
        raise ReproError(f"cache decimals must be >= 0, got {decimals}")


def _quantized_key(genome: np.ndarray, decimals: int) -> bytes:
    """Quantized byte key of one genome — shared by both cache tiers.

    Adding ``0.0`` after rounding folds ``-0.0`` into ``+0.0`` so the
    two byte patterns of zero share one cache entry.
    """
    q = np.round(np.asarray(genome, dtype=np.float64), decimals) + 0.0
    return q.tobytes()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (all counters monotonic)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats record into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class ScenarioResultCache:
    """Bounded LRU map from quantized genomes to fitness values.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables the cache (every lookup
        misses, nothing is stored).
    decimals:
        Quantization applied to every genome coordinate before keying.
    """

    capacity: int = 0
    decimals: int = DEFAULT_CACHE_DECIMALS
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        _validate_cache_params(self.capacity, self.decimals)
        self._data: OrderedDict[bytes, float] = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether the cache can store anything."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._data)

    def key(self, genome: np.ndarray) -> bytes:
        """Quantized byte key of one genome."""
        return _quantized_key(genome, self.decimals)

    def get(self, key: bytes) -> float | None:
        """Cached fitness for ``key``, or ``None`` on a miss."""
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: bytes, fitness: float) -> None:
        """Insert (or refresh) one entry, evicting the LRU tail if full."""
        if not self.enabled:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = float(fitness)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._data.clear()


# ----------------------------------------------------------------------
# Cross-step (session) tier
# ----------------------------------------------------------------------
@dataclass
class SessionResultCache:
    """Run-scoped LRU keyed on ``(step-context digest, quantized genome)``.

    One instance lives for a whole :class:`~repro.engine.session.
    EngineSession`; every step engine reads it through a
    :class:`SessionCacheView` that bakes in the step's context digest.
    Entries inserted by one step survive into later steps, so repeated
    evaluations of the same step context (re-calibration, system
    comparison on the same fire, sweep repeats) skip the simulator
    across step boundaries — the cross-step reuse the per-step
    :class:`ScenarioResultCache` could never provide.

    Parameters
    ----------
    capacity:
        Maximum number of entries across *all* contexts; 0 disables.
    decimals:
        Genome quantization, identical semantics to the per-step cache.
    """

    capacity: int = 0
    decimals: int = DEFAULT_CACHE_DECIMALS
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        _validate_cache_params(self.capacity, self.decimals)
        # (context digest, genome key)
        #   -> (fitness, inserting step serial, inserting scope serial)
        self._data: OrderedDict[
            tuple[bytes, bytes], tuple[float, int, int]
        ] = OrderedDict()
        self._contexts: set[bytes] = set()
        self.cross_step_hits = 0
        self.cross_scope_hits = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether the cache can store anything."""
        return self.capacity > 0

    @property
    def n_contexts(self) -> int:
        """Distinct step-context digests seen so far."""
        return len(self._contexts)

    def __len__(self) -> int:
        return len(self._data)

    def key(self, genome: np.ndarray) -> bytes:
        """Quantized byte key of one genome (same folding as per-step)."""
        return _quantized_key(genome, self.decimals)

    def view(self, context: bytes, step: int, scope: int = 0) -> "SessionCacheView":
        """Per-step facade bound to one context digest.

        ``scope`` identifies the consumer sharing the store — one scope
        per system when several systems share a session — so hits served
        from an entry another scope inserted are counted separately
        (``cross_scope_hits``, the cross-system reuse).
        """
        self._contexts.add(context)
        return SessionCacheView(self, context, step, scope)

    # ------------------------------------------------------------------
    def lookup(
        self, context: bytes, key: bytes, step: int, scope: int = 0
    ) -> float | None:
        """Cached fitness for ``(context, key)``; counts cross-step/scope hits."""
        entry = self._data.get((context, key))
        if entry is None:
            self.stats.misses += 1
            return None
        self._data.move_to_end((context, key))
        self.stats.hits += 1
        if entry[1] != step:
            self.cross_step_hits += 1
        if entry[2] != scope:
            self.cross_scope_hits += 1
        return entry[0]

    def insert(
        self, context: bytes, key: bytes, fitness: float, step: int, scope: int = 0
    ) -> int:
        """Insert one entry; returns how many entries were evicted."""
        if not self.enabled:
            return 0
        full_key = (context, key)
        if full_key in self._data:
            self._data.move_to_end(full_key)
        self._data[full_key] = (float(fitness), step, scope)
        evicted = 0
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1
            evicted += 1
        return evicted

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._data.clear()


class SessionCacheView:
    """One step's window onto a :class:`SessionResultCache`.

    Exposes the :class:`ScenarioResultCache` interface the engine
    consumes (``enabled`` / ``key`` / ``get`` / ``put`` / ``stats``);
    ``stats`` counts this step's traffic only, while the shared store
    accumulates the run totals.
    """

    def __init__(
        self,
        store: SessionResultCache,
        context: bytes,
        step: int,
        scope: int = 0,
    ) -> None:
        self._store = store
        self._context = context
        self._step = step
        self._scope = scope
        self.stats = CacheStats()

    @property
    def enabled(self) -> bool:
        """Whether the underlying session store can hold entries."""
        return self._store.enabled

    @property
    def context(self) -> bytes:
        """The step-context digest this view is bound to."""
        return self._context

    def key(self, genome: np.ndarray) -> bytes:
        """Quantized byte key of one genome."""
        return self._store.key(genome)

    def get(self, key: bytes) -> float | None:
        """Cached fitness for ``key`` in this step's context."""
        value = self._store.lookup(self._context, key, self._step, self._scope)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put(self, key: bytes, fitness: float) -> None:
        """Insert one entry under this step's context."""
        self.stats.evictions += self._store.insert(
            self._context, key, float(fitness), self._step, self._scope
        )
