"""Version information for the ``repro`` package."""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER = (
    "Strappa, Caymes-Scutari & Bianchini (2022). "
    "A Parallel Novelty Search Metaheuristic Applied to a Wildfire "
    "Prediction System. arXiv:2207.11646."
)
