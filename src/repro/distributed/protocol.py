"""Length-prefixed JSON messaging for the experiment fleet.

The coordinator and its workers speak the simplest wire protocol that
is still unambiguous: every message is one JSON object, preceded by a
4-byte big-endian length. Each exchange is a fresh TCP connection
carrying exactly one request and one reply — no connection state to
resynchronise after a worker (or the coordinator) dies mid-run, which
is the failure mode the fleet is built around.

Message ``type`` values (worker → coordinator, reply in parentheses):

``hello``
    Join the fleet (``welcome``: the plan payload, session sharing and
    the lease timeout — a worker needs no plan file of its own).
``lease``
    Ask for work (``group``: a leased group index; ``wait``: everything
    is leased or another worker still holds undrained records;
    ``drain``: the coordinator wants this worker's local records before
    handing out more work; ``done``: the plan is fully recorded).
``heartbeat``
    Keep a lease alive while a group runs (``ok`` / ``expired``).
``complete``
    Report a leased group finished (``ok`` / ``stale`` when the lease
    timed out and the group was already re-leased).
``records``
    Upload the worker's local store (``ok``; the coordinator merges the
    records into its own store, first writer wins).
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import ParallelError

__all__ = [
    "FleetError",
    "MAX_MESSAGE_BYTES",
    "recv_message",
    "request",
    "send_message",
]

#: Upper bound on one framed message. Record uploads are the largest
#: payloads (a few KiB per run); anything near this limit is corruption
#: or a port collision with an unrelated service, not fleet traffic.
MAX_MESSAGE_BYTES = 64 << 20

_HEADER = struct.Struct(">I")


class FleetError(ParallelError):
    """Failure in the distributed coordinator/worker runtime."""


def send_message(sock: socket.socket, payload: dict) -> None:
    """Frame and send one JSON message."""
    data = json.dumps(payload, sort_keys=True).encode()
    if len(data) > MAX_MESSAGE_BYTES:
        raise FleetError(
            f"refusing to send a {len(data)}-byte message "
            f"(limit {MAX_MESSAGE_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise FleetError(
                f"connection closed mid-message ({n - remaining} of {n} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one framed message; ``None`` on a clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise FleetError(
            f"oversized message announced ({length} bytes, limit "
            f"{MAX_MESSAGE_BYTES}) — not fleet traffic?"
        )
    data = _recv_exact(sock, length)
    if data is None:
        raise FleetError("connection closed between header and body")
    try:
        payload = json.loads(data)
    except json.JSONDecodeError as exc:
        raise FleetError(f"malformed fleet message: {exc}") from exc
    if not isinstance(payload, dict):
        raise FleetError("fleet messages must be JSON objects")
    return payload


def request(
    address: tuple[str, int], payload: dict, timeout: float = 30.0
) -> dict:
    """One request/reply exchange on a fresh connection."""
    with socket.create_connection(address, timeout=timeout) as sock:
        send_message(sock, payload)
        reply = recv_message(sock)
    if reply is None:
        raise FleetError(
            f"coordinator at {address[0]}:{address[1]} closed the "
            "connection without replying"
        )
    return reply
