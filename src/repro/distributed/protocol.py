"""Length-prefixed JSON messaging for the experiment fleet.

The coordinator and its workers speak the simplest wire protocol that
is still unambiguous: every message is one JSON object, preceded by a
4-byte big-endian length. Each exchange is a fresh TCP connection
carrying exactly one request and one reply — no connection state to
resynchronise after a worker (or the coordinator) dies mid-run, which
is the failure mode the fleet is built around.

Message ``type`` values (worker → coordinator, reply in parentheses):

``hello``
    Join the fleet (``welcome``: the plan payload, session sharing and
    the lease timeout — a worker needs no plan file of its own. Under
    cost scheduling the welcome also advertises ``piggyback: true``,
    switching the worker to the low-round-trip loop below. When the
    coordinator runs under a ``plan`` root span, the welcome also
    carries ``trace`` — ``{"trace_id", "parent_span"}`` — which the
    worker adopts so every fleet process traces into one tree. A
    multi-plan service coordinator (:mod:`repro.service`) instead
    advertises ``multi_plan: true`` and ships no plan: each ``unit``
    reply then carries ``plan_id`` plus the plan payload inline, and
    the worker echoes ``plan_id`` on ``heartbeat``/``complete``/
    ``records`` so the service routes them to the right ledger).
``lease``
    Ask for work (``unit``: a leased work-unit descriptor — a group
    index plus the explicit cell subset to run, see
    :class:`~repro.experiments.work.WorkUnit`; ``wait``: everything is
    leased or another worker still holds undrained records; ``drain``:
    the coordinator wants this worker's local records before handing
    out more work; ``done``: the plan is fully recorded; ``bye``: this
    worker was asked to leave — see ``drain`` below — and owes
    nothing, so it may exit; nothing it ran will requeue).
``heartbeat``
    Keep a lease alive while a unit runs (``ok`` / ``expired``). May
    carry a ``telemetry`` payload — the worker's cumulative
    ``busy_seconds``, the in-flight unit's elapsed time, and an
    ``engine_costs`` kernel-rate snapshot — folded into the
    coordinator's live utilization view and its unit cost model (an
    in-flight unit's elapsed time bounds its cost from below). Also
    carries ``metrics`` (a delta-encoded registry snapshot, see
    :func:`repro.obs.snapshot_delta`) which the coordinator folds into
    its fleet registry labelled by worker, and ``sent_at`` (the
    worker's wall clock at send time) from which replies derive a
    ``clock_offset`` estimate for merged-timeline alignment.
``complete``
    Report a leased unit finished (``ok`` / ``stale`` when the lease
    timed out and the unit was already re-leased). May carry a
    ``telemetry`` payload (``unit_seconds``, cumulative
    ``busy_seconds``, ``records``, ``cells``, ``engine_costs``) for
    per-worker accounting and online cost-model updates. Under
    piggyback the request also carries the worker's undrained
    ``records`` inline (an implicit drain) and the reply carries
    ``next`` — a full lease decision (``unit``/``wait``/``drain``/
    ``done``), collapsing complete → drain → records → lease into one
    round-trip. ``next`` rides ``stale`` replies too: a worker whose
    lease expired still wants work. Like heartbeats, ``complete``
    carries ``metrics`` + ``sent_at``; the reply echoes a
    ``clock_offset``, and ``unit`` replies (direct leases and
    piggybacked ``next``) are stamped with the coordinator's ``trace``
    context.
``records``
    Upload the worker's local store (``ok``; the coordinator merges the
    records into its own store, first writer wins).
``status``
    Read-only fleet snapshot (``status``: plan name,
    expected/recorded cell counts, ledger progress, per-worker
    utilization/round-trip accounting, and — under cost scheduling —
    the fleet-wide cost model as ``costs``). Sent by
    ``repro experiments status``; never counts as worker contact, so
    probing a fleet cannot delay its shutdown.
``drain``
    Operator request (``repro experiments drain``, or the service
    gateway's ``POST /workers/<id>/drain``): gracefully retire the
    worker named ``target`` (``ok``). The target finishes any unit it
    holds and keeps completing/draining normally, but receives no new
    grants; once its records are merged, its next ask is answered
    ``bye`` and it exits with zero requeued cells — elastic
    scale-down without re-running anything.

**Authentication.** With a shared secret configured
(``--auth-token`` / ``REPRO_FLEET_TOKEN``) every exchange runs a
*mutual* HMAC-SHA256 challenge–response before any payload moves, in
either direction:

1. the client opens with ``auth-hello`` carrying only a fresh nonce —
   never the request itself;
2. the coordinator replies ``challenge`` with its own nonce plus a
   ``proof`` over the client's nonce (coordinator role), proving *it*
   holds the token before the client reveals anything;
3. the client verifies the proof and only then sends ``auth`` with its
   ``mac`` over the coordinator's nonce (worker role) and the real
   request; the coordinator verifies and dispatches.

An unauthenticated peer connecting to the coordinator sees a random
nonce and an ``error`` — never a byte of the plan or its records; a
rogue listener impersonating the coordinator cannot produce the proof,
so a worker never sends it a request (or its records) either. The two
roles are domain-separated so a proof can never be replayed as a mac;
nonces are per-connection, so captured responses prove nothing.
(Confidentiality/integrity of the payload itself needs TLS, which this
handshake deliberately does not attempt — an offline brute-force of a
*weak* token against a captured proof also remains possible, as in any
shared-secret scheme.)
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
import socket
import struct

from repro.errors import ParallelError

__all__ = [
    "FleetAuthError",
    "FleetError",
    "MAX_MESSAGE_BYTES",
    "auth_mac",
    "auth_nonce",
    "check_auth_token",
    "recv_message",
    "request",
    "send_message",
    "verify_auth",
]

#: Upper bound on one framed message. Record uploads are the largest
#: payloads (a few KiB per run); anything near this limit is corruption
#: or a port collision with an unrelated service, not fleet traffic.
MAX_MESSAGE_BYTES = 64 << 20

_HEADER = struct.Struct(">I")


class FleetError(ParallelError):
    """Failure in the distributed coordinator/worker runtime."""


class FleetAuthError(FleetError):
    """Authentication failure — never retried (a retry cannot help)."""


def auth_nonce() -> str:
    """A fresh random nonce (one per connection side, never reused)."""
    return secrets.token_hex(32)


def auth_mac(token: str, nonce: str, role: str) -> str:
    """``HMAC-SHA256(token, role ":" nonce)``.

    ``role`` domain-separates the two directions of the handshake
    (``"coordinator"`` proves over the client's nonce, ``"worker"``
    over the coordinator's), so one side's response can never be
    replayed as the other's.
    """
    return hmac.new(
        token.encode(), f"{role}:{nonce}".encode(), hashlib.sha256
    ).hexdigest()


def verify_auth(token: str, nonce: str, mac, role: str) -> bool:
    """Constant-time check of a peer's challenge response."""
    return isinstance(mac, str) and hmac.compare_digest(
        auth_mac(token, nonce, role), mac
    )


def check_auth_token(token: str | None) -> str | None:
    """Validate a configured token (``None`` = auth disabled).

    An *empty* token is rejected loudly instead of silently disabling
    authentication — the classic unpopulated-secret foot-gun
    (``REPRO_FLEET_TOKEN=""`` set by a deploy script would otherwise
    run the fleet wide open while the operator believes it is authed).
    """
    if token is not None and not token:
        raise FleetError(
            "the fleet auth token must be non-empty — unset "
            "REPRO_FLEET_TOKEN / omit --auth-token to disable "
            "authentication instead"
        )
    return token


def send_message(sock: socket.socket, payload: dict) -> None:
    """Frame and send one JSON message."""
    data = json.dumps(payload, sort_keys=True).encode()
    if len(data) > MAX_MESSAGE_BYTES:
        raise FleetError(
            f"refusing to send a {len(data)}-byte message "
            f"(limit {MAX_MESSAGE_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise FleetError(
                f"connection closed mid-message ({n - remaining} of {n} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one framed message; ``None`` on a clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise FleetError(
            f"oversized message announced ({length} bytes, limit "
            f"{MAX_MESSAGE_BYTES}) — not fleet traffic?"
        )
    data = _recv_exact(sock, length)
    if data is None:
        raise FleetError("connection closed between header and body")
    try:
        payload = json.loads(data)
    except json.JSONDecodeError as exc:
        raise FleetError(f"malformed fleet message: {exc}") from exc
    if not isinstance(payload, dict):
        raise FleetError("fleet messages must be JSON objects")
    return payload


def request(
    address: tuple[str, int],
    payload: dict,
    timeout: float = 30.0,
    token: str | None = None,
) -> dict:
    """One request/reply exchange on a fresh connection.

    With a ``token``, the mutual handshake runs first and ``payload``
    is only sent once the peer has *proved* it holds the same token —
    a rogue listener on the coordinator's address never sees the
    request (or a worker's record upload). Without one, a ``challenge``
    reply raises :class:`FleetAuthError` immediately — retrying cannot
    succeed.
    """
    check_auth_token(token)
    with socket.create_connection(address, timeout=timeout) as sock:
        if token is not None:
            nonce = auth_nonce()
            send_message(sock, {"type": "auth-hello", "nonce": nonce})
            challenge = recv_message(sock)
            if challenge is None:
                raise FleetError(
                    f"peer at {address[0]}:{address[1]} closed the "
                    "connection during the auth handshake"
                )
            if challenge.get("type") != "challenge" or not verify_auth(
                token, nonce, challenge.get("proof"), "coordinator"
            ):
                raise FleetAuthError(
                    f"peer at {address[0]}:{address[1]} did not prove "
                    "knowledge of the fleet auth token — refusing to "
                    "send it the request (is --auth-token set on the "
                    "coordinator, and identical on both sides?)"
                )
            send_message(
                sock,
                {
                    "type": "auth",
                    "mac": auth_mac(
                        token, str(challenge.get("nonce", "")), "worker"
                    ),
                    "request": payload,
                },
            )
        else:
            send_message(sock, payload)
        reply = recv_message(sock)
        if (
            token is None
            and reply is not None
            and reply.get("type") == "challenge"
        ):
            raise FleetAuthError(
                f"coordinator at {address[0]}:{address[1]} requires "
                "a shared auth token (--auth-token or REPRO_FLEET_TOKEN)"
            )
    if reply is None:
        raise FleetError(
            f"coordinator at {address[0]}:{address[1]} closed the "
            "connection without replying"
        )
    if reply.get("type") == "error" and reply.get("denied") == "auth":
        raise FleetAuthError(
            f"coordinator at {address[0]}:{address[1]} rejected the "
            f"auth token: {reply.get('error')}"
        )
    return reply
