"""Pluggable group executors: who runs a ``(case, backend)`` group.

The :class:`~repro.experiments.runner.ExperimentRunner` decides *what*
is pending (resume bookkeeping, config-digest checks, record ordering);
an executor decides *where* the pending groups run. The three built-in
policies cover the scaling ladder:

* :class:`InlineExecutor` — every group in the calling process, one
  after another (the default, and the only executor that works without
  a results store).
* :class:`ProcessShardExecutor` — independent groups fanned out to
  local ``multiprocessing`` processes that meet only through the shared
  JSONL store (what ``shards=N`` always did, now behind the seam).
* :class:`~repro.distributed.coordinator.FleetExecutor` — groups leased
  to remote worker processes over TCP, with lease-timeout requeue and
  store merging (see :mod:`repro.distributed.coordinator`).

Executors receive the runner itself: they call back into
:meth:`ExperimentRunner.run_groups` (directly, or from a shard/worker
process that rebuilt an equivalent runner) so resume semantics are the
store's ``(system, case, seed, backend)`` contract under every policy.
An executor returns the freshly produced records, or ``None`` when its
work reached the store through other processes and the runner should
re-read it.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.plan import ExperimentPlan
    from repro.experiments.runner import ExperimentRunner

__all__ = [
    "GroupExecutor",
    "InlineExecutor",
    "ProcessShardExecutor",
    "pending_group_indices",
    "shard_assignments",
]


@runtime_checkable
class GroupExecutor(Protocol):
    """Execution policy for a plan's pending ``(case, backend)`` groups."""

    def execute(
        self,
        runner: "ExperimentRunner",
        plan: "ExperimentPlan",
        done: set[tuple[str, str, int, str]],
    ) -> list[dict] | None:
        """Run every group with pending cells; record through the runner.

        Returns the fresh records, or ``None`` when they were appended
        to the runner's store by other processes (the runner re-reads
        the store in that case).
        """


def pending_group_indices(
    plan: "ExperimentPlan", done: set[tuple[str, str, int, str]]
) -> list[int]:
    """Indices of plan groups that still have unrecorded cells."""
    return [
        i
        for i, (_, keys) in enumerate(plan.groups())
        if any(k.as_tuple() not in done for k in keys)
    ]


def shard_assignments(
    pending: Sequence[int], shards: int
) -> list[list[int]]:
    """Round-robin split of pending group indices into shard work lists.

    Never yields an empty assignment: asking for more shards than there
    are pending groups simply produces fewer shards, instead of
    spawning worker processes with nothing to do.
    """
    if shards < 1:
        raise ReproError(f"shards must be >= 1, got {shards}")
    assignments = [list(pending[s::shards]) for s in range(shards)]
    return [a for a in assignments if a]


def _check_process_portable(runner: "ExperimentRunner", what: str) -> None:
    """Refuse runner features that cannot cross process boundaries."""
    from repro.engine import EngineSession

    if runner.store is None:
        raise ReproError(
            f"{what} needs a ResultsStore — the executing processes "
            "meet only through the store file"
        )
    if (
        runner.progress is not None
        or runner.session_factory is not EngineSession
    ):
        raise ReproError(
            "progress callbacks and custom session factories do not "
            f"cross process boundaries; use the inline executor for {what}"
        )


class InlineExecutor:
    """Run every pending group in the calling process (the default)."""

    def execute(
        self,
        runner: "ExperimentRunner",
        plan: "ExperimentPlan",
        done: set[tuple[str, str, int, str]],
    ) -> list[dict] | None:
        return runner.run_groups(plan, range(len(plan.groups())), done)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "InlineExecutor()"


class ProcessShardExecutor:
    """Fan independent groups out to local shard processes.

    Parameters
    ----------
    shards:
        Upper bound on the number of worker processes; the actual count
        never exceeds the number of pending groups (empty shards are
        skipped, not spawned).
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def execute(
        self,
        runner: "ExperimentRunner",
        plan: "ExperimentPlan",
        done: set[tuple[str, str, int, str]],
    ) -> list[dict] | None:
        _check_process_portable(runner, "sharded execution")
        from repro.experiments.store import HAS_APPEND_LOCK

        if not HAS_APPEND_LOCK:
            raise ReproError(
                "sharded execution needs lock-serialised store appends, "
                "unavailable on this platform; use the inline executor"
            )
        pending = pending_group_indices(plan, done)
        if not pending:
            return []
        workers = [
            multiprocessing.Process(
                target=_run_shard,
                args=(
                    plan.to_dict(),
                    indices,
                    str(runner.store.path),
                    runner.share_sessions,
                ),
            )
            for indices in shard_assignments(pending, self.shards)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        failed = [w.exitcode for w in workers if w.exitcode != 0]
        if failed:
            raise ReproError(
                f"{len(failed)} of {len(workers)} experiment shards failed "
                f"(exit codes {failed}); re-run to resume the missing cells"
            )
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessShardExecutor(shards={self.shards})"


def _run_shard(
    plan_payload: dict,
    group_indices: Sequence[int],
    store_path: str,
    share_sessions: bool,
) -> None:
    """Shard-process entry point: execute a subset of a plan's groups."""
    from repro.experiments.plan import ExperimentPlan
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.store import ResultsStore

    plan = ExperimentPlan.from_dict(plan_payload)
    store = ResultsStore(store_path)
    runner = ExperimentRunner(store=store, share_sessions=share_sessions)
    runner.run_groups(plan, group_indices, store.completed())
