"""Pluggable work executors: who runs a plan's pending work units.

The :class:`~repro.experiments.runner.ExperimentRunner` decides *what*
is pending (resume bookkeeping, config-digest checks, record ordering)
and compiles it into a :class:`~repro.experiments.work.WorkSet` of
:class:`~repro.experiments.work.WorkUnit`\\ s — a ``(case, backend)``
group index plus an explicit cell subset. An executor decides *where*
those units run, and is free to reshape them (split big units across
idle workers, hand out single cells) because unit boundaries never
change any cell's result. The three built-in policies cover the
scaling ladder:

* :class:`InlineExecutor` — every unit in the calling process, one
  after another (the default, and the only executor that works without
  a results store).
* :class:`ProcessShardExecutor` — units fanned out to local
  ``multiprocessing`` processes that meet only through the shared
  JSONL store; units are pre-split (down to ``min_unit_cells``) and
  packed into near-equal-**cost** shard assignments under a
  plan-seeded :class:`~repro.experiments.costs.UnitCostModel`
  (``scheduling="halving"`` restores count-based splitting), so a
  plan with fewer groups than shards still occupies every shard and
  shards finish together.
* :class:`~repro.distributed.coordinator.FleetExecutor` — units leased
  to remote worker processes over TCP with cell-level work stealing,
  lease-timeout requeue and store merging (see
  :mod:`repro.distributed.coordinator`).

Executors receive the runner itself: they call back into
:meth:`ExperimentRunner.run_units` (directly, or from a shard/worker
process that rebuilt an equivalent runner) so resume semantics are the
store's ``(system, case, seed, backend)`` contract under every policy.
An executor returns the freshly produced records, or ``None`` when its
work reached the store through other processes and the runner should
re-read it.

Migration note: this SPI replaced the group-index ``GroupExecutor``
protocol (``execute(runner, plan, done)``). Custom executors should
now implement ``execute(runner, workset)`` and iterate
``workset.pending()``; ``GroupExecutor`` remains as an alias of
:class:`WorkExecutor`, and :meth:`ExperimentRunner.run_groups` remains
as a shim over :meth:`ExperimentRunner.run_units`.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError
from repro.experiments.costs import UnitCostModel, plan_cost_model
from repro.experiments.work import (
    WorkSet,
    WorkUnit,
    assign_units,
    assign_units_by_cost,
    split_units_by_cost,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.plan import ExperimentPlan
    from repro.experiments.runner import ExperimentRunner

__all__ = [
    "GroupExecutor",
    "InlineExecutor",
    "ProcessShardExecutor",
    "WorkExecutor",
    "pending_group_indices",
    "shard_assignments",
]


@runtime_checkable
class WorkExecutor(Protocol):
    """Execution policy for a plan's pending work units."""

    def execute(
        self,
        runner: "ExperimentRunner",
        workset: WorkSet,
    ) -> list[dict] | None:
        """Run every pending unit; record through the runner.

        Returns the fresh records, or ``None`` when they were appended
        to the runner's store by other processes (the runner re-reads
        the store in that case).
        """


#: Migration alias — the SPI used to be named after its old currency,
#: whole ``(case, backend)`` groups.
GroupExecutor = WorkExecutor


def pending_group_indices(
    plan: "ExperimentPlan", done: set[tuple[str, str, int, str]]
) -> list[int]:
    """Indices of plan groups that still have unrecorded cells.

    Re-expressed over :meth:`WorkSet.pending` so there is exactly one
    source of truth for "what remains" (compile drops fully recorded
    groups).
    """
    return [unit.group for unit in WorkSet.compile(plan, done).pending()]


def shard_assignments(
    pending: Sequence[int], shards: int
) -> list[list[int]]:
    """Round-robin split of pending group indices into shard work lists.

    Kept for group-index callers; unit-level shard planning (the shard
    executor's path) is :func:`repro.experiments.work.assign_units`
    over :meth:`WorkSet.pending`. Never yields an empty assignment:
    asking for more shards than there are pending groups simply
    produces fewer shards, instead of spawning worker processes with
    nothing to do.
    """
    if shards < 1:
        raise ReproError(f"shards must be >= 1, got {shards}")
    assignments = [list(pending[s::shards]) for s in range(shards)]
    return [a for a in assignments if a]


def _check_process_portable(runner: "ExperimentRunner", what: str) -> None:
    """Refuse runner features that cannot cross process boundaries."""
    from repro.engine import EngineSession

    if runner.store is None:
        raise ReproError(
            f"{what} needs a ResultsStore — the executing processes "
            "meet only through the store file"
        )
    if (
        runner.progress is not None
        or runner.session_factory is not EngineSession
    ):
        raise ReproError(
            "progress callbacks and custom session factories do not "
            f"cross process boundaries; use the inline executor for {what}"
        )


class InlineExecutor:
    """Run every pending unit in the calling process (the default)."""

    def execute(
        self,
        runner: "ExperimentRunner",
        workset: WorkSet,
    ) -> list[dict] | None:
        # compile already excluded recorded cells, so nothing is done
        return runner.run_units(workset.plan, workset.pending(), set())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "InlineExecutor()"


class ProcessShardExecutor:
    """Fan pending units out to local shard processes.

    Parameters
    ----------
    shards:
        Upper bound on the number of worker processes; the actual count
        never exceeds the number of schedulable units (empty shards are
        skipped, not spawned).
    min_unit_cells:
        Split floor when dividing big units so every shard gets work:
        a unit splits only while both halves keep at least this many
        cells. ``0`` disables splitting (whole-group shards, the
        pre-WorkUnit behaviour). Splitting moves only *where* cells
        run, never what they record.
    scheduling:
        ``"cost"`` (the default) pre-splits and packs units by
        *predicted cost* — near-equal-cost chunks, LPT assignment plus
        local swap/shift refinement
        (:func:`repro.experiments.work.split_units_by_cost` /
        :func:`~repro.experiments.work.assign_units_by_cost`) under a
        plan-seeded :class:`~repro.experiments.costs.UnitCostModel` —
        so shards finish together even when groups differ wildly in
        cost. ``"halving"`` restores cell-count splitting with
        round-robin assignment.
    cost_model:
        Explicit :class:`~repro.experiments.costs.UnitCostModel` for
        cost scheduling (tests, or a model saved from a previous run);
        defaults to one seeded from the plan's budgets at execute time.
    """

    def __init__(
        self,
        shards: int,
        min_unit_cells: int = 1,
        scheduling: str = "cost",
        cost_model: UnitCostModel | None = None,
    ) -> None:
        if shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        if min_unit_cells < 0:
            raise ReproError(
                f"min_unit_cells must be >= 0, got {min_unit_cells}"
            )
        if scheduling not in ("cost", "halving"):
            raise ReproError(
                f"unknown scheduling mode {scheduling!r}; "
                "choose 'cost' or 'halving'"
            )
        self.shards = shards
        self.min_unit_cells = min_unit_cells
        self.scheduling = scheduling
        self.cost_model = cost_model

    def execute(
        self,
        runner: "ExperimentRunner",
        workset: WorkSet,
    ) -> list[dict] | None:
        _check_process_portable(runner, "sharded execution")
        from repro.experiments.store import HAS_APPEND_LOCK

        if not HAS_APPEND_LOCK:
            raise ReproError(
                "sharded execution needs lock-serialised store appends, "
                "unavailable on this platform; use the inline executor"
            )
        if self.scheduling == "cost":
            model = self.cost_model or plan_cost_model(workset.plan)
            kernels = {
                index: UnitCostModel.kernel_key(case.name, backend)
                for index, ((case, backend), _keys) in enumerate(
                    workset.plan.groups()
                )
            }

            def rate_of(group: int) -> float:
                return model.rate(kernels.get(group, ""))

            pending = workset.pending()
            if self.min_unit_cells > 0:
                units = split_units_by_cost(
                    pending, self.shards, rate_of, self.min_unit_cells
                )
            else:
                units = list(pending)  # whole-group shards, as asked
            assignments = assign_units_by_cost(
                units, self.shards, rate_of
            )
        else:
            units = workset.split(
                self.shards, self.min_unit_cells
            ).pending()
            assignments = assign_units(units, self.shards)
        if not units:
            return []
        from repro.obs import telemetry

        trace = telemetry().trace_context()
        workers = [
            multiprocessing.Process(
                target=_run_shard,
                args=(
                    workset.plan.to_dict(),
                    [unit.to_dict() for unit in assignment],
                    str(runner.store.path),
                    runner.share_sessions,
                    trace,
                ),
            )
            for assignment in assignments
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        failed = [w.exitcode for w in workers if w.exitcode != 0]
        if failed:
            raise ReproError(
                f"{len(failed)} of {len(workers)} experiment shards failed "
                f"(exit codes {failed}); re-run to resume the missing cells"
            )
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ProcessShardExecutor(shards={self.shards}, "
            f"min_unit_cells={self.min_unit_cells}, "
            f"scheduling={self.scheduling!r})"
        )


def _run_shard(
    plan_payload: dict,
    unit_payloads: Sequence[dict],
    store_path: str,
    share_sessions: bool,
    trace: dict | None = None,
) -> None:
    """Shard-process entry point: execute a subset of a plan's units.

    ``trace`` is the parent process's trace context (trace id + the
    ``plan`` root span id); adopting it keeps every shard's spans on
    the same cross-process trace tree. Explicit adoption matters under
    the ``spawn`` start method, where nothing is inherited; under
    ``fork`` it also refreshes the span-id prefix so shard span ids
    never collide with the parent's.
    """
    from repro.experiments.plan import ExperimentPlan
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.store import ResultsStore
    from repro.obs import telemetry

    if isinstance(trace, dict) and trace.get("trace_id"):
        telemetry().adopt_trace(
            trace.get("trace_id"), trace.get("parent_span")
        )
    plan = ExperimentPlan.from_dict(plan_payload)
    units = [WorkUnit.from_dict(payload) for payload in unit_payloads]
    store = ResultsStore(store_path)
    runner = ExperimentRunner(store=store, share_sessions=share_sessions)
    runner.run_units(plan, units, store.completed())
