"""Distributed experiment execution: executors, fleet, aggregation.

Makes "who executes a ``(case, backend)`` group" a pluggable policy
behind the :class:`GroupExecutor` protocol — the seam PR 3 left at the
:class:`~repro.experiments.runner.ExperimentRunner`:

* :class:`InlineExecutor` — in-process, sequential (the default).
* :class:`ProcessShardExecutor` — local ``multiprocessing`` fan-out
  over a shared JSONL store (what ``shards=N`` always meant).
* :class:`FleetExecutor` — a TCP coordinator
  (``repro experiments serve-coordinator``) leasing groups to remote
  ``repro experiments worker`` processes, with heartbeat/lease-timeout
  requeue, worker-local stores and first-writer-wins merging.

Whatever the executor, resume stays the store's ``(system, case, seed,
backend)`` contract: a run interrupted anywhere resumes under any
executor, and all executors produce identical store contents (modulo
wall-clock timings) for the same plan and seeds.
"""

from repro.distributed.coordinator import FleetExecutor, GroupLedger
from repro.distributed.executors import (
    GroupExecutor,
    InlineExecutor,
    ProcessShardExecutor,
    pending_group_indices,
    shard_assignments,
)
from repro.distributed.protocol import FleetError
from repro.distributed.worker import parse_address, run_worker

__all__ = [
    "FleetError",
    "FleetExecutor",
    "GroupExecutor",
    "GroupLedger",
    "InlineExecutor",
    "ProcessShardExecutor",
    "parse_address",
    "pending_group_indices",
    "run_worker",
    "shard_assignments",
]
