"""Distributed experiment execution: executors, fleet, aggregation.

Makes "who executes a pending :class:`~repro.experiments.work.WorkUnit`"
a pluggable policy behind the :class:`WorkExecutor` protocol — the seam
at the :class:`~repro.experiments.runner.ExperimentRunner`:

* :class:`InlineExecutor` — in-process, sequential (the default).
* :class:`ProcessShardExecutor` — local ``multiprocessing`` fan-out of
  units over a shared JSONL store (``shards=N``), splitting big units
  so every shard gets work.
* :class:`FleetExecutor` — a TCP coordinator
  (``repro experiments serve-coordinator``) leasing units to remote
  ``repro experiments worker`` processes, with cell-level work stealing
  (the last pending unit splits for an asking worker),
  heartbeat/lease-timeout requeue, optional shared-secret HMAC
  authentication, worker-local stores and first-writer-wins merging.

Whatever the executor, resume stays the store's ``(system, case, seed,
backend)`` contract: a run interrupted anywhere resumes under any
executor *and any unit granularity*, and all executors produce
identical store contents (modulo wall-clock timings) for the same plan
and seeds — unit boundaries never change a cell's bytes.

``GroupExecutor``/``GroupLedger`` remain as migration aliases of
:class:`WorkExecutor`/:class:`UnitLedger` (the SPI's currency was a
``(case, backend)`` group index before the unit-of-work redesign).
"""

from repro.distributed.coordinator import (
    FleetExecutor,
    GroupLedger,
    UnitLedger,
)
from repro.distributed.executors import (
    GroupExecutor,
    InlineExecutor,
    ProcessShardExecutor,
    WorkExecutor,
    pending_group_indices,
    shard_assignments,
)
from repro.distributed.protocol import FleetAuthError, FleetError
from repro.distributed.worker import backoff_delay, parse_address, run_worker

__all__ = [
    "FleetAuthError",
    "FleetError",
    "FleetExecutor",
    "GroupExecutor",
    "GroupLedger",
    "InlineExecutor",
    "ProcessShardExecutor",
    "UnitLedger",
    "WorkExecutor",
    "backoff_delay",
    "parse_address",
    "pending_group_indices",
    "run_worker",
    "shard_assignments",
]
