"""Fleet worker: lease work units, run their cells, upload the records.

``repro experiments worker --connect HOST:PORT`` runs this loop. A
worker needs no plan file and no shared filesystem: the plan arrives in
the coordinator's ``welcome`` payload, and every leased
:class:`~repro.experiments.work.WorkUnit` — a ``(case, backend)`` group
index plus the *explicit cell subset* to run, possibly a whole group,
possibly one stolen cell — executes through the worker's own
:class:`~repro.experiments.runner.ExperimentRunner` (one shared
:class:`~repro.engine.EngineSession` per unit's group context, exactly
like a local run). Completed runs stream into a worker-local crash-safe
:class:`~repro.experiments.store.ResultsStore` that is uploaded when
the coordinator asks (``drain``) and merged first-writer-wins.

While a unit runs, a background thread heartbeats the lease at a
quarter of the coordinator's lease timeout; if the worker dies, the
heartbeats stop and the coordinator re-leases the unit's cells. A
worker that *outlives* its lease (e.g. a long GC pause) keeps its
records — the ``complete`` report comes back ``stale``, the re-run
elsewhere wins the merge, nothing is duplicated.

Re-pointing a worker at the same ``--store`` after a crash resumes: the
store's ``(system, case, seed, backend)`` contract skips the recorded
cells of a re-leased unit — the resume granularity is the *cell*, so a
store recorded under whole-group leases resumes under cell leases and
vice versa.

Connection failures retry under capped exponential backoff with
jitter (see :func:`backoff_delay`), so a worker started *before* its
coordinator — or surviving a coordinator restart — reconnects instead
of exiting, and a restarting fleet does not reconnect in lockstep.

With a shared secret configured (``auth_token`` /
``REPRO_FLEET_TOKEN``), every exchange answers the coordinator's HMAC
challenge first (see :mod:`repro.distributed.protocol`).

When the coordinator's ``welcome`` advertises ``piggyback`` (cost
scheduling), the worker collapses its steady-state loop to **one
round-trip per unit**: every ``complete`` report carries the local
store's not-yet-uploaded records inline, and the reply carries the
next lease decision (``next``) — no separate ``drain``/``records``/
``lease`` exchanges while work flows. Each ``complete`` and heartbeat
also ships a cost report (measured unit seconds plus the engine's
kernel-rate snapshot), feeding the coordinator's fleet-wide
:class:`~repro.experiments.costs.UnitCostModel`.

A ``welcome`` advertising ``multi_plan`` (the always-on
:mod:`repro.service` coordinator) carries no plan of its own: each
``unit`` reply names its plan (``plan_id``) and ships the plan payload
inline, and the worker keeps one execution context — plan, local
store, resume index — per plan it has served. The worker's
``complete``/``heartbeat``/``records`` messages echo ``plan_id`` so
the service routes them to the right ledger and store. A worker asked
to leave (the service's drain lifecycle) receives ``bye`` once its
leases are finished and its records merged, and returns its summary
with ``drained: true``.

``REPRO_WORKER_THROTTLE`` (seconds per cell, or the ``throttle``
parameter) artificially slows a worker down — a test/CI knob for
exercising capacity-aware lease sizing on heterogeneous fleets.
"""

from __future__ import annotations

import logging
import os
import random
import socket
import tempfile
import threading
import time
from typing import Callable

from repro.distributed.protocol import (
    FleetAuthError,
    FleetError,
    check_auth_token,
    request,
)
from repro.obs import snapshot_delta, telemetry

__all__ = ["backoff_delay", "parse_address", "run_worker"]

log = logging.getLogger("repro.distributed.worker")


def parse_address(value: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or a ready tuple) → ``(host, port)``."""
    if isinstance(value, tuple):
        return (str(value[0]), int(value[1]))
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise FleetError(
            f"worker address must be HOST:PORT, got {value!r}"
        )
    try:
        return (host, int(port))
    except ValueError as exc:
        raise FleetError(
            f"worker address must be HOST:PORT, got {value!r}"
        ) from exc


def backoff_delay(
    failures: int,
    base: float = 0.5,
    cap: float = 5.0,
    jitter: Callable[[], float] = random.random,
) -> float:
    """Seconds to sleep before retry number ``failures`` (1-based).

    Capped exponential backoff with jitter: the ceiling doubles from
    ``base`` up to ``cap``, and the actual delay is uniform in
    ``[ceiling/2, ceiling]`` — late-started workers hammer a missing
    coordinator less and less, and a whole fleet surviving a
    coordinator restart spreads its reconnections instead of
    stampeding in lockstep. ``jitter`` is injectable for tests.
    """
    if base <= 0 or cap <= 0:
        raise FleetError(
            f"backoff base and cap must be positive, got {base}/{cap}"
        )
    ceiling = min(float(cap), float(base) * (2.0 ** max(failures - 1, 0)))
    return ceiling * (0.5 + 0.5 * jitter())


class _LeaseHeartbeat:
    """Background lease renewal while a unit runs.

    Failures are deliberately swallowed: if the coordinator is gone the
    lease expires by itself, and the worker finds out at its next
    synchronous exchange.
    """

    def __init__(
        self,
        address: tuple[str, int],
        worker: str,
        lease: int,
        interval: float,
        request_timeout: float,
        token: str | None = None,
        busy_base: float = 0.0,
        engine_costs: Callable[[], dict] | None = None,
        metrics: Callable[[], list] | None = None,
        plan_id: str | None = None,
    ) -> None:
        self._payload = {"type": "heartbeat", "worker": worker, "lease": lease}
        if plan_id is not None:
            # multi-plan coordinators route the beat by plan
            self._payload["plan_id"] = plan_id
        self._address = address
        self._interval = interval
        self._request_timeout = request_timeout
        self._token = token
        self._busy_base = busy_base
        self._engine_costs = engine_costs
        self._metrics = metrics
        self._started = time.perf_counter()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"lease-heartbeat-{lease}"
        )

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=self._request_timeout + 1.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            # each beat carries the worker's live busy accounting, so
            # the coordinator's utilization view covers in-flight units
            # (not just completed ones)
            elapsed = time.perf_counter() - self._started
            self._payload["telemetry"] = {
                "busy_seconds": self._busy_base + elapsed,
                "unit_seconds": elapsed,
            }
            if self._engine_costs is not None:
                # in-flight cost report: elapsed time bounds the unit's
                # cost from below, and the engine's kernel rates give
                # the coordinator's model its pre-measurement priors
                self._payload["telemetry"]["engine_costs"] = (
                    self._engine_costs()
                )
            if self._metrics is not None:
                # metric delta since the last shipped snapshot; the
                # coordinator folds it worker-labelled into the fleet
                # registry (a delta lost to a failed beat is acceptable
                # monitoring loss, never results loss)
                self._payload["metrics"] = self._metrics()
            # sent_at lets the coordinator answer with a clock-offset
            # estimate (unused here, but it keeps both reply shapes equal)
            self._payload["sent_at"] = time.time()
            try:
                request(
                    self._address,
                    self._payload,
                    timeout=self._request_timeout,
                    token=self._token,
                )
            except (OSError, FleetError):
                continue


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    address: str | tuple[str, int],
    store_path: str | os.PathLike | None = None,
    poll_interval: float | None = None,
    worker_id: str | None = None,
    request_timeout: float = 30.0,
    max_failures: int = 20,
    auth_token: str | None = None,
    on_record: Callable[[dict], None] | None = None,
    after_complete: Callable[[int], None] | None = None,
    throttle: float | None = None,
    backoff_base: float = 0.5,
    backoff_cap: float = 5.0,
) -> dict:
    """Serve one coordinator until its plan is fully recorded.

    Parameters
    ----------
    address:
        Coordinator ``HOST:PORT`` (string or tuple).
    store_path:
        Worker-local results store; a fresh temporary file when omitted.
        Reusing a path across worker restarts resumes interrupted
        units instead of recomputing them. Serving a multi-plan
        coordinator this is a *directory* (one store per plan inside);
        created if missing.
    poll_interval:
        Idle re-ask cadence; defaults to what the coordinator
        advertises.
    worker_id:
        Stable identity in coordinator bookkeeping (default
        ``hostname-pid``).
    max_failures:
        Consecutive connection failures tolerated (the coordinator may
        start after the workers) before giving up. Retries back off
        exponentially with jitter between ``backoff_base`` and
        ``backoff_cap`` seconds (see :func:`backoff_delay`).
    auth_token:
        Shared secret for coordinators that require authentication;
        defaults to ``REPRO_FLEET_TOKEN`` from the environment. An
        auth rejection raises immediately — retrying cannot help.
    on_record:
        Optional callback per completed run record (test hook).
    after_complete:
        Optional callback after each accepted/stale ``complete``
        exchange, with the unit's group index (test hook — fault
        injection).
    throttle:
        Artificial slowdown in seconds *per cell*, slept after each
        unit executes (inside the heartbeat window, so the reported
        unit timing includes it); defaults to
        ``REPRO_WORKER_THROTTLE`` from the environment. Exists so
        tests and CI can make one fleet member measurably slower and
        assert that capacity-aware scheduling gives it less work.

    Returns a summary dict: ``units``/``records`` executed,
    ``busy_seconds`` spent inside unit execution (the idle-time metric
    of ``benchmarks/bench_executors.py``), the derived
    ``idle_seconds``/``wall_seconds``, the local ``store`` path, and
    ``drained`` — True when the exit was a graceful ``bye`` after a
    drain rather than plan completion.
    The same busy/idle split lands in the process metric registry as
    ``repro_worker_busy_seconds``/``repro_worker_idle_seconds`` gauges,
    and is reported upstream on every heartbeat and ``complete``
    exchange so the coordinator can aggregate fleet-wide utilization.
    """
    # imported here: repro.experiments lazily imports this package's
    # executors, so the worker stays import-cycle-free at module level
    from repro.engine.backends import kernel_costs
    from repro.experiments.plan import ExperimentPlan
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.store import ResultsStore, record_key
    from repro.experiments.work import WorkUnit

    addr = parse_address(address)
    worker = worker_id or _default_worker_id()
    if auth_token is None:
        auth_token = os.environ.get("REPRO_FLEET_TOKEN")
    check_auth_token(auth_token)
    if throttle is None:
        raw = os.environ.get("REPRO_WORKER_THROTTLE")
        if raw:
            try:
                throttle = float(raw)
            except ValueError as exc:
                raise FleetError(
                    "REPRO_WORKER_THROTTLE must be seconds per cell "
                    f"(a float), got {raw!r}"
                ) from exc
    if throttle is not None and throttle < 0:
        raise FleetError(
            f"worker throttle must be >= 0, got {throttle}"
        )
    failures = 0

    def rpc(payload: dict) -> dict:
        nonlocal failures
        while True:
            try:
                reply = request(
                    addr, payload, timeout=request_timeout, token=auth_token
                )
            except FleetAuthError:
                raise  # a retry re-fails the same handshake
            except (OSError, FleetError) as exc:
                failures += 1
                if failures >= max_failures:
                    raise FleetError(
                        f"worker {worker}: {failures} consecutive failed "
                        f"exchanges with {addr[0]}:{addr[1]} — giving up "
                        f"({exc})"
                    ) from exc
                time.sleep(
                    backoff_delay(failures, backoff_base, backoff_cap)
                )
                continue
            failures = 0
            if reply.get("type") == "error":
                raise FleetError(
                    f"coordinator rejected {payload.get('type')!r}: "
                    f"{reply.get('error')}"
                )
            return reply

    registry = telemetry()
    # span ids namespace by worker id: traces merged across the fleet
    # stay collision-free and attribute to the right track
    registry.set_span_prefix(worker)

    def adopt_trace(payload: dict) -> None:
        """Join the coordinator's trace (stamped on welcome/leases):
        this worker's spans then carry the fleet-wide trace_id and
        parent onto the coordinator's `plan` root span."""
        trace = payload.get("trace")
        if isinstance(trace, dict) and trace.get("trace_id"):
            registry.adopt_trace(
                trace.get("trace_id"), trace.get("parent_span")
            )

    metrics_lock = threading.Lock()
    last_metrics: list = []

    def metrics_delta() -> list:
        """Registry movement since the last shipped snapshot (shared by
        the heartbeat thread and the complete path, hence the lock)."""
        nonlocal last_metrics
        with metrics_lock:
            current = registry.snapshot()
            delta = snapshot_delta(last_metrics, current)
            last_metrics = current
            return delta

    clock_offset: float | None = None

    welcome = rpc({"type": "hello", "worker": worker})
    if welcome.get("type") != "welcome":
        raise FleetError(f"expected welcome, got {welcome.get('type')!r}")
    adopt_trace(welcome)
    multi_plan = bool(welcome.get("multi_plan", False))
    share_sessions = bool(welcome.get("share_sessions", True))
    lease_timeout = float(welcome.get("lease_timeout", 30.0))
    piggyback = bool(welcome.get("piggyback", False))
    if poll_interval is None:
        poll_interval = float(welcome.get("poll_interval", 0.5))
    if store_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-fleet-worker-")
        store_path = tmpdir if multi_plan else os.path.join(
            tmpdir, "store.jsonl"
        )
    heartbeat_interval = max(lease_timeout / 4.0, 0.05)

    class PlanContext:
        """One plan's execution state: the plan, its group table, the
        worker-local store, and the in-memory resume/drain index.

        The store is parsed once; afterwards ``recorded`` tracks it
        (this worker is the store's only writer), in append order —
        cell-level leasing makes leases frequent, and re-reading the
        whole JSONL per lease would be O(units x store size). A reused
        store may hold cells from other plans (or older budgets); only
        this plan's cells are ever resumed or uploaded.
        """

        def __init__(self, plan: "ExperimentPlan", path) -> None:
            self.plan = plan
            self.groups = plan.groups()
            self.plan_cells = {k.as_tuple() for k in plan.runs()}
            self.store = ResultsStore(path)
            self.recorded = {
                record_key(r): r for r in self.store.records()
            }
            self.drained_cells: set[tuple[str, str, int, str]] = set()

        def undrained_records(self) -> list[dict]:
            """This plan's local records the coordinator has not seen
            yet — everything undrained, not just the latest unit's
            fresh runs: a reused store resumes cells locally without
            re-running them, and those records must still reach the
            coordinator or its coverage check would requeue (and
            re-run) them forever."""
            return [
                r
                for key, r in self.recorded.items()
                if key in self.plan_cells and key not in self.drained_cells
            ]

    contexts: dict[object, PlanContext] = {}

    def context_for(plan_id, payload) -> PlanContext:
        """The (cached) execution context of one plan.

        Single-plan coordinators key the lone context under ``None``
        (built once from the welcome); a multi-plan service names the
        plan on every unit and ships its payload inline, and each
        plan's store lives in its own file under the store directory.
        """
        if plan_id in contexts:
            return contexts[plan_id]
        if not isinstance(payload, dict):
            raise FleetError(
                f"unit for unknown plan {plan_id!r} without a plan payload"
            )
        plan = ExperimentPlan.from_dict(payload)
        os.makedirs(store_path, exist_ok=True)
        path = os.path.join(store_path, f"{plan_id}.jsonl")
        context = contexts[plan_id] = PlanContext(plan, path)
        log.info(
            "worker %s opened plan %s (%s, store %s)",
            worker,
            plan_id,
            plan.name,
            path,
            extra={"worker": worker, "plan": plan.name},
        )
        return context

    if multi_plan:
        log.info(
            "worker %s joined multi-plan service at %s:%d",
            worker,
            addr[0],
            addr[1],
            extra={"worker": worker},
        )
    else:
        plan = ExperimentPlan.from_dict(welcome["plan"])
        contexts[None] = PlanContext(plan, store_path)
        log.info(
            "worker %s joined fleet at %s:%d (plan %s)",
            worker,
            addr[0],
            addr[1],
            plan.name,
            extra={"worker": worker, "plan": plan.name},
        )

    units_run = 0
    records_run = 0
    busy_seconds = 0.0
    wall_started = time.perf_counter()

    def drain_to_coordinator(plan_id) -> int:
        """Upload one context's undrained records (incremental: minus
        what earlier drains already delivered — a restart resets the
        set and re-uploads once; the coordinator merge dedupes)."""
        ctx = contexts.get(plan_id)
        if ctx is None:
            return 0
        fresh_records = ctx.undrained_records()
        payload = {
            "type": "records",
            "worker": worker,
            "records": fresh_records,
        }
        if plan_id is not None:
            payload["plan_id"] = plan_id
        rpc(payload)
        ctx.drained_cells.update(record_key(r) for r in fresh_records)
        return len(fresh_records)

    def summary(drained: bool) -> dict:
        wall_seconds = time.perf_counter() - wall_started
        idle_seconds = max(wall_seconds - busy_seconds, 0.0)
        obs = telemetry()
        obs.gauge("repro_worker_busy_seconds", worker=worker).set(
            busy_seconds
        )
        obs.gauge("repro_worker_idle_seconds", worker=worker).set(
            idle_seconds
        )
        obs.counter("repro_worker_units_total", worker=worker).inc(
            units_run
        )
        if clock_offset is not None:
            # final estimate, so the trace file's last clock_sync
            # is the freshest one timeline export will use
            obs.emit(
                {
                    "event": "clock_sync",
                    "time": time.time(),
                    "worker": worker,
                    "clock_offset": clock_offset,
                }
            )
        log.info(
            "worker %s %s: %d units, %d records, busy %.3fs / idle %.3fs",
            worker,
            "drained" if drained else "done",
            units_run,
            records_run,
            busy_seconds,
            idle_seconds,
            extra={
                "worker": worker,
                "units": units_run,
                "records": records_run,
                "busy_seconds": busy_seconds,
                "idle_seconds": idle_seconds,
            },
        )
        return {
            "worker": worker,
            "units": units_run,
            "records": records_run,
            "busy_seconds": busy_seconds,
            "idle_seconds": idle_seconds,
            "wall_seconds": wall_seconds,
            "clock_offset": clock_offset,
            "drained": drained,
            "store": str(store_path),
        }

    # piggyback mode threads the next lease decision through each
    # `complete` reply; `reply = None` means "ask the coordinator"
    reply: dict | None = None
    while True:
        message = reply or rpc({"type": "lease", "worker": worker})
        reply = None
        kind = message.get("type")
        if kind == "unit":
            adopt_trace(message)
            lease = message.get("lease")
            plan_id = message.get("plan_id") if multi_plan else None
            ctx = context_for(plan_id, message.get("plan"))
            unit = WorkUnit.from_dict(message.get("unit") or {})
            log.info(
                "worker %s leased unit (lease %s, group %d, %d cells)",
                worker,
                lease,
                unit.group,
                unit.n_cells,
                extra={
                    "worker": worker,
                    "lease": lease,
                    "group": unit.group,
                    "cells": unit.n_cells,
                },
            )
            started = time.perf_counter()
            with _LeaseHeartbeat(
                addr,
                worker,
                lease,
                heartbeat_interval,
                request_timeout,
                token=auth_token,
                busy_base=busy_seconds,
                engine_costs=lambda: kernel_costs().snapshot(),
                metrics=metrics_delta,
                plan_id=plan_id,
            ):
                runner = ExperimentRunner(
                    store=ctx.store,
                    share_sessions=share_sessions,
                    progress=on_record,
                )
                # hold the local store to the same resume contract as
                # any other store: a leased unit only resumes cells
                # recorded under this plan's per-system config digest
                (case, _), keys = ctx.groups[unit.group]
                for system in ctx.plan.systems:
                    runner.check_recorded_config(
                        ctx.recorded,
                        [k for k in keys if k.system == system],
                        ctx.plan.config_digest(case, system),
                    )
                fresh = runner.run_units(
                    ctx.plan, [unit], set(ctx.recorded)
                )
                if throttle:
                    # heterogeneity knob: the sleep happens inside the
                    # heartbeat window and before the timing cut, so
                    # the coordinator's throughput EMA sees it
                    time.sleep(throttle * unit.n_cells)
            ctx.recorded.update((record_key(r), r) for r in fresh)
            unit_seconds = time.perf_counter() - started
            busy_seconds += unit_seconds
            units_run += 1
            records_run += len(fresh)
            log.info(
                "worker %s finished unit (lease %s, group %d, "
                "%d records, %.3fs)",
                worker,
                lease,
                unit.group,
                len(fresh),
                unit_seconds,
                extra={
                    "worker": worker,
                    "lease": lease,
                    "group": unit.group,
                    "records": len(fresh),
                    "unit_seconds": unit_seconds,
                },
            )
            # 'stale' just means the lease expired under us; the records
            # are safe in the local store and the merge dedupes
            payload = {
                "type": "complete",
                "worker": worker,
                "lease": lease,
                # per-unit timing + cumulative busy accounting + the
                # engine's kernel-rate snapshot: the coordinator folds
                # these into its utilization view and cost model
                "telemetry": {
                    "unit_seconds": unit_seconds,
                    "busy_seconds": busy_seconds,
                    "records": len(fresh),
                    "cells": unit.n_cells,
                    "engine_costs": kernel_costs().snapshot(),
                },
                "metrics": metrics_delta(),
                "sent_at": time.time(),
            }
            if plan_id is not None:
                payload["plan_id"] = plan_id
            uploaded: list[dict] = []
            if piggyback:
                # inline drain: the records ride the report, so the
                # worker owes nothing if it dies right after this
                uploaded = ctx.undrained_records()
                payload["records"] = uploaded
            completion = rpc(payload)
            ctx.drained_cells.update(record_key(r) for r in uploaded)
            offset = completion.get("clock_offset")
            if isinstance(offset, (int, float)):
                # coordinator-measured clock offset: timeline export
                # shifts this worker's timestamps by the last estimate
                first = clock_offset is None
                clock_offset = float(offset)
                if first:
                    registry.emit(
                        {
                            "event": "clock_sync",
                            "time": time.time(),
                            "worker": worker,
                            "clock_offset": clock_offset,
                        }
                    )
            nxt = completion.get("next")
            if isinstance(nxt, dict):
                # piggybacked grant: the reply already decided our next
                # move — no separate lease round-trip
                reply = nxt
            if after_complete is not None:
                after_complete(unit.group)
        elif kind == "drain":
            plan_ids = (
                [message["plan_id"]]
                if "plan_id" in message
                else list(contexts)
            )
            drained_n = sum(drain_to_coordinator(p) for p in plan_ids)
            log.info(
                "worker %s drained %d records",
                worker,
                drained_n,
                extra={"worker": worker, "records": drained_n},
            )
        elif kind == "wait":
            time.sleep(poll_interval)
        elif kind == "done":
            return summary(drained=False)
        elif kind == "bye":
            # graceful leave: the coordinator confirmed every lease is
            # finished and every record merged — nothing requeues
            return summary(drained=True)
        else:
            raise FleetError(f"unexpected coordinator reply {kind!r}")
