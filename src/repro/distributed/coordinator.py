"""Fleet coordinator: lease groups to TCP workers, merge their stores.

The :class:`FleetExecutor` is the distributed arm of the executor seam
(:mod:`repro.distributed.executors`): it serves a plan's pending
``(case, backend)`` groups over the length-prefixed-JSON protocol of
:mod:`repro.distributed.protocol` to any number of
``repro experiments worker`` processes, on this machine or others.

Correctness rests on three rules, all enforced by the
:class:`GroupLedger`:

* **Leases expire.** A worker holds a group only while it heartbeats;
  a worker that dies (or loses the network) stops renewing and its
  group is re-leased to the next worker that asks. Requeued groups
  re-run from the new worker's own store, so a group a worker had
  *partially* recorded before a stale lease resumes rather than
  recomputes.
* **Records live on the worker until the coordinator has them.**
  Workers stream every completed run into their own crash-safe local
  :class:`~repro.experiments.store.ResultsStore` and upload it when the
  coordinator asks (``drain``); the coordinator folds uploads into its
  own store through :meth:`ResultsStore.merge` — first writer wins, so
  a group that was executed twice (stale lease, re-run after a death)
  never duplicates a ``(system, case, seed, backend)`` cell.
* **Completion is verified, not assumed.** A group reported complete
  counts only tentatively; the run finishes when the *coordinator's
  store* records every expected cell. Cells stranded on a dead worker
  (completed but never drained) are detected by this coverage check and
  their groups re-leased.

The coordinator never simulates anything itself: it is bookkeeping plus
a store, which is what lets one process oversee a fleet of heavyweight
workers.
"""

from __future__ import annotations

import itertools
import threading
import time
import socketserver
from typing import TYPE_CHECKING, Callable

from repro.experiments.store import record_key

from repro.distributed.executors import (
    _check_process_portable,
    pending_group_indices,
)
from repro.distributed.protocol import (
    FleetError,
    recv_message,
    send_message,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.plan import ExperimentPlan
    from repro.experiments.runner import ExperimentRunner

__all__ = ["FleetExecutor", "GroupLedger"]


class GroupLedger:
    """Thread-safe lease/requeue bookkeeping for one fleet run.

    Parameters
    ----------
    plan:
        The plan being executed; group indices refer to
        :meth:`ExperimentPlan.groups` order (workers rebuild the same
        plan from the ``welcome`` payload, so indices agree).
    pending:
        Group indices with unrecorded cells at the start of the run.
    lease_timeout:
        Seconds without a heartbeat (or any other contact) after which
        a lease is revoked and its group re-leased; also the staleness
        bound after which a silent worker is presumed dead.
    completed_cells:
        Callable returning the coordinator store's recorded run keys —
        the ground truth of the end-of-run coverage check.
    """

    def __init__(
        self,
        plan: "ExperimentPlan",
        pending: list[int],
        lease_timeout: float,
        completed_cells: Callable[[], set[tuple[str, str, int, str]]],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_timeout <= 0:
            raise FleetError(
                f"lease timeout must be positive, got {lease_timeout}"
            )
        groups = plan.groups()
        self._cells = {
            i: {k.as_tuple() for k in groups[i][1]} for i in pending
        }
        self._expected = set().union(*self._cells.values())
        self._pending: list[int] = list(pending)
        self._leases: dict[int, dict] = {}
        self._lease_ids = itertools.count(1)
        self._tentative: set[int] = set()
        self._dirty: set[str] = set()
        self._last_seen: dict[str, float] = {}
        self._told_done: set[str] = set()
        self._lock = threading.Lock()
        self.lease_timeout = float(lease_timeout)
        self.completed_cells = completed_cells
        self.clock = clock
        self.finished = threading.Event()
        self.requeues = 0

    # ------------------------------------------------------------------
    def touch(self, worker: str) -> None:
        """Record contact from ``worker`` (liveness for drain waits)."""
        with self._lock:
            self._last_seen[worker] = self.clock()

    def lease(self, worker: str) -> dict:
        """Answer one work request; the heart of the scheduling policy."""
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            self._expire(now)
            if self.finished.is_set():
                self._told_done.add(worker)
                return {"type": "done"}
            if worker in self._dirty:
                # collect this worker's records before handing out more
                # work: the shorter a record's worker-only window, the
                # less a worker death costs
                return {"type": "drain"}
            if self._pending:
                return self._grant(worker, now)
            if self._leases:
                return {"type": "wait"}
            if any(
                now - self._last_seen.get(w, 0.0) <= self.lease_timeout
                for w in self._dirty
            ):
                return {"type": "wait"}  # a live worker still owes records
            # nothing pending, nothing leased, no live worker undrained:
            # verify coverage against the store, the only ground truth
            missing = self._expected - self.completed_cells()
            if not missing:
                self.finished.set()
                self._told_done.add(worker)
                return {"type": "done"}
            self._requeue_missing(missing)
            return self._grant(worker, now)

    def heartbeat(self, worker: str, lease_id) -> dict:
        """Renew a lease; ``expired`` once the group was re-leased."""
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            self._expire(now)
            lease = self._leases.get(_lease_key(lease_id))
            if lease is None or lease["worker"] != worker:
                return {"type": "expired"}
            lease["deadline"] = now + self.lease_timeout
            return {"type": "ok"}

    def complete(self, worker: str, lease_id) -> dict:
        """Mark a leased group tentatively complete (worker holds records)."""
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            self._expire(now)
            key = _lease_key(lease_id)
            lease = self._leases.get(key)
            if lease is None or lease["worker"] != worker:
                return {"type": "stale"}
            del self._leases[key]
            self._tentative.add(lease["group"])
            self._dirty.add(worker)
            return {"type": "ok"}

    def drained(self, worker: str) -> None:
        """The worker's local records reached the coordinator store."""
        with self._lock:
            self._last_seen[worker] = self.clock()
            self._dirty.discard(worker)

    def poll_completion(self) -> bool:
        """Coordinator-side completion check (needs no worker request).

        ``finished`` is normally set while answering a worker's lease
        request — but if the last worker dies right after draining, no
        request ever arrives even though the store already records
        every cell. The executor polls this while it waits, so a
        complete run always terminates; cells found missing requeue
        their groups for whichever worker asks next.
        """
        with self._lock:
            now = self.clock()
            self._expire(now)
            if self.finished.is_set():
                return True
            if self._pending or self._leases:
                return False
            if any(
                now - self._last_seen.get(w, 0.0) <= self.lease_timeout
                for w in self._dirty
            ):
                return False
            missing = self._expected - self.completed_cells()
            if not missing:
                self.finished.set()
                return True
            self._requeue_missing(missing)
            return False

    # ------------------------------------------------------------------
    def _grant(self, worker: str, now: float) -> dict:
        index = self._pending.pop(0)
        lease_id = next(self._lease_ids)
        self._leases[lease_id] = {
            "group": index,
            "worker": worker,
            "deadline": now + self.lease_timeout,
        }
        return {"type": "group", "group": index, "lease": lease_id}

    def _expire(self, now: float) -> None:
        """Requeue every lease whose worker stopped heartbeating."""
        for lease_id, lease in list(self._leases.items()):
            if lease["deadline"] < now:
                del self._leases[lease_id]
                self._pending.append(lease["group"])
                self.requeues += 1

    def _requeue_missing(
        self, missing: set[tuple[str, str, int, str]]
    ) -> None:
        """Re-lease groups whose records died with their worker."""
        for index, cells in self._cells.items():
            if cells & missing and index not in self._pending:
                self._pending.append(index)
                self._tentative.discard(index)
                self.requeues += 1

    def all_live_informed(self) -> bool:
        """Whether every worker still alive has been told ``done``."""
        with self._lock:
            now = self.clock()
            return all(
                worker in self._told_done
                or now - seen > self.lease_timeout
                for worker, seen in self._last_seen.items()
            )

    def progress(self) -> dict:
        """Snapshot for logs and timeout diagnostics."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "leased": len(self._leases),
                "tentative": len(self._tentative),
                "workers": len(self._last_seen),
                "requeues": self.requeues,
            }


def _lease_key(lease_id) -> int:
    try:
        return int(lease_id)
    except (TypeError, ValueError):
        return -1


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    """One-request-per-connection JSON server around a ledger + store."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        ledger: GroupLedger,
        plan: "ExperimentPlan",
        store,
        store_lock: threading.Lock,
        share_sessions: bool,
        poll_interval: float,
    ) -> None:
        super().__init__(address, _CoordinatorHandler)
        self.ledger = ledger
        self.plan_payload = plan.to_dict()
        self.plan_cells = {k.as_tuple() for k in plan.runs()}
        self.store = store
        self.store_lock = store_lock
        self.share_sessions = share_sessions
        self.poll_interval = poll_interval

    def dispatch(self, message: dict) -> dict:
        mtype = message.get("type")
        worker = str(message.get("worker", ""))
        if mtype == "hello":
            self.ledger.touch(worker)
            return {
                "type": "welcome",
                "plan": self.plan_payload,
                "share_sessions": self.share_sessions,
                "lease_timeout": self.ledger.lease_timeout,
                "poll_interval": self.poll_interval,
            }
        if mtype == "lease":
            return self.ledger.lease(worker)
        if mtype == "heartbeat":
            return self.ledger.heartbeat(worker, message.get("lease"))
        if mtype == "complete":
            return self.ledger.complete(worker, message.get("lease"))
        if mtype == "records":
            records = message.get("records")
            if not isinstance(records, list):
                raise FleetError("records message without a record list")
            # a worker's reused store may hold cells from other plans;
            # only this plan's cells enter the results artifact
            wanted = [
                r for r in records if record_key(r) in self.plan_cells
            ]
            with self.store_lock:
                merged = self.store.merge(wanted)
            # store first, ledger second — never both locks at once
            # from this side (lease holds ledger and reads the store)
            self.ledger.drained(worker)
            return {
                "type": "ok",
                "merged": len(wanted),
                "ignored": len(records) - len(wanted),
                "total": merged["records"],
            }
        raise FleetError(f"unknown fleet message type {mtype!r}")


class _CoordinatorHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        try:
            message = recv_message(self.request)
            if message is None:
                return
            try:
                reply = self.server.dispatch(message)
            except Exception as exc:  # report, don't kill the server
                reply = {"type": "error", "error": str(exc)}
            send_message(self.request, reply)
        except OSError:
            # a worker died mid-exchange; its lease will expire
            pass


class FleetExecutor:
    """Serve a plan's groups to TCP workers; the distributed executor.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` lets the OS pick (read it back from
        :attr:`address`, or via ``on_bound``).
    lease_timeout:
        Seconds of worker silence after which its group is re-leased.
        Workers heartbeat at a quarter of this, so it bounds both the
        cost of a worker death and the end-of-run linger.
    poll_interval:
        Advertised to workers as their idle re-ask cadence.
    timeout:
        Optional overall wall-clock bound; :class:`FleetError` when the
        plan is still incomplete after this many seconds (``None``
        waits forever — workers may join at any time).
    on_bound:
        Callback invoked with the bound ``(host, port)`` once the
        coordinator accepts connections (tests and the CLI use it to
        launch/announce workers).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        poll_interval: float = 0.5,
        timeout: float | None = None,
        on_bound: Callable[[tuple[str, int]], None] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = float(poll_interval)
        self.timeout = timeout
        self.on_bound = on_bound
        self.address: tuple[str, int] | None = None
        self.requeues = 0

    # ------------------------------------------------------------------
    def execute(
        self,
        runner: "ExperimentRunner",
        plan: "ExperimentPlan",
        done: set[tuple[str, str, int, str]],
    ) -> list[dict] | None:
        _check_process_portable(runner, "fleet execution")
        pending = pending_group_indices(plan, done)
        if not pending:
            return []
        store_lock = threading.Lock()

        def completed_cells() -> set[tuple[str, str, int, str]]:
            with store_lock:
                return runner.store.completed()

        ledger = GroupLedger(
            plan, pending, self.lease_timeout, completed_cells
        )
        server = _CoordinatorServer(
            (self.host, self.port),
            ledger=ledger,
            plan=plan,
            store=runner.store,
            store_lock=store_lock,
            share_sessions=runner.share_sessions,
            poll_interval=self.poll_interval,
        )
        self.address = (server.server_address[0], server.server_address[1])
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="fleet-coordinator",
        )
        thread.start()
        try:
            if self.on_bound is not None:
                self.on_bound(self.address)
            deadline = (
                None
                if self.timeout is None
                else time.monotonic() + self.timeout
            )
            while not ledger.finished.wait(0.25):
                # catch runs whose last worker died after its drain —
                # completion is then visible only from this side
                ledger.poll_completion()
                if deadline is not None and time.monotonic() >= deadline:
                    raise FleetError(
                        f"fleet run timed out after {self.timeout}s: "
                        f"{ledger.progress()}"
                    )
            # linger so idle workers polling for work hear "done"
            # instead of a connection error, bounded by the same
            # staleness rule that presumes silent workers dead
            deadline = time.monotonic() + self.lease_timeout
            while (
                not ledger.all_live_informed()
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
        finally:
            self.requeues = ledger.requeues
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FleetExecutor(host={self.host!r}, port={self.port}, "
            f"lease_timeout={self.lease_timeout})"
        )
