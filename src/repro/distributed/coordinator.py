"""Fleet coordinator: lease work units to TCP workers, merge stores.

The :class:`FleetExecutor` is the distributed arm of the executor seam
(:mod:`repro.distributed.executors`): it serves a plan's pending
:class:`~repro.experiments.work.WorkUnit`\\ s — cell subsets of
``(case, backend)`` groups — over the length-prefixed-JSON protocol of
:mod:`repro.distributed.protocol` to any number of
``repro experiments worker`` processes, on this machine or others.

Scheduling is **cell-level with work stealing**, in one of two modes:

* ``cost`` (the default) — predictive packing. A fleet-wide
  :class:`~repro.experiments.costs.UnitCostModel` (seeded from plan
  priors and engine kernel snapshots, updated online from the cost
  reports workers attach to ``complete``/heartbeat messages) prices
  every pending unit; grants carve a near-target-cost piece off the
  costliest unit, sized **capacity-aware** — proportional to the
  asking worker's measured throughput (cells/second) among the live
  fleet, so a slow machine gets proportionally fewer cells. A worker
  with no throughput sample yet receives a small probe lease first.
  Same-group requeued fragments re-merge before re-lease, the
  ``min_unit_cells`` constant becomes the *floor* under an adaptive
  minimum (the cells amounting to ``target_unit_seconds`` of predicted
  work), and the next lease piggybacks on the ``complete`` reply (with
  the worker's records inline), so a steady-state worker pays zero
  extra round-trips per unit.
* ``halving`` — the original policy: grant the largest pending unit
  whole; when only one unit remains, split it in half for each asker
  down to the ``min_unit_cells`` floor.

A one-case/many-seeds plan (one big group, the shape that used to pin
a whole fleet behind a single worker) spreads across every worker that
asks under either mode. Splitting moves only *where* cells execute:
every cell is reproducible from ``(plan, seed)`` alone, so the store's
bytes are identical at any granularity.

Correctness rests on three rules, all enforced by the
:class:`UnitLedger`:

* **Leases expire.** A worker holds a unit only while it heartbeats; a
  worker that dies (or loses the network) stops renewing and its unit
  — the exact cell subset — is re-leased to the next worker that asks.
  Requeued units re-run from the new worker's own store, so cells a
  worker had *partially* recorded before a stale lease resume rather
  than recompute.
* **Records live on the worker until the coordinator has them.**
  Workers stream every completed run into their own crash-safe local
  :class:`~repro.experiments.store.ResultsStore` and upload it when the
  coordinator asks (``drain``); the coordinator folds uploads into its
  own store through :meth:`ResultsStore.merge` — first writer wins, so
  a cell that was executed twice (stale lease, re-run after a death)
  never duplicates a ``(system, case, seed, backend)`` record.
* **Completion is verified, not assumed.** A unit reported complete
  counts only tentatively; the run finishes when the *coordinator's
  store* records every expected cell. Cells stranded on a dead worker
  (completed but never drained) are detected by this coverage check and
  requeued as fresh units covering exactly the missing cells.

The coordinator never simulates anything itself: it is bookkeeping plus
a store, which is what lets one process oversee a fleet of heavyweight
workers.
"""

from __future__ import annotations

import itertools
import logging
import os
import threading
import time
import socketserver
from typing import TYPE_CHECKING, Callable

from repro.experiments.costs import (
    DEFAULT_SLOW_UNIT_FACTOR,
    UnitCostModel,
    load_cost_model,
    plan_cost_model,
    record_residual,
    save_cost_model,
    seed_plan_priors,
)
from repro.experiments.store import record_key
from repro.experiments.work import WorkSet, WorkUnit, merge_group_units
from repro.obs import telemetry
from repro.obs.http import clear_status_provider, set_status_provider

from repro.distributed.executors import _check_process_portable
from repro.distributed.protocol import (
    FleetError,
    auth_mac,
    auth_nonce,
    check_auth_token,
    recv_message,
    send_message,
    verify_auth,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.runner import ExperimentRunner

__all__ = ["FleetExecutor", "GroupLedger", "UnitLedger"]

log = logging.getLogger("repro.distributed.coordinator")


class UnitLedger:
    """Thread-safe lease/steal/requeue bookkeeping for one fleet run.

    Parameters
    ----------
    workset:
        The pending work, compiled from the plan and the coordinator
        store (unit cells refer to :meth:`ExperimentPlan.groups` order;
        workers rebuild the same plan from the ``welcome`` payload, so
        group indices agree — the cells themselves travel explicitly).
    lease_timeout:
        Seconds without a heartbeat (or any other contact) after which
        a lease is revoked and its unit re-leased; also the staleness
        bound after which a silent worker is presumed dead.
    completed_cells:
        Callable returning the coordinator store's recorded run keys —
        the ground truth of the end-of-run coverage check.
    min_unit_cells:
        Work-stealing floor: when a worker asks and only one pending
        unit remains, it splits as long as both halves keep at least
        this many cells. ``0`` disables splitting (whole-group leases,
        the pre-WorkUnit behaviour). With a ``cost_model`` this is the
        *floor* under the adaptive minimum derived from measured
        per-cell cost.
    cost_model:
        A :class:`~repro.experiments.costs.UnitCostModel` switches the
        grant path to predictive cost-aware packing (see the module
        docstring); ``None`` keeps the original halving policy.
    target_unit_seconds:
        Cost mode's lease-size target: grants aim for at least this
        much predicted work per unit once per-cell cost is measured,
        so tiny sliver leases (one session each, all overhead) stop at
        a wall-clock bound instead of a guessed cell count.
    slow_unit_factor:
        Residual monitoring (cost mode): every completed unit's
        observed/predicted ratio lands in the
        ``repro_cost_residual_ratio`` histogram, and a unit slower
        than ``factor × predicted`` emits a ``slow_unit`` trace event
        naming the worker.
    """

    def __init__(
        self,
        workset: WorkSet,
        lease_timeout: float,
        completed_cells: Callable[[], set[tuple[str, str, int, str]]],
        clock: Callable[[], float] = time.monotonic,
        min_unit_cells: int = 1,
        cost_model: UnitCostModel | None = None,
        target_unit_seconds: float = 1.0,
        slow_unit_factor: float = DEFAULT_SLOW_UNIT_FACTOR,
    ) -> None:
        if lease_timeout <= 0:
            raise FleetError(
                f"lease timeout must be positive, got {lease_timeout}"
            )
        if min_unit_cells < 0:
            raise FleetError(
                f"min_unit_cells must be >= 0, got {min_unit_cells}"
            )
        if target_unit_seconds <= 0:
            raise FleetError(
                f"target_unit_seconds must be positive, got "
                f"{target_unit_seconds}"
            )
        units = workset.pending()
        self._group_of = {
            cell: unit.group for unit in units for cell in unit.cells
        }
        self._expected = set(self._group_of)
        self._pending: list[WorkUnit] = list(units)
        self._leases: dict[int, dict] = {}
        self._lease_ids = itertools.count(1)
        # cells reported complete whose records have not yet been
        # verified in the coordinator store (a set: re-completion after
        # a requeue never double-counts)
        self._tentative: set[tuple[str, str, int, str]] = set()
        self._dirty: set[str] = set()
        # workers asked to leave gracefully: no new grants, `bye` once
        # they hold no lease and owe no records
        self._draining: set[str] = set()
        self._last_seen: dict[str, float] = {}
        # per-worker accounting fed by lease grants plus the telemetry
        # payloads workers attach to heartbeats and complete reports
        self._worker_stats: dict[str, dict] = {}
        self._told_done: set[str] = set()
        self._lock = threading.Lock()
        self.lease_timeout = float(lease_timeout)
        self.min_unit_cells = int(min_unit_cells)
        self.completed_cells = completed_cells
        self.clock = clock
        self.cost_model = cost_model
        self.target_unit_seconds = float(target_unit_seconds)
        self.slow_unit_factor = float(slow_unit_factor)
        # group index -> cost-model kernel key (cost mode prices a
        # unit by its group's (case, backend) kernel)
        self._kernel_of: dict[int, str] = {
            index: UnitCostModel.kernel_key(case.name, backend)
            for index, ((case, backend), _keys) in enumerate(
                workset.plan.groups()
            )
        }
        self.finished = threading.Event()
        self.requeues = 0
        self.steals = 0

    # ------------------------------------------------------------------
    def touch(self, worker: str) -> None:
        """Record contact from ``worker`` (liveness for drain waits)."""
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            self._stats(worker, now)["round_trips"] += 1

    def _stats(self, worker: str, now: float) -> dict:
        """This worker's accounting row (created on first contact)."""
        st = self._worker_stats.get(worker)
        if st is None:
            st = self._worker_stats[worker] = {
                "first_seen": now,
                "leases": 0,
                "units": 0,
                "cells": 0,
                "records": 0,
                "busy_seconds": 0.0,
                "lease_seconds": 0.0,
                # wire-exchange accounting: every request this worker
                # sent (the cost piggybacked granting exists to cut)
                "round_trips": 0,
                "lease_requests": 0,
                "completes": 0,
                "drains": 0,
                "piggybacked": 0,
                # measured capacity, EMA cells/second from unit timings
                "throughput": None,
            }
        return st

    def _fold_telemetry(self, worker: str, st: dict, info) -> None:
        """Fold a worker-reported telemetry payload into its stats row.

        ``busy_seconds`` arrives as the worker's *cumulative* busy time,
        so the fold is a max — late or duplicate reports never inflate
        utilization. The per-worker busy gauge updates live here (not
        only at fleet finish), so a ``/metrics`` scrape mid-run already
        shows ``repro_fleet_worker_busy_seconds{worker=...}``.
        """
        if not isinstance(info, dict):
            return
        try:
            busy = float(info.get("busy_seconds", 0.0))
        except (TypeError, ValueError):
            return
        st["busy_seconds"] = max(st["busy_seconds"], busy)
        telemetry().gauge(
            "repro_fleet_worker_busy_seconds", worker=worker
        ).set(st["busy_seconds"])

    def worker_stats(self) -> dict[str, dict]:
        """Fleet-wide per-worker view: busy/idle split and utilization.

        ``utilization`` is busy time over the worker's membership span
        (first to last contact); ``None`` until the span is non-zero.
        ``lease_seconds`` is coordinator-measured grant-to-complete
        latency, summed over this worker's completed leases.
        """
        with self._lock:
            now = self.clock()
            out: dict[str, dict] = {}
            for worker in sorted(self._worker_stats):
                st = self._worker_stats[worker]
                last = self._last_seen.get(worker, st["first_seen"])
                span = max(last - st["first_seen"], 0.0)
                busy = min(st["busy_seconds"], span) if span > 0 else 0.0
                out[worker] = {
                    "leases": st["leases"],
                    "units": st["units"],
                    "cells": st["cells"],
                    "records": st["records"],
                    "busy_seconds": st["busy_seconds"],
                    "idle_seconds": max(span - busy, 0.0),
                    "span_seconds": span,
                    "lease_seconds": st["lease_seconds"],
                    "round_trips": st["round_trips"],
                    "lease_requests": st["lease_requests"],
                    "completes": st["completes"],
                    "drains": st["drains"],
                    "piggybacked": st["piggybacked"],
                    "throughput": st["throughput"],
                    "utilization": (busy / span) if span > 0 else None,
                    "live": now - self._last_seen.get(worker, 0.0)
                    <= self.lease_timeout,
                    "draining": worker in self._draining,
                }
            return out

    def lease(self, worker: str) -> dict:
        """Answer one work request; the heart of the scheduling policy."""
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            st = self._stats(worker, now)
            st["round_trips"] += 1
            st["lease_requests"] += 1
            return self._lease_locked(worker, now)

    def _lease_locked(self, worker: str, now: float) -> dict:
        """The lease decision, lock held — shared by the ``lease``
        request path and the piggybacked grant on a ``complete``."""
        self._expire(now)
        if self.finished.is_set():
            self._told_done.add(worker)
            return {"type": "done"}
        if worker in self._dirty:
            # collect this worker's records before handing out more
            # work: the shorter a record's worker-only window, the
            # less a worker death costs
            return {"type": "drain"}
        if worker in self._draining:
            # graceful leave: records are in (not dirty), so once no
            # lease is outstanding the worker may go — its leased unit,
            # if any, finishes first (the sequential worker loop only
            # asks between units, so an ask while holding a lease means
            # a heartbeat raced us; waiting is always safe)
            if any(
                lease["worker"] == worker
                for lease in self._leases.values()
            ):
                return {"type": "wait"}
            self._told_done.add(worker)
            return {"type": "bye"}
        if self._pending:
            return self._grant(worker, now)
        if self._leases:
            return {"type": "wait"}
        if any(
            now - self._last_seen.get(w, 0.0) <= self.lease_timeout
            for w in self._dirty
        ):
            return {"type": "wait"}  # a live worker still owes records
        # nothing pending, nothing leased, no live worker undrained:
        # verify coverage against the store, the only ground truth
        missing = self._expected - self.completed_cells()
        if not missing:
            self.finished.set()
            self._told_done.add(worker)
            return {"type": "done"}
        self._requeue_missing(missing)
        return self._grant(worker, now)

    def heartbeat(self, worker: str, lease_id, info: dict | None = None) -> dict:
        """Renew a lease; ``expired`` once the unit was re-leased.

        ``info`` is the worker's optional telemetry payload (cumulative
        busy seconds), folded into the fleet utilization view so
        in-flight work counts, not just completed units.
        """
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            st = self._stats(worker, now)
            st["round_trips"] += 1
            self._fold_telemetry(worker, st, info)
            self._expire(now)
            lease = self._leases.get(_lease_key(lease_id))
            if lease is None or lease["worker"] != worker:
                return {"type": "expired"}
            lease["deadline"] = now + self.lease_timeout
            if self.cost_model is not None and isinstance(info, dict):
                # an in-flight unit's elapsed time bounds its cost from
                # below — a unit running long teaches the model before
                # it completes; engine snapshots fold unconditionally
                unit = lease["unit"]
                kernel = self._kernel_of.get(unit.group, "")
                try:
                    elapsed = float(info.get("unit_seconds", 0.0))
                except (TypeError, ValueError):
                    elapsed = 0.0
                self.cost_model.observe_lower_bound(
                    kernel, unit.n_cells, elapsed
                )
                self.cost_model.fold_engine(info.get("engine_costs"))
            return {"type": "ok"}

    def complete(
        self,
        worker: str,
        lease_id,
        info: dict | None = None,
        drained: bool = False,
        grant_next: bool = False,
    ) -> dict:
        """Mark a leased unit tentatively complete.

        ``drained=True`` means the worker's records arrived inline with
        this report (piggyback mode) and were already merged into the
        coordinator store — the worker owes nothing, so it is not
        marked dirty. ``grant_next=True`` attaches the worker's next
        lease decision as ``next`` on the reply (even on a stale
        lease: the worker still wants work), collapsing the
        complete → drain → records → lease round-trip chain into one
        exchange.
        """
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            st = self._stats(worker, now)
            st["round_trips"] += 1
            st["completes"] += 1
            self._fold_telemetry(worker, st, info)
            self._expire(now)
            if drained:
                self._dirty.discard(worker)
            key = _lease_key(lease_id)
            lease = self._leases.get(key)
            if lease is None or lease["worker"] != worker:
                reply = {"type": "stale"}
                if grant_next:
                    st["piggybacked"] += 1
                    reply["next"] = self._lease_locked(worker, now)
                return reply
            del self._leases[key]
            unit = lease["unit"]
            self._tentative.update(unit.cells)
            if not drained:
                self._dirty.add(worker)
            lease_seconds = max(now - lease["granted"], 0.0)
            st["units"] += 1
            st["cells"] += unit.n_cells
            st["lease_seconds"] += lease_seconds
            unit_seconds = lease_seconds
            if isinstance(info, dict):
                try:
                    st["records"] += int(info.get("records", 0))
                except (TypeError, ValueError):
                    pass
                try:
                    reported = float(info.get("unit_seconds", 0.0))
                    if reported > 0.0:
                        # the worker's own measurement excludes network
                        # and queueing — the honest per-unit cost
                        unit_seconds = reported
                except (TypeError, ValueError):
                    pass
            if unit_seconds > 0.0:
                # measured capacity: EMA of cells/second, the input to
                # cost mode's proportional lease sizing
                throughput = unit.n_cells / unit_seconds
                prev = st["throughput"]
                st["throughput"] = (
                    throughput
                    if prev is None
                    else prev + 0.5 * (throughput - prev)
                )
            if self.cost_model is not None:
                kernel = self._kernel_of.get(unit.group, "")
                # residual first: the ratio must judge the prediction
                # the scheduler actually used, before this unit's own
                # timing teaches the model
                record_residual(
                    self.cost_model,
                    kernel,
                    unit.n_cells,
                    unit_seconds,
                    slow_factor=self.slow_unit_factor,
                    worker=worker,
                    group=unit.group,
                )
                self.cost_model.observe(kernel, unit.n_cells, unit_seconds)
                if isinstance(info, dict):
                    self.cost_model.fold_engine(info.get("engine_costs"))
            telemetry().histogram("repro_fleet_unit_seconds").observe(
                lease_seconds
            )
            log.info(
                "unit complete (lease %s, worker %s, group %d, "
                "%d cells, %.3fs)",
                key,
                worker,
                unit.group,
                unit.n_cells,
                lease_seconds,
                extra={
                    "worker": worker,
                    "lease": key,
                    "group": unit.group,
                    "cells": unit.n_cells,
                    "lease_seconds": lease_seconds,
                },
            )
            reply = {"type": "ok"}
            if grant_next:
                st["piggybacked"] += 1
                reply["next"] = self._lease_locked(worker, now)
            return reply

    def drained(self, worker: str) -> None:
        """The worker's local records reached the coordinator store."""
        with self._lock:
            now = self.clock()
            self._last_seen[worker] = now
            st = self._stats(worker, now)
            st["round_trips"] += 1
            st["drains"] += 1
            self._dirty.discard(worker)

    def drain_worker(self, worker: str) -> None:
        """Ask ``worker`` to leave gracefully (elastic scale-down).

        The worker keeps any lease it holds and finishes it normally;
        it just never receives another grant, and once its records are
        merged its next ask is answered ``bye``. Nothing is requeued —
        a drain moves zero cells, which is the point (contrast a kill,
        where the lease expires and its cells re-run elsewhere).
        """
        with self._lock:
            self._draining.add(worker)
            telemetry().counter("repro_fleet_drains_total").inc()
            log.info(
                "worker %s draining (finish leased units, no new "
                "grants)",
                worker,
                extra={"worker": worker},
            )

    def worker_dirty(self, worker: str) -> bool:
        """Whether ``worker`` still owes records (an un-drained store)."""
        with self._lock:
            return worker in self._dirty

    def holds_lease(self, worker: str) -> bool:
        """Whether ``worker`` currently holds an active lease."""
        with self._lock:
            self._expire(self.clock())
            return any(
                lease["worker"] == worker
                for lease in self._leases.values()
            )

    def grantable(self) -> bool:
        """Whether a lease request right now would receive a unit.

        The multi-plan scheduler (:class:`repro.service.PlanQueue`)
        calls this to shortlist plans before its fair-share pick; the
        end-of-plan coverage/requeue path is handled by the
        :meth:`poll_completion` housekeeping it runs first.
        """
        with self._lock:
            self._expire(self.clock())
            return not self.finished.is_set() and bool(self._pending)

    def predicted_remaining_seconds(self) -> float:
        """Cost-model prediction of the work not yet verified complete.

        Pending plus currently-leased units, priced by the ledger's
        cost model (zero without one). Admission backpressure derives
        Retry-After from this; it is a prediction, not a promise.
        """
        with self._lock:
            if self.cost_model is None or self.finished.is_set():
                return 0.0
            units = list(self._pending) + [
                lease["unit"] for lease in self._leases.values()
            ]
            return sum(
                self.cost_model.estimate(
                    self._kernel_of.get(unit.group, ""), unit.n_cells
                )
                for unit in units
            )

    def poll_completion(self) -> bool:
        """Coordinator-side completion check (needs no worker request).

        ``finished`` is normally set while answering a worker's lease
        request — but if the last worker dies right after draining, no
        request ever arrives even though the store already records
        every cell. The executor polls this while it waits, so a
        complete run always terminates; cells found missing requeue
        as units for whichever worker asks next.
        """
        with self._lock:
            now = self.clock()
            self._expire(now)
            if self.finished.is_set():
                return True
            if self._pending or self._leases:
                return False
            if any(
                now - self._last_seen.get(w, 0.0) <= self.lease_timeout
                for w in self._dirty
            ):
                return False
            missing = self._expected - self.completed_cells()
            if not missing:
                self.finished.set()
                return True
            self._requeue_missing(missing)
            return False

    # ------------------------------------------------------------------
    def _grant(self, worker: str, now: float) -> dict:
        """Lease one unit — stealing half of the last one if need be.

        In halving mode: grants the largest pending unit whole while
        others remain; when it is the *last* pending unit (and
        splittable above the ``min_unit_cells`` floor), it splits
        instead — half granted, half kept pending — so every asking
        worker finds work until the floor is reached. Each split is a
        steal: work that a single worker would otherwise own mid-group
        moves to the asker. Cost mode (:meth:`_grant_cost`) replaces
        the whole-or-half rule with predictive carving.

        The split deliberately does NOT check how many workers exist:
        fleets grow at any moment and hellos race leases, so gating on
        known peers could hand the whole group to the first asker and
        starve everyone who arrives a heartbeat later. The price is
        that a deliberately lone worker drains a group as O(log cells)
        units (one engine session each, so less cross-system cache
        reuse — never different results); single-worker fleets that
        care should run ``min_unit_cells=0`` or a coarse floor.
        """
        if self.cost_model is not None:
            return self._grant_cost(worker, now)
        i = max(
            range(len(self._pending)),
            key=lambda j: self._pending[j].n_cells,
        )
        unit = self._pending.pop(i)
        if (
            not self._pending
            and self.min_unit_cells > 0
            and unit.n_cells >= 2 * self.min_unit_cells
        ):
            unit, kept = unit.split()
            self._pending.append(kept)
            self._count_steal(worker, unit, kept)
        return self._issue(worker, unit, now)

    def _grant_cost(self, worker: str, now: float) -> dict:
        """Cost mode's grant: carve a capacity-sized piece off the
        costliest pending unit.

        Same-group requeued fragments re-merge first (one carve, one
        engine session, instead of re-leasing slivers); the carve size
        comes from :meth:`_target_cells` — proportional to the asking
        worker's measured share of fleet throughput, floored by the
        adaptive minimum. ``min_unit_cells=0`` keeps whole-unit grants
        here too (the operator asked for whole-group leases).
        """
        self._pending = merge_group_units(self._pending)

        def cost(unit: WorkUnit) -> float:
            return self.cost_model.estimate(
                self._kernel_of.get(unit.group, ""), unit.n_cells
            )

        i = max(
            range(len(self._pending)),
            key=lambda j: (cost(self._pending[j]), -j),
        )
        pending_cells = sum(u.n_cells for u in self._pending)
        unit = self._pending.pop(i)
        if self.min_unit_cells > 0:
            target = self._target_cells(worker, unit, pending_cells, now)
            floor = max(self.min_unit_cells, 1)
            if target >= floor and unit.n_cells - target >= floor:
                unit, kept = unit.split_at(target)
                self._pending.append(kept)
                self._count_steal(worker, unit, kept)
        return self._issue(worker, unit, now)

    def _target_cells(
        self, worker: str, unit: WorkUnit, pending_cells: int, now: float
    ) -> int:
        """How many cells this worker's next lease should carry.

        Proportional capacity sizing: the worker's EMA throughput over
        the summed throughput of the live fleet, applied to the
        remaining pending cells. A worker with no sample yet gets a
        small probe (capacity-aware sizing needs a capacity
        measurement); no asker ever receives more than half of what
        remains, for the same reason the halving policy never checks
        worker counts — late joiners and hello/lease races must still
        find work. The floor is the adaptive minimum: the cells
        amounting to ``target_unit_seconds`` of predicted work, capped
        by a fair share so small workloads still spread, and never
        below the configured ``min_unit_cells``.
        """
        floor = max(self.min_unit_cells, 1)
        live = [
            w
            for w, seen in self._last_seen.items()
            if now - seen <= self.lease_timeout
        ]
        n_live = max(len(live), 1)
        fair = max(pending_cells // n_live, 1)
        st = self._worker_stats.get(worker) or {}
        throughput = st.get("throughput")
        if throughput is None:
            probe = max(floor, fair // 4)
            return min(probe, unit.n_cells)
        known = [
            self._worker_stats[w]["throughput"]
            for w in live
            if self._worker_stats.get(w, {}).get("throughput")
        ]
        mean = sum(known) / len(known) if known else throughput
        total = sum(
            self._worker_stats.get(w, {}).get("throughput") or mean
            for w in live
        )
        share = throughput / total if total > 0 else 1.0 / n_live
        kernel = self._kernel_of.get(unit.group, "")
        adaptive = self.cost_model.min_cells_for(
            kernel, self.target_unit_seconds, floor
        )
        adaptive = max(min(adaptive, fair), floor)
        half = max(pending_cells // 2, 1)
        target = max(min(round(pending_cells * share), half), adaptive)
        return min(target, unit.n_cells)

    def _count_steal(
        self, worker: str, granted: WorkUnit, kept: WorkUnit
    ) -> None:
        """Account one split-for-an-asker (mid-group work movement)."""
        self.steals += 1
        telemetry().counter("repro_fleet_steals_total").inc()
        log.info(
            "steal: split group %d for %s (%d cells granted, "
            "%d kept pending)",
            granted.group,
            worker,
            granted.n_cells,
            kept.n_cells,
            extra={
                "worker": worker,
                "group": granted.group,
                "cells": granted.n_cells,
                "kept_cells": kept.n_cells,
            },
        )

    def _issue(self, worker: str, unit: WorkUnit, now: float) -> dict:
        """Record and serialize one granted lease."""
        lease_id = next(self._lease_ids)
        self._leases[lease_id] = {
            "unit": unit,
            "worker": worker,
            "deadline": now + self.lease_timeout,
            "granted": now,
        }
        self._stats(worker, now)["leases"] += 1
        log.info(
            "lease %d granted to %s (group %d, %d cells)",
            lease_id,
            worker,
            unit.group,
            unit.n_cells,
            extra={
                "worker": worker,
                "lease": lease_id,
                "group": unit.group,
                "cells": unit.n_cells,
            },
        )
        return {"type": "unit", "unit": unit.to_dict(), "lease": lease_id}

    def _expire(self, now: float) -> None:
        """Requeue every lease whose worker stopped heartbeating."""
        for lease_id, lease in list(self._leases.items()):
            if lease["deadline"] < now:
                del self._leases[lease_id]
                self._pending.append(lease["unit"])
                self.requeues += 1
                telemetry().counter("repro_fleet_requeues_total").inc()
                log.warning(
                    "lease %d expired (worker %s silent, group %d, "
                    "%d cells requeued)",
                    lease_id,
                    lease["worker"],
                    lease["unit"].group,
                    lease["unit"].n_cells,
                    extra={
                        "worker": lease["worker"],
                        "lease": lease_id,
                        "group": lease["unit"].group,
                        "cells": lease["unit"].n_cells,
                    },
                )

    def _requeue_missing(
        self, missing: set[tuple[str, str, int, str]]
    ) -> None:
        """Requeue cells whose records died with their worker, as one
        fresh unit per affected group."""
        self._tentative -= missing  # their completion was never real
        by_group: dict[int, list] = {}
        for cell in sorted(missing & self._expected):
            by_group.setdefault(self._group_of[cell], []).append(cell)
        for index in sorted(by_group):
            self._pending.append(WorkUnit(index, tuple(by_group[index])))
            self.requeues += 1
            telemetry().counter("repro_fleet_requeues_total").inc()
            log.warning(
                "requeued %d unrecorded cells of group %d (records "
                "died with their worker)",
                len(by_group[index]),
                index,
                extra={"group": index, "cells": len(by_group[index])},
            )

    def all_live_informed(self) -> bool:
        """Whether every worker still alive has been told ``done``."""
        with self._lock:
            now = self.clock()
            return all(
                worker in self._told_done
                or now - seen > self.lease_timeout
                for worker, seen in self._last_seen.items()
            )

    def progress(self) -> dict:
        """Snapshot for logs and timeout diagnostics."""
        with self._lock:
            return {
                "pending_units": len(self._pending),
                "pending_cells": sum(u.n_cells for u in self._pending),
                "leased": len(self._leases),
                "tentative_cells": len(self._tentative),
                "workers": len(self._last_seen),
                "requeues": self.requeues,
                "steals": self.steals,
            }


#: Migration alias — the ledger used to lease whole-group indices.
GroupLedger = UnitLedger


def _lease_key(lease_id) -> int:
    try:
        return int(lease_id)
    except (TypeError, ValueError):
        return -1


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    """One-request-per-connection JSON server around a ledger + store."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        ledger: UnitLedger,
        workset: WorkSet,
        store,
        store_lock: threading.Lock,
        share_sessions: bool,
        poll_interval: float,
        auth_token: str | None = None,
        trace: dict | None = None,
    ) -> None:
        super().__init__(address, _CoordinatorHandler)
        plan = workset.plan
        self.ledger = ledger
        self.plan_name = plan.name
        self.plan_payload = plan.to_dict()
        self.plan_cells = {k.as_tuple() for k in plan.runs()}
        self.store = store
        self.store_lock = store_lock
        self.share_sessions = share_sessions
        self.poll_interval = poll_interval
        self.auth_token = auth_token
        # the run's trace context {trace_id, parent_span} — stamped on
        # welcome and every lease so workers' spans join one tree
        self.trace = dict(trace) if trace else None

    def _stamp_trace(self, reply: dict) -> dict:
        if self.trace is not None and reply.get("type") == "unit":
            reply["trace"] = dict(self.trace)
        return reply

    def _stamp_clock(self, message: dict, reply: dict) -> dict:
        """Answer a ``sent_at`` timestamp with the coordinator-measured
        clock-offset estimate (coordinator time minus worker send time —
        skewed by one-way latency, plenty for timeline alignment)."""
        sent = message.get("sent_at")
        if sent is not None:
            try:
                reply["clock_offset"] = time.time() - float(sent)
            except (TypeError, ValueError):
                pass
        return reply

    def dispatch(self, message: dict) -> dict:
        mtype = message.get("type")
        worker = str(message.get("worker", ""))
        if mtype == "hello":
            self.ledger.touch(worker)
            reply = {
                "type": "welcome",
                "plan": self.plan_payload,
                "share_sessions": self.share_sessions,
                "lease_timeout": self.ledger.lease_timeout,
                "poll_interval": self.poll_interval,
                # cost mode collapses complete→drain→records→lease into
                # one exchange: workers that see this flag attach their
                # records to `complete` and read `next` off the reply
                "piggyback": self.ledger.cost_model is not None,
            }
            if self.trace is not None:
                reply["trace"] = dict(self.trace)
            return reply
        if mtype == "lease":
            return self._stamp_trace(self.ledger.lease(worker))
        if mtype == "heartbeat":
            telemetry().fold_snapshot(message.get("metrics"), worker=worker)
            reply = self.ledger.heartbeat(
                worker, message.get("lease"), message.get("telemetry")
            )
            return self._stamp_clock(message, reply)
        if mtype == "complete":
            telemetry().fold_snapshot(message.get("metrics"), worker=worker)
            drained = False
            records = message.get("records")
            if isinstance(records, list):
                # piggybacked drain: the worker's records arrive with
                # the report; merge them BEFORE the ledger sees the
                # completion so the coverage check already counts them
                wanted = [
                    r for r in records if record_key(r) in self.plan_cells
                ]
                with self.store_lock:
                    self.store.merge(wanted)
                drained = True
            reply = self.ledger.complete(
                worker,
                message.get("lease"),
                message.get("telemetry"),
                drained=drained,
                grant_next=self.ledger.cost_model is not None,
            )
            if isinstance(reply.get("next"), dict):
                self._stamp_trace(reply["next"])
            return self._stamp_clock(message, reply)
        if mtype == "drain":
            # operator request: gracefully retire ``target`` (elastic
            # scale-down — finish leased units, no new grants, `bye`)
            target = str(message.get("target", "") or worker)
            if not target:
                raise FleetError("drain message without a target worker")
            self.ledger.drain_worker(target)
            return {"type": "ok", "draining": target}
        if mtype == "status":
            # read-only fleet snapshot for `repro experiments status`;
            # deliberately does NOT touch() the asker — a status probe
            # must never register as a worker the shutdown linger then
            # waits to inform
            with self.store_lock:
                recorded = len(
                    {
                        record_key(r)
                        for r in self.store.records()
                    }
                    & self.plan_cells
                )
            return {
                "type": "status",
                "plan": self.plan_name,
                "trace": dict(self.trace) if self.trace else None,
                "expected_cells": len(self.plan_cells),
                "recorded_cells": recorded,
                "finished": self.ledger.finished.is_set(),
                "progress": self.ledger.progress(),
                "workers": self.ledger.worker_stats(),
                "costs": (
                    self.ledger.cost_model.to_dict()
                    if self.ledger.cost_model is not None
                    else None
                ),
            }
        if mtype == "records":
            records = message.get("records")
            if not isinstance(records, list):
                raise FleetError("records message without a record list")
            # a worker's reused store may hold cells from other plans;
            # only this plan's cells enter the results artifact
            wanted = [
                r for r in records if record_key(r) in self.plan_cells
            ]
            with self.store_lock:
                merged = self.store.merge(wanted)
            # store first, ledger second — never both locks at once
            # from this side (lease holds ledger and reads the store)
            self.ledger.drained(worker)
            return {
                "type": "ok",
                "merged": len(wanted),
                "ignored": len(records) - len(wanted),
                "total": merged["records"],
            }
        raise FleetError(f"unknown fleet message type {mtype!r}")


class _CoordinatorHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        try:
            message = recv_message(self.request)
            if message is None:
                return
            token = self.server.auth_token
            if token is not None:
                # the mutual handshake runs BEFORE dispatch: an
                # unauthenticated peer sees a random nonce (plus a
                # proof it cannot use without the token) and an error
                # — never a byte of the plan or its records
                if message.get("type") != "auth-hello":
                    # a tokenless client sent its request plainly; the
                    # challenge tells it (and its operator) why
                    send_message(
                        self.request,
                        {"type": "challenge", "nonce": auth_nonce()},
                    )
                    return
                nonce = auth_nonce()
                send_message(
                    self.request,
                    {
                        "type": "challenge",
                        "nonce": nonce,
                        "proof": auth_mac(
                            token,
                            str(message.get("nonce", "")),
                            "coordinator",
                        ),
                    },
                )
                auth = recv_message(self.request)
                if (
                    auth is None
                    or auth.get("type") != "auth"
                    or not verify_auth(
                        token, nonce, auth.get("mac"), "worker"
                    )
                ):
                    if auth is not None:
                        # "denied": the structured marker request()
                        # keys FleetAuthError on (never retried) —
                        # dispatch errors cannot carry it
                        send_message(
                            self.request,
                            {
                                "type": "error",
                                "error": "authentication failed",
                                "denied": "auth",
                            },
                        )
                    return
                message = auth.get("request")
                if not isinstance(message, dict):
                    send_message(
                        self.request,
                        {
                            "type": "error",
                            "error": "authenticated exchange without "
                            "a request payload",
                        },
                    )
                    return
            try:
                reply = self.server.dispatch(message)
            except Exception as exc:  # report, don't kill the server
                reply = {"type": "error", "error": str(exc)}
            send_message(self.request, reply)
        except OSError:
            # a worker died mid-exchange; its lease will expire
            pass


class FleetExecutor:
    """Serve a plan's work units to TCP workers; the distributed executor.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` lets the OS pick (read it back from
        :attr:`address`, or via ``on_bound``).
    lease_timeout:
        Seconds of worker silence after which its unit is re-leased.
        Workers heartbeat at a quarter of this, so it bounds both the
        cost of a worker death and the end-of-run linger.
    poll_interval:
        Advertised to workers as their idle re-ask cadence.
    timeout:
        Optional overall wall-clock bound; :class:`FleetError` when the
        plan is still incomplete after this many seconds (``None``
        waits forever — workers may join at any time).
    min_unit_cells:
        Work-stealing floor (see :class:`UnitLedger`): the last pending
        unit splits for an asking worker while both halves keep at
        least this many cells; ``0`` restores whole-group leases.
    scheduling:
        ``"cost"`` (the default) prices units with a plan-seeded
        :class:`~repro.experiments.costs.UnitCostModel` and grants
        capacity-aware, piggybacked leases; ``"halving"`` restores the
        original largest-whole/split-last policy.
    target_unit_seconds:
        Cost mode's per-lease wall-clock target (see
        :class:`UnitLedger`).
    slow_unit_factor:
        Residual-monitoring threshold (see :class:`UnitLedger`): a
        completed unit slower than ``factor × predicted`` emits a
        ``slow_unit`` trace event naming the worker.
    auth_token:
        Shared secret for the challenge–response handshake (see
        :mod:`repro.distributed.protocol`); defaults to
        ``REPRO_FLEET_TOKEN`` from the environment, and ``None``
        disables authentication.
    cost_snapshot:
        Optional sidecar path for the fleet cost model (cost mode): a
        snapshot found there is restored on start — measured rates
        survive coordinator restarts, so the first grants of the next
        run are already capacity-informed — and the refined model is
        written back on finish. Missing or unreadable files mean a
        cold start, never an error.
    on_bound:
        Callback invoked with the bound ``(host, port)`` once the
        coordinator accepts connections (tests and the CLI use it to
        launch/announce workers).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        poll_interval: float = 0.5,
        timeout: float | None = None,
        min_unit_cells: int = 1,
        scheduling: str = "cost",
        target_unit_seconds: float = 1.0,
        slow_unit_factor: float = DEFAULT_SLOW_UNIT_FACTOR,
        auth_token: str | None = None,
        cost_snapshot: str | os.PathLike | None = None,
        on_bound: Callable[[tuple[str, int]], None] | None = None,
    ) -> None:
        if scheduling not in ("cost", "halving"):
            raise FleetError(
                f"unknown scheduling mode {scheduling!r}; "
                "choose 'cost' or 'halving'"
            )
        self.host = host
        self.port = port
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = float(poll_interval)
        self.timeout = timeout
        self.min_unit_cells = int(min_unit_cells)
        self.scheduling = scheduling
        self.target_unit_seconds = float(target_unit_seconds)
        self.slow_unit_factor = float(slow_unit_factor)
        self.auth_token = check_auth_token(
            auth_token
            if auth_token is not None
            else os.environ.get("REPRO_FLEET_TOKEN")
        )
        self.cost_snapshot = cost_snapshot
        self.on_bound = on_bound
        self.address: tuple[str, int] | None = None
        self.requeues = 0
        self.steals = 0
        # per-worker utilization view of the last execute() (see
        # UnitLedger.worker_stats); also dumped as gauges and a
        # fleet_summary trace event on finish
        self.worker_stats: dict[str, dict] = {}
        # the fleet-wide cost model of the last execute() (cost mode)
        self.cost_model: UnitCostModel | None = None

    # ------------------------------------------------------------------
    def execute(
        self,
        runner: "ExperimentRunner",
        workset: WorkSet,
    ) -> list[dict] | None:
        _check_process_portable(runner, "fleet execution")
        if not workset.pending():
            return []
        store_lock = threading.Lock()

        def completed_cells() -> set[tuple[str, str, int, str]]:
            with store_lock:
                return runner.store.completed()

        if self.scheduling == "cost":
            self.cost_model = plan_cost_model(workset.plan)
            if self.cost_snapshot is not None:
                restored = load_cost_model(self.cost_snapshot)
                if restored is not None:
                    # the snapshot's measured rates win; this plan's
                    # budget priors only fill kernels it never saw
                    seed_plan_priors(
                        restored, workset.plan, overwrite=False
                    )
                    restored.fold_engine(self.cost_model.engine)
                    self.cost_model = restored
        else:
            self.cost_model = None
        ledger = UnitLedger(
            workset,
            self.lease_timeout,
            completed_cells,
            min_unit_cells=self.min_unit_cells,
            cost_model=self.cost_model,
            target_unit_seconds=self.target_unit_seconds,
            slow_unit_factor=self.slow_unit_factor,
        )
        server = _CoordinatorServer(
            (self.host, self.port),
            ledger=ledger,
            workset=workset,
            store=runner.store,
            store_lock=store_lock,
            share_sessions=runner.share_sessions,
            poll_interval=self.poll_interval,
            auth_token=self.auth_token,
            # the runner's `plan` root span adopted this context just
            # before calling us; stamping it on welcome/lease replies
            # hangs every worker's spans under that root
            trace=telemetry().trace_context(),
        )
        self.address = (server.server_address[0], server.server_address[1])
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="fleet-coordinator",
        )
        thread.start()
        # while serving, the observability HTTP endpoint (if any)
        # mirrors the read-only status message for this run
        status_provider = lambda: server.dispatch({"type": "status"})  # noqa: E731
        set_status_provider(status_provider)
        try:
            if self.on_bound is not None:
                self.on_bound(self.address)
            deadline = (
                None
                if self.timeout is None
                else time.monotonic() + self.timeout
            )
            while not ledger.finished.wait(0.25):
                # catch runs whose last worker died after its drain —
                # completion is then visible only from this side
                ledger.poll_completion()
                if deadline is not None and time.monotonic() >= deadline:
                    raise FleetError(
                        f"fleet run timed out after {self.timeout}s: "
                        f"{ledger.progress()}"
                    )
            # linger so idle workers polling for work hear "done"
            # instead of a connection error, bounded by the same
            # staleness rule that presumes silent workers dead
            deadline = time.monotonic() + self.lease_timeout
            while (
                not ledger.all_live_informed()
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
        finally:
            clear_status_provider(status_provider)
            self.requeues = ledger.requeues
            self.steals = ledger.steals
            self.worker_stats = ledger.worker_stats()
            self._export_fleet_telemetry()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
            if self.cost_snapshot is not None and self.cost_model is not None:
                try:
                    save_cost_model(self.cost_model, self.cost_snapshot)
                except OSError as exc:  # a hint, never worth failing a run
                    log.warning(
                        "could not persist cost snapshot %s: %s",
                        self.cost_snapshot,
                        exc,
                    )
        return None

    def _export_fleet_telemetry(self) -> None:
        """Dump the fleet-wide view into the metric registry and sinks."""
        obs = telemetry()
        for worker, st in self.worker_stats.items():
            obs.gauge("repro_fleet_worker_busy_seconds", worker=worker).set(
                st["busy_seconds"]
            )
            obs.gauge("repro_fleet_worker_idle_seconds", worker=worker).set(
                st["idle_seconds"]
            )
            obs.counter("repro_fleet_worker_units_total", worker=worker).inc(
                st["units"]
            )
        obs.emit(
            {
                "event": "fleet_summary",
                "time": time.time(),
                "requeues": self.requeues,
                "steals": self.steals,
                "workers": self.worker_stats,
            }
        )
        log.info(
            "fleet finished: %d workers, %d requeues, %d steals",
            len(self.worker_stats),
            self.requeues,
            self.steals,
            extra={
                "workers": len(self.worker_stats),
                "requeues": self.requeues,
                "steals": self.steals,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FleetExecutor(host={self.host!r}, port={self.port}, "
            f"lease_timeout={self.lease_timeout}, "
            f"min_unit_cells={self.min_unit_cells}, "
            f"scheduling={self.scheduling!r})"
        )
