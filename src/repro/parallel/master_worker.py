"""Explicit Master/Worker message-passing engine.

The OS of Figs. 1/3 is drawn as a Master process exchanging messages
with Worker processes: the Master sends parameter vectors PV, the
Workers run the fire simulator and send back fitness values. While
:class:`~repro.parallel.executor.ProcessPoolEvaluator` hides that
exchange behind ``Pool.map``, this engine makes it explicit — tagged
task/result messages, on-demand self-scheduling, per-worker accounting —
mirroring the canonical mpi4py master/worker pattern so the runtime can
be studied (experiment E3) and later swapped for real MPI.

Protocol
--------
* Master → worker queue: ``(TAG_TASK, task_id, genome_chunk)``,
  ``(TAG_UPDATE, None, problem)`` or ``(TAG_STOP, None, None)``.
* Worker → master queue: ``(worker_id, task_id, fitness_chunk,
  busy_seconds)``.

``TAG_UPDATE`` swaps the worker-side problem in place (run-scoped
reuse: the same worker processes serve every prediction step, receiving
each step's terrain as a message instead of being re-forked). Updates
are barrier-synchronised among the workers so the shared queue cannot
hand two updates to one worker and none to another.

Workers pull tasks as they finish (a shared queue is the
``multiprocessing`` analogue of MPI self-scheduling: any idle worker
takes the next message), so heterogeneous simulation times balance
automatically.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParallelError
from repro.parallel.executor import BatchProblem, _check_result

__all__ = ["MasterWorkerEngine", "WorkerStats"]

TAG_TASK = 0
TAG_STOP = 1
TAG_UPDATE = 2

#: Safety timeout for collecting a single result message, seconds.
_RESULT_TIMEOUT = 300.0

#: Safety timeout for the problem-update rendezvous, seconds.
_UPDATE_TIMEOUT = 120.0


@dataclass
class WorkerStats:
    """Accounting for one worker process."""

    worker_id: int
    tasks_completed: int = 0
    genomes_evaluated: int = 0
    busy_seconds: float = 0.0


def _worker_main(
    worker_id: int,
    problem: BatchProblem,
    task_queue: mp.Queue,
    result_queue: mp.Queue,
    barrier=None,
) -> None:
    """Worker loop: receive tasks, simulate + evaluate, send results."""
    while True:
        tag, task_id, payload = task_queue.get()
        if tag == TAG_STOP:
            break
        if tag == TAG_UPDATE:
            problem = payload
            if barrier is not None:
                barrier.wait(timeout=_UPDATE_TIMEOUT)
            continue
        start = time.perf_counter()
        values = np.asarray(problem.evaluate_batch(payload), dtype=np.float64)
        busy = time.perf_counter() - start
        result_queue.put((worker_id, task_id, values, busy))


class MasterWorkerEngine:
    """One Master (the caller) with ``n_workers`` simulator processes.

    Usable as a ``FitnessFunction``: calling the engine evaluates a
    genome matrix and returns the fitness vector, while per-worker
    statistics accumulate in :attr:`stats`.

    Parameters
    ----------
    problem:
        Picklable batch problem (shipped once at worker start).
    n_workers:
        Number of worker processes (≥ 1).
    chunk_size:
        Genomes per task message. Smaller chunks → better load balance,
        more messages; the default 1 matches the paper's granularity
        (one scenario simulation per worker task).
    backend:
        Optional simulation-engine backend for the Workers. When set
        and the problem supports re-targeting (exposes
        ``with_backend``, as :class:`repro.systems.problem.
        PredictionStepProblem` does), every worker evaluates its chunks
        through that engine backend — e.g. ``"vectorized"`` gives each
        Worker the batched kernel. ``None`` keeps the problem as-is.
    """

    def __init__(
        self,
        problem: BatchProblem,
        n_workers: int,
        chunk_size: int = 1,
        backend: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ParallelError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size < 1:
            raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.backend = backend
        problem = self._retarget(problem)
        self.stats: list[WorkerStats] = [WorkerStats(i) for i in range(n_workers)]
        self.evaluations = 0
        self.problem_updates = 0

        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._tasks: mp.Queue = ctx.Queue()
        self._results: mp.Queue = ctx.Queue()
        self._barrier = ctx.Barrier(n_workers)
        self._workers = [
            ctx.Process(
                target=_worker_main,
                args=(i, problem, self._tasks, self._results, self._barrier),
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()
        self._closed = False

    def _retarget(self, problem: BatchProblem) -> BatchProblem:
        """Apply the configured engine backend to a problem, if any."""
        if self.backend is None:
            return problem
        retarget = getattr(problem, "with_backend", None)
        if retarget is None:
            raise ParallelError(
                f"problem {type(problem).__name__} cannot re-target to "
                f"engine backend {self.backend!r} (no with_backend method)"
            )
        return retarget(self.backend)

    def update_problem(self, problem: BatchProblem) -> None:
        """Swap every worker's problem without restarting the processes.

        Sends one ``TAG_UPDATE`` message per worker; the workers
        rendezvous on a barrier inside the update handler, so each of
        them consumes exactly one message before any later task. This
        is the run-scoped reuse path: per-step terrain reaches the
        standing workers as a message instead of a re-fork.
        """
        if self._closed:
            raise ParallelError("engine already closed")
        problem = self._retarget(problem)
        for _ in self._workers:
            self._tasks.put((TAG_UPDATE, None, problem))
        self.problem_updates += 1

    # ------------------------------------------------------------------
    def __call__(self, genomes: np.ndarray) -> np.ndarray:
        """Distribute one batch and gather the fitness vector (by index)."""
        if self._closed:
            raise ParallelError("engine already closed")
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        n = genomes.shape[0]
        if n == 0:
            return np.zeros(0)

        chunks: list[np.ndarray] = [
            genomes[i : i + self.chunk_size] for i in range(0, n, self.chunk_size)
        ]
        for task_id, chunk in enumerate(chunks):
            self._tasks.put((TAG_TASK, task_id, chunk))

        out = np.full(n, np.nan, dtype=np.float64)
        received = 0
        while received < len(chunks):
            try:
                worker_id, task_id, values, busy = self._results.get(
                    timeout=_RESULT_TIMEOUT
                )
            except Exception as exc:  # queue.Empty or broken queue
                raise ParallelError(
                    f"timed out waiting for worker results "
                    f"({received}/{len(chunks)} received)"
                ) from exc
            start = task_id * self.chunk_size
            out[start : start + len(values)] = values
            st = self.stats[worker_id]
            st.tasks_completed += 1
            st.genomes_evaluated += len(values)
            st.busy_seconds += busy
            received += 1

        self.evaluations += n
        return _check_result(out, n)

    # ------------------------------------------------------------------
    def load_imbalance(self) -> float:
        """max/mean ratio of per-worker busy time (1.0 = perfect balance)."""
        busy = np.asarray([s.busy_seconds for s in self.stats])
        if busy.sum() <= 0:
            return 1.0
        return float(busy.max() / busy.mean())

    def close(self) -> None:
        """Stop all workers (idempotent)."""
        if self._closed:
            return
        for _ in self._workers:
            self._tasks.put((TAG_STOP, None, None))
        for w in self._workers:
            w.join(timeout=30)
            if w.is_alive():  # pragma: no cover - hard kill safety net
                w.terminate()
        self._closed = True

    def __enter__(self) -> "MasterWorkerEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
