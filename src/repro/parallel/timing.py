"""Wall-clock instrumentation and parallel-performance metrics.

Used by the per-stage timing of the pipeline benchmarks (F1–F3) and the
speedup/efficiency experiment (E3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ParallelError

__all__ = ["Timer", "StageTimings", "speedup", "efficiency"]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None


@dataclass
class StageTimings:
    """Named wall-clock accumulators (e.g. one per pipeline stage)."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds under ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    def measure(self, stage: str) -> "_StageContext":
        """Context manager that accumulates into ``stage`` on exit."""
        return _StageContext(self, stage)

    def total(self) -> float:
        """Sum over all stages."""
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Share of the total per stage (empty dict when nothing timed)."""
        total = self.total()
        if total <= 0:
            return {}
        return {k: v / total for k, v in self.seconds.items()}

    def merge(self, other: "StageTimings") -> None:
        """Accumulate another timing set into this one."""
        for k, v in other.seconds.items():
            self.add(k, v)


class _StageContext:
    def __init__(self, timings: StageTimings, stage: str) -> None:
        self._timings = timings
        self._stage = stage
        self._timer = Timer()

    def __enter__(self) -> "_StageContext":
        self._timer.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.__exit__(*exc)
        self._timings.add(self._stage, self._timer.elapsed)


def speedup(serial_seconds: float, parallel_seconds: float) -> float:
    """Classic speedup S = T₁ / T_p."""
    if serial_seconds < 0 or parallel_seconds <= 0:
        raise ParallelError(
            f"invalid timings: serial={serial_seconds}, parallel={parallel_seconds}"
        )
    return serial_seconds / parallel_seconds


def efficiency(serial_seconds: float, parallel_seconds: float, n_workers: int) -> float:
    """Parallel efficiency E = S / p."""
    if n_workers < 1:
        raise ParallelError(f"n_workers must be >= 1, got {n_workers}")
    return speedup(serial_seconds, parallel_seconds) / n_workers
