"""Batch fitness backends: serial and process-pool evaluation.

The evolutionary algorithms consume a ``FitnessFunction`` — any callable
``(n, d) genome matrix → (n,) fitness vector``. This module provides the
two standard backends:

* :class:`SerialEvaluator` — evaluates in-process; the deterministic
  reference every parallel backend must agree with bit-for-bit.
* :class:`ProcessPoolEvaluator` — fans chunks of genomes out to a
  ``multiprocessing`` pool. The *problem* object (terrain, burned maps,
  horizon) is pickled **once** into each worker at initialisation;
  per-call traffic is only the 9-float genomes and the fitness floats,
  following the small-message discipline of the mpi4py guide.

Problems must be picklable and stateless-after-construction (workers
share nothing). The concrete wildfire problem lives in
:mod:`repro.systems.problem`; tests use toy problems.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ParallelError

__all__ = [
    "BatchProblem",
    "SerialEvaluator",
    "ProcessPoolEvaluator",
    "make_evaluator",
    "default_worker_count",
]


@runtime_checkable
class BatchProblem(Protocol):
    """A picklable batch evaluation problem."""

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Fitness of each row of ``genomes`` (shape ``(n, d)`` → ``(n,)``)."""
        ...


def default_worker_count() -> int:
    """A sensible worker count for this machine (≥ 1)."""
    return max(1, (os.cpu_count() or 1))


def _check_result(values: np.ndarray, expected: int) -> np.ndarray:
    out = np.asarray(values, dtype=np.float64).reshape(-1)
    if out.shape != (expected,):
        raise ParallelError(
            f"problem returned {out.shape[0]} fitness values for "
            f"{expected} genomes"
        )
    return out


class SerialEvaluator:
    """In-process evaluation; the reference backend.

    Also counts evaluations and accumulates busy time so benchmarks can
    compare against the parallel backends.
    """

    def __init__(self, problem: BatchProblem) -> None:
        self._problem = problem
        self.evaluations = 0

    def __call__(self, genomes: np.ndarray) -> np.ndarray:
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        values = _check_result(
            self._problem.evaluate_batch(genomes), genomes.shape[0]
        )
        self.evaluations += genomes.shape[0]
        return values

    def close(self) -> None:
        """No resources to release; present for interface symmetry."""

    def __enter__(self) -> "SerialEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------
_WORKER_PROBLEM: BatchProblem | None = None
_WORKER_BARRIER = None

#: Safety timeout for the problem-update rendezvous, seconds.
_UPDATE_TIMEOUT = 120.0


def _init_worker(problem: BatchProblem | None, barrier=None) -> None:
    """Pool initialiser: stash the problem in process-local state."""
    global _WORKER_PROBLEM, _WORKER_BARRIER
    _WORKER_PROBLEM = problem
    _WORKER_BARRIER = barrier


def _install_problem(problem: BatchProblem) -> int:
    """Pool task: swap in a new problem, then rendezvous.

    The barrier holds every worker inside its install task until all
    ``n_workers`` tasks have been picked up, which forces the pool to
    hand exactly one install to each worker — the broadcast primitive
    ``Pool.map`` alone cannot guarantee. Returns the worker's PID so
    the caller can verify the distribution.
    """
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem
    if _WORKER_BARRIER is not None:
        _WORKER_BARRIER.wait(timeout=_UPDATE_TIMEOUT)
    return os.getpid()


def _eval_chunk(chunk: np.ndarray) -> np.ndarray:
    """Evaluate one chunk inside a worker process."""
    if _WORKER_PROBLEM is None:
        raise ParallelError("worker process was not initialised with a problem")
    return np.asarray(_WORKER_PROBLEM.evaluate_batch(chunk), dtype=np.float64)


class ProcessPoolEvaluator:
    """Fan batch evaluations out to a ``multiprocessing`` pool.

    Parameters
    ----------
    problem:
        Picklable batch problem, shipped once per worker. ``None``
        starts an idle pool — call :meth:`update_problem` before the
        first evaluation (the run-scoped engine session does this).
    n_workers:
        Pool size (default: CPU count).
    chunks_per_worker:
        Scheduling granularity: each evaluate call is split into
        ``n_workers × chunks_per_worker`` chunks, balancing load when
        simulation times vary across scenarios (wet scenarios finish
        almost instantly, windy ones burn the whole grid).

    Results are reassembled **by index**, so the output is identical to
    :class:`SerialEvaluator` regardless of completion order. The pool
    outlives any single problem: :meth:`update_problem` swaps the
    worker-side problem in place (one small message per worker), so a
    run-scoped session keeps one pool across all prediction steps
    instead of re-forking per step.
    """

    def __init__(
        self,
        problem: BatchProblem | None,
        n_workers: int | None = None,
        chunks_per_worker: int = 4,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ParallelError(f"n_workers must be >= 1, got {n_workers}")
        if chunks_per_worker < 1:
            raise ParallelError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.n_workers = n_workers or default_worker_count()
        self._chunks_per_worker = chunks_per_worker
        self.evaluations = 0
        self.problem_updates = 0
        # fork is fine here (no threads at pool-creation time) and avoids
        # re-importing the package in every worker on every run.
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._barrier = ctx.Barrier(self.n_workers)
        self._pool = ctx.Pool(
            processes=self.n_workers,
            initializer=_init_worker,
            initargs=(problem, self._barrier),
        )
        self._closed = False

    def update_problem(self, problem: BatchProblem) -> None:
        """Swap the worker-side problem without restarting the pool.

        Broadcasts one install task to every live worker (barrier-
        synchronised so no worker is skipped); per-step state such as
        terrain rasters crosses the pipe once per worker per update,
        and the processes themselves are never re-forked.
        """
        if self._closed:
            raise ParallelError("evaluator already closed")
        pids = self._pool.map(
            _install_problem, [problem] * self.n_workers, chunksize=1
        )
        if len(set(pids)) != self.n_workers:  # pragma: no cover - defensive
            raise ParallelError(
                f"problem update reached {len(set(pids))} of "
                f"{self.n_workers} workers"
            )
        self.problem_updates += 1

    def __call__(self, genomes: np.ndarray) -> np.ndarray:
        if self._closed:
            raise ParallelError("evaluator already closed")
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        n = genomes.shape[0]
        if n == 0:
            return np.zeros(0)
        n_chunks = min(n, self.n_workers * self._chunks_per_worker)
        chunks = np.array_split(genomes, n_chunks)
        results = self._pool.map(_eval_chunk, chunks)
        values = _check_result(np.concatenate(results), n)
        self.evaluations += n
        return values

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if not self._closed:
            self._pool.close()
            self._pool.join()
            self._closed = True

    def __enter__(self) -> "ProcessPoolEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def make_evaluator(
    problem: BatchProblem, n_workers: int | None = None, **kwargs
) -> SerialEvaluator | ProcessPoolEvaluator:
    """Build the right backend for a worker count.

    ``n_workers in (None, 0, 1)`` yields the serial backend; anything
    larger a process pool. This is the single switch the prediction
    systems expose as their ``n_workers`` parameter.
    """
    if not n_workers or n_workers == 1:
        return SerialEvaluator(problem)
    return ProcessPoolEvaluator(problem, n_workers=n_workers, **kwargs)
