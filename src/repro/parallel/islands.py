"""Epoch-based island model — the ESSIM two-level hierarchy.

ESSIM-EA and ESSIM-DE organise the search as islands: a Monitor
coordinates several Masters, each evolving its own population with its
own Workers (§II-B). This module reproduces that topology logically: the
caller (the Monitor) advances every island by ``migration_interval``
generations (an *epoch*), then migration exchanges individuals, until a
shared generation budget or fitness threshold is met.

Any algorithm from :mod:`repro.ea` with the common
``run(evaluate, space, termination, rng, initial_population, observer)``
interface can serve as the per-island engine (GA for ESSIM-EA, DE for
ESSIM-DE).

Migration topologies:

* ``"ring"`` — island *i* sends copies of its best individuals to
  island *(i+1) mod n*, replacing that island's worst (the classic
  unidirectional ring of the ESSIM papers).
* ``"broadcast"`` — the globally best island sends its top individuals
  to every other island.
* ``"none"`` — isolated islands (ablation baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.core.individual import Individual
from repro.core.scenario import ParameterSpace
from repro.ea.history import EvolutionHistory
from repro.ea.termination import Termination
from repro.errors import ParallelError
from repro.rng import ensure_rng, spawn

__all__ = ["IslandAlgorithm", "IslandModelConfig", "IslandResult", "IslandModel"]


class IslandAlgorithm(Protocol):
    """Structural type of a per-island evolutionary engine."""

    def run(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        space: ParameterSpace,
        termination: Termination,
        rng: np.random.Generator | int | None = None,
        initial_population: Sequence[Individual] | None = None,
        observer: Callable | None = None,
    ):  # -> result with .population, .best, .history, .evaluations
        ...


@dataclass(frozen=True)
class IslandModelConfig:
    """Topology and migration policy of the island model."""

    n_islands: int = 4
    migration_interval: int = 5
    n_migrants: int = 2
    topology: str = "ring"

    def __post_init__(self) -> None:
        if self.n_islands < 1:
            raise ParallelError(f"n_islands must be >= 1, got {self.n_islands}")
        if self.migration_interval < 1:
            raise ParallelError(
                f"migration_interval must be >= 1, got {self.migration_interval}"
            )
        if self.n_migrants < 0:
            raise ParallelError(f"n_migrants must be >= 0, got {self.n_migrants}")
        if self.topology not in ("ring", "broadcast", "none"):
            raise ParallelError(f"unknown topology {self.topology!r}")


@dataclass
class IslandResult:
    """Outcome of an island-model run.

    ``populations[i]`` is island *i*'s final population; ``best`` is the
    globally best individual; ``histories[i]`` the per-island evolution
    records (generation numbers are global across epochs).
    """

    populations: list[list[Individual]]
    best: Individual
    histories: list[EvolutionHistory]
    evaluations: int
    generations: int
    stop_reason: str

    def best_island(self) -> int:
        """Index of the island holding the best individual."""
        scores = [
            max((ind.fitness or 0.0) for ind in pop) for pop in self.populations
        ]
        return int(np.argmax(scores))


#: Between-epoch intervention hook (used by the ESSIM-DE tuning): takes
#: (epoch index, list of island populations) and returns possibly
#: modified populations.
Intervention = Callable[[int, list[list[Individual]]], list[list[Individual]]]


class IslandModel:
    """Monitor-level coordination of several island engines."""

    def __init__(
        self,
        algorithm_factory: Callable[[], IslandAlgorithm],
        config: IslandModelConfig | None = None,
    ) -> None:
        self._factory = algorithm_factory
        self.config = config or IslandModelConfig()

    def run(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        space: ParameterSpace,
        termination: Termination,
        rng: np.random.Generator | int | None = None,
        intervention: Intervention | None = None,
    ) -> IslandResult:
        """Evolve all islands to the shared termination condition.

        The generation budget of ``termination`` is global: with a
        budget of G and an interval of g, ⌈G/g⌉ epochs run, the last one
        possibly shortened. The fitness threshold is checked between
        epochs on the global best (the Monitor's view).
        """
        cfg = self.config
        root = ensure_rng(rng)
        island_rngs = spawn(root, cfg.n_islands)
        engines = [self._factory() for _ in range(cfg.n_islands)]

        populations: list[list[Individual] | None] = [None] * cfg.n_islands
        histories = [EvolutionHistory() for _ in range(cfg.n_islands)]
        evaluations = 0
        generations = 0
        best: Individual | None = None
        epoch = 0

        while termination.should_continue(
            generations, best.fitness if best is not None else 0.0  # type: ignore[arg-type]
        ):
            remaining = termination.max_generations - generations
            epoch_gens = min(cfg.migration_interval, remaining)
            epoch_term = Termination(
                max_generations=epoch_gens,
                fitness_threshold=termination.fitness_threshold,
            )
            for i, engine in enumerate(engines):
                result = engine.run(
                    evaluate,
                    space,
                    epoch_term,
                    rng=island_rngs[i],
                    initial_population=populations[i],
                )
                populations[i] = result.population
                evaluations += result.evaluations
                for record in result.history:
                    histories[i].append(
                        _offset_record(record, generations)
                    )
                if best is None or (result.best.fitness or 0.0) > (best.fitness or 0.0):
                    best = result.best.copy()
            generations += epoch_gens

            if intervention is not None:
                populations = list(
                    intervention(epoch, [list(p) for p in populations])  # type: ignore[arg-type]
                )

            if cfg.n_migrants > 0 and cfg.n_islands > 1 and cfg.topology != "none":
                self._migrate(populations)  # type: ignore[arg-type]
            epoch += 1

        assert best is not None  # at least one epoch always runs
        return IslandResult(
            populations=[list(p) for p in populations],  # type: ignore[arg-type]
            best=best,
            histories=histories,
            evaluations=evaluations,
            generations=generations,
            stop_reason=termination.reason(generations, best.fitness or 0.0),
        )

    # ------------------------------------------------------------------
    def _migrate(self, populations: list[list[Individual]]) -> None:
        cfg = self.config
        n = len(populations)

        def top(pop: list[Individual], k: int) -> list[Individual]:
            return sorted(
                pop, key=lambda ind: ind.fitness or 0.0, reverse=True
            )[:k]

        def replace_worst(pop: list[Individual], migrants: list[Individual]) -> None:
            pop.sort(key=lambda ind: ind.fitness or 0.0)
            for j, migrant in enumerate(migrants):
                if j < len(pop):
                    pop[j] = migrant.copy()

        if cfg.topology == "ring":
            emigrants = [top(pop, cfg.n_migrants) for pop in populations]
            for i in range(n):
                replace_worst(populations[(i + 1) % n], emigrants[i])
        elif cfg.topology == "broadcast":
            scores = [
                max((ind.fitness or 0.0) for ind in pop) for pop in populations
            ]
            source = int(np.argmax(scores))
            migrants = top(populations[source], cfg.n_migrants)
            for i in range(n):
                if i != source:
                    replace_worst(populations[i], migrants)


def _offset_record(record, offset: int):
    """Shift a GenerationRecord's counter into the global timeline."""
    from dataclasses import replace

    return replace(record, generation=record.generation + offset)
