"""Parallel runtime: Master/Worker evaluation and the island hierarchy.

The paper's first version parallelises "only ... the evaluation of the
scenarios, i.e., in the simulation process and subsequent computation of
the fitness function" under a one-level Master/Worker design (§III-A).
This package provides that runtime plus the two-level Monitor/Masters/
Workers hierarchy the ESSIM systems use:

* :mod:`~repro.parallel.executor` — batch fitness backends: in-process
  (:class:`SerialEvaluator`) and process-pool
  (:class:`ProcessPoolEvaluator`). Both are drop-in
  ``FitnessFunction`` callables for the algorithms in :mod:`repro.ea`.
* :mod:`~repro.parallel.master_worker` — an explicit message-passing
  Master/Worker engine with on-demand (self-scheduling) task
  distribution, mirroring the mpi4py send/recv idiom over
  ``multiprocessing`` pipes.
* :mod:`~repro.parallel.islands` — epoch-based island model with
  migration (ring/broadcast topologies) used by ESSIM-EA / ESSIM-DE.
* :mod:`~repro.parallel.timing` — wall-clock instrumentation, speedup
  and efficiency metrics (experiment E3).
"""

from repro.parallel.executor import (
    BatchProblem,
    SerialEvaluator,
    ProcessPoolEvaluator,
    make_evaluator,
)
from repro.parallel.master_worker import MasterWorkerEngine, WorkerStats
from repro.parallel.islands import IslandModel, IslandModelConfig, IslandResult
from repro.parallel.timing import Timer, StageTimings, speedup, efficiency

__all__ = [
    "BatchProblem",
    "SerialEvaluator",
    "ProcessPoolEvaluator",
    "make_evaluator",
    "MasterWorkerEngine",
    "WorkerStats",
    "IslandModel",
    "IslandModelConfig",
    "IslandResult",
    "Timer",
    "StageTimings",
    "speedup",
    "efficiency",
]
