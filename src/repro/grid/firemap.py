"""Fire maps: per-cell ignition times and derived burned masks / fire lines.

The simulator's output follows the paper's convention: "another map
indicating the time instant of ignition of each cell, that is, the moment
when that cell is reached by the fire". Internally never-ignited cells
hold ``+inf`` (rather than the paper's 0) so that "burned by time t" is
the natural comparison ``times <= t``; :meth:`IgnitionMap.to_paper_convention`
converts to the 0-for-unburned encoding when needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "IgnitionMap",
    "burned_mask",
    "fire_line",
    "fire_perimeter_cells",
]

#: Sentinel for cells never reached by the fire.
NEVER = np.inf


@dataclass(frozen=True)
class IgnitionMap:
    """Per-cell time of ignition (minutes), ``+inf`` where never ignited.

    Instances are immutable value objects; all derivations return new
    arrays.
    """

    times: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=np.float64)
        if t.ndim != 2:
            raise SimulationError(f"ignition map must be 2-D, got shape {t.shape}")
        if (t[np.isfinite(t)] < 0).any():
            raise SimulationError("ignition times must be non-negative")
        object.__setattr__(self, "times", t)

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(rows, cols)``."""
        return self.times.shape  # type: ignore[return-value]

    def burned(self, at_time: float | None = None) -> np.ndarray:
        """Boolean mask of cells ignited at or before ``at_time``.

        ``None`` means "ever ignited during the simulation horizon".
        """
        if at_time is None:
            return np.isfinite(self.times)
        return self.times <= at_time

    def burned_area_cells(self, at_time: float | None = None) -> int:
        """Number of burned cells at ``at_time``."""
        return int(self.burned(at_time).sum())

    def arrival_horizon(self) -> float:
        """Latest finite ignition time (0.0 for an all-unburned map)."""
        finite = self.times[np.isfinite(self.times)]
        return float(finite.max()) if finite.size else 0.0

    def to_paper_convention(self) -> np.ndarray:
        """Map with 0 for never-ignited cells (the paper's encoding).

        Ignition points (time 0) are encoded as a small epsilon so they
        remain distinguishable from unburned cells.
        """
        out = np.where(np.isfinite(self.times), self.times, 0.0)
        # ignition points burn at t=0; keep them non-zero in this encoding
        ignited_at_zero = np.isfinite(self.times) & (self.times == 0.0)
        out[ignited_at_zero] = np.finfo(np.float64).tiny
        return out

    @classmethod
    def from_paper_convention(cls, arr: np.ndarray) -> "IgnitionMap":
        """Inverse of :meth:`to_paper_convention`."""
        a = np.asarray(arr, dtype=np.float64)
        times = np.where(a > 0, a, NEVER)
        times[a == np.finfo(np.float64).tiny] = 0.0
        return cls(times=times)


def burned_mask(ignition: IgnitionMap | np.ndarray, at_time: float | None = None) -> np.ndarray:
    """Burned mask from an :class:`IgnitionMap` or raw times array."""
    if isinstance(ignition, IgnitionMap):
        return ignition.burned(at_time)
    times = np.asarray(ignition, dtype=np.float64)
    if at_time is None:
        return np.isfinite(times)
    return times <= at_time


def fire_line(burned: np.ndarray) -> np.ndarray:
    """Boolean mask of the fire line (frontier) of a burned region.

    A burned cell belongs to the fire line when at least one of its
    4-neighbours is unburned or it touches the grid border. This is the
    discrete analogue of the RFL/PFL maps of the paper.
    """
    b = np.asarray(burned, dtype=bool)
    if b.ndim != 2:
        raise SimulationError(f"burned mask must be 2-D, got shape {b.shape}")
    interior = np.zeros_like(b)
    # a cell is interior iff it and all 4 neighbours are burned
    interior[1:-1, 1:-1] = (
        b[1:-1, 1:-1]
        & b[:-2, 1:-1]
        & b[2:, 1:-1]
        & b[1:-1, :-2]
        & b[1:-1, 2:]
    )
    return b & ~interior


def fire_perimeter_cells(burned: np.ndarray) -> int:
    """Number of cells on the fire line."""
    return int(fire_line(burned).sum())
