"""Terrain description consumed by the fire simulator.

In the ESS lineage the *scenario* (parameter vector, Table I of the
paper) describes environmental conditions and terrain topography as
scalars — the optimisation searches over uniform values of fuel model,
slope and aspect. The :class:`Terrain` therefore primarily fixes the grid
geometry; per-cell rasters are optional extensions used by the
heterogeneous workloads and override the scenario scalars when present.

Units
-----
* ``cell_size`` — metres (converted to the Rothermel foot/minute unit
  system inside :mod:`repro.firelib.rothermel`).
* ``slope`` — degrees from horizontal (0–81, Table I).
* ``aspect`` — degrees clockwise from North; the direction the surface
  *faces* (downslope direction), per the fireLib/BehavePlus convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TerrainError

__all__ = ["Terrain"]

#: Valid NFFL fuel model codes; 0 denotes an unburnable cell (rock, water).
_VALID_FUEL_CODES = frozenset(range(0, 14))


@dataclass(frozen=True)
class Terrain:
    """Static description of the simulated landscape.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (cells).
    cell_size:
        Side of a (square) cell in metres. Must be positive.
    fuel:
        Optional per-cell NFFL fuel-model codes (``int`` array, 0–13;
        0 = unburnable). When ``None`` the scenario's ``Model`` scalar
        applies everywhere.
    slope, aspect:
        Optional per-cell rasters (degrees). When ``None`` the
        scenario's ``Slope``/``Aspect`` scalars apply everywhere.
    unburnable:
        Optional boolean mask of cells the fire can never enter.
        Combined with ``fuel == 0`` cells.
    """

    rows: int
    cols: int
    cell_size: float = 30.0
    fuel: np.ndarray | None = None
    slope: np.ndarray | None = None
    aspect: np.ndarray | None = None
    unburnable: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise TerrainError(
                f"terrain must be at least 2x2 cells, got {self.rows}x{self.cols}"
            )
        if not (self.cell_size > 0) or not np.isfinite(self.cell_size):
            raise TerrainError(f"cell_size must be positive, got {self.cell_size}")
        for name in ("fuel", "slope", "aspect", "unburnable"):
            arr = getattr(self, name)
            if arr is None:
                continue
            arr = np.asarray(arr)
            if arr.shape != self.shape:
                raise TerrainError(
                    f"{name} raster shape {arr.shape} != terrain shape {self.shape}"
                )
            object.__setattr__(self, name, arr)
        if self.fuel is not None:
            codes = np.unique(self.fuel)
            bad = set(int(c) for c in codes) - _VALID_FUEL_CODES
            if bad:
                raise TerrainError(f"invalid fuel model codes in raster: {sorted(bad)}")
            object.__setattr__(self, "fuel", self.fuel.astype(np.int64))
        if self.slope is not None:
            s = self.slope.astype(np.float64)
            if (s < 0).any() or (s >= 90).any():
                raise TerrainError("slope raster must be within [0, 90) degrees")
            object.__setattr__(self, "slope", s)
        if self.aspect is not None:
            object.__setattr__(
                self, "aspect", np.mod(self.aspect.astype(np.float64), 360.0)
            )
        if self.unburnable is not None:
            object.__setattr__(self, "unburnable", self.unburnable.astype(bool))

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(rows, cols)``."""
        return (self.rows, self.cols)

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return self.rows * self.cols

    @property
    def extent_m(self) -> tuple[float, float]:
        """Physical extent ``(height_m, width_m)``."""
        return (self.rows * self.cell_size, self.cols * self.cell_size)

    def center(self) -> tuple[int, int]:
        """Index of the central cell."""
        return (self.rows // 2, self.cols // 2)

    def contains(self, row: int, col: int) -> bool:
        """Whether ``(row, col)`` is a valid cell index."""
        return 0 <= row < self.rows and 0 <= col < self.cols

    def blocked_mask(self) -> np.ndarray:
        """Boolean mask of cells the fire can never enter."""
        mask = np.zeros(self.shape, dtype=bool)
        if self.fuel is not None:
            mask |= self.fuel == 0
        if self.unburnable is not None:
            mask |= self.unburnable
        return mask

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, rows: int, cols: int, cell_size: float = 30.0) -> "Terrain":
        """Homogeneous terrain: every property comes from the scenario."""
        return cls(rows=rows, cols=cols, cell_size=cell_size)

    @classmethod
    def with_fuel_patches(
        cls,
        rows: int,
        cols: int,
        base_model: int,
        patches: list[tuple[slice, slice, int]],
        cell_size: float = 30.0,
    ) -> "Terrain":
        """Terrain with rectangular fuel patches over a base model.

        ``patches`` is a list of ``(row_slice, col_slice, fuel_code)``
        applied in order (later patches overwrite earlier ones).
        """
        fuel = np.full((rows, cols), base_model, dtype=np.int64)
        for rs, cs, code in patches:
            fuel[rs, cs] = code
        return cls(rows=rows, cols=cols, cell_size=cell_size, fuel=fuel)

    @classmethod
    def with_ridge(
        cls,
        rows: int,
        cols: int,
        max_slope: float = 30.0,
        cell_size: float = 30.0,
    ) -> "Terrain":
        """Terrain with a central north-south ridge.

        Slope increases linearly towards the ridge line; cells west of
        the ridge face west (aspect 270) and cells east face east
        (aspect 90). Used by the heterogeneous workloads.
        """
        ridge_col = cols // 2
        dist = np.abs(np.arange(cols) - ridge_col)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = 1.0 - dist / max(ridge_col, 1)
        slope_row = np.clip(frac, 0.0, 1.0) * max_slope
        slope = np.tile(slope_row, (rows, 1))
        aspect = np.where(np.arange(cols) < ridge_col, 270.0, 90.0)
        aspect = np.tile(aspect, (rows, 1))
        return cls(
            rows=rows,
            cols=cols,
            cell_size=cell_size,
            slope=slope,
            aspect=aspect,
        )

    @classmethod
    def with_river(
        cls,
        rows: int,
        cols: int,
        river_col: int | None = None,
        width: int = 1,
        gap_row: int | None = None,
        cell_size: float = 30.0,
    ) -> "Terrain":
        """Terrain crossed by an unburnable vertical strip ("river").

        An optional ``gap_row`` leaves a one-cell ford the fire can cross,
        which makes the prediction problem deceptive: scenarios must push
        the fire through the gap to match reality.
        """
        river_col = cols // 2 if river_col is None else river_col
        mask = np.zeros((rows, cols), dtype=bool)
        mask[:, river_col : river_col + width] = True
        if gap_row is not None:
            mask[gap_row, river_col : river_col + width] = False
        return cls(rows=rows, cols=cols, cell_size=cell_size, unburnable=mask)
