"""Serialisation of terrains and fire maps.

Persists rasters as ``.npz`` archives so workloads and reference fires can
be saved/reloaded by examples and benchmarks without re-simulation. The
format is intentionally trivial: a flat namespace of arrays plus a scalar
metadata vector, all NumPy-native (no pickle), so files are portable
across Python versions.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TerrainError
from repro.grid.firemap import IgnitionMap
from repro.grid.terrain import Terrain

__all__ = ["save_terrain", "load_terrain", "save_ignition_map", "load_ignition_map"]

_FORMAT_VERSION = 1


def save_terrain(path: str | os.PathLike, terrain: Terrain) -> None:
    """Write ``terrain`` to ``path`` as an ``.npz`` archive."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION]),
        "geometry": np.array(
            [terrain.rows, terrain.cols, terrain.cell_size], dtype=np.float64
        ),
    }
    for name in ("fuel", "slope", "aspect", "unburnable"):
        arr = getattr(terrain, name)
        if arr is not None:
            payload[name] = arr
    np.savez(path, **payload)


def load_terrain(path: str | os.PathLike) -> Terrain:
    """Read a terrain previously written by :func:`save_terrain`."""
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise TerrainError(f"unsupported terrain file version: {version}")
        rows, cols, cell_size = data["geometry"]
        kwargs = {}
        for name in ("fuel", "slope", "aspect", "unburnable"):
            if name in data:
                kwargs[name] = data[name]
        return Terrain(
            rows=int(rows), cols=int(cols), cell_size=float(cell_size), **kwargs
        )


def save_ignition_map(path: str | os.PathLike, ignition: IgnitionMap) -> None:
    """Write an ignition map to ``path`` as an ``.npz`` archive."""
    np.savez(
        path,
        format_version=np.array([_FORMAT_VERSION]),
        times=ignition.times,
    )


def load_ignition_map(path: str | os.PathLike) -> IgnitionMap:
    """Read an ignition map previously written by :func:`save_ignition_map`."""
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise TerrainError(f"unsupported ignition map file version: {version}")
        return IgnitionMap(times=data["times"])
