"""Raster substrate: terrain descriptions and fire maps.

The fire simulator (:mod:`repro.firelib`) operates on regular square-cell
grids. This package provides the two raster types it consumes/produces:

* :class:`~repro.grid.terrain.Terrain` — static description of the land:
  grid geometry, optional per-cell fuel/slope/aspect rasters and an
  unburnable mask.
* :class:`~repro.grid.firemap.IgnitionMap` — per-cell time-of-ignition
  raster produced by a simulation, with helpers to derive burned masks
  and fire lines at arbitrary instants.
"""

from repro.grid.terrain import Terrain
from repro.grid.firemap import (
    IgnitionMap,
    burned_mask,
    fire_line,
    fire_perimeter_cells,
)

__all__ = [
    "Terrain",
    "IgnitionMap",
    "burned_mask",
    "fire_line",
    "fire_perimeter_cells",
]
