"""The OS-Worker job: simulate a scenario and score it (Eq. 3).

:class:`PredictionStepProblem` is the picklable unit shipped to Workers:
it carries the terrain, the burned region at the step start (RFL_{i−1}),
the real burned region at the step end (RFL_i) and the step duration.
``evaluate_batch`` decodes genomes into scenarios, restarts the fire
simulator from the start region and returns the Jaccard fitness of each
simulated map — exactly the ``FS`` + ``FF`` box of Figs. 1/3.

Since the engine subsystem landed, the problem no longer loops over the
simulator itself: every batch goes through a process-local
:class:`~repro.engine.SimulationEngine` holding the configured backend
(``reference`` by default) and scenario-result cache. The engine — like
the embedded :class:`~repro.firelib.simulator.FireSimulator` before it —
is rebuilt lazily after unpickling, so only rasters cross process
boundaries once per worker; per-call traffic is genomes and floats.

With a run-scoped :class:`~repro.engine.EngineSession` attached, the
problem stops constructing engines altogether: its engine is a
``session.for_step(...)`` view sharing the run's worker pool and
cross-step cache. The session never crosses process boundaries —
pickling drops it, and unpickled worker-side copies fall back to the
per-step engine above.
"""

from __future__ import annotations

import numpy as np

from repro.core.scenario import ParameterSpace
from repro.engine import SimulationEngine
from repro.errors import SimulationError
from repro.firelib.simulator import FireSimulator
from repro.grid.terrain import Terrain

__all__ = ["PredictionStepProblem"]


class PredictionStepProblem:
    """Batch fitness problem for one prediction step.

    Parameters
    ----------
    terrain:
        The landscape.
    start_burned:
        Burned region at the step start (the region enclosed by
        RFL_{i−1}); the simulation restarts from it.
    real_burned:
        Really burned region at the step end (RFL_i); the Eq. 3
        reference. Pre-burned cells (= ``start_burned``) are excluded
        from the fitness per the paper.
    horizon:
        Step duration in minutes (t_i − t_{i−1}).
    space:
        Genome ↔ scenario codec (defaults to the Table I space).
    n_neighbors:
        Propagation stencil for the simulator.
    backend:
        Engine backend evaluating this problem's batches. ``process``
        is mapped to ``vectorized`` here — the problem's own engine is
        always in-process (pool fan-out happens one level up, in
        :class:`~repro.engine.SimulationEngine` or the Master/Worker
        engine), so workers never nest pools.
    cache_size:
        LRU capacity of the scenario-result cache (0 = off). Each
        process holds its own cache.
    session:
        Optional run-scoped :class:`~repro.engine.EngineSession`; when
        given, :attr:`engine` is a ``session.for_step(self)`` view
        instead of a privately constructed engine. Dropped on pickling.
    """

    def __init__(
        self,
        terrain: Terrain,
        start_burned: np.ndarray,
        real_burned: np.ndarray,
        horizon: float,
        space: ParameterSpace | None = None,
        n_neighbors: int = 8,
        backend: str = "reference",
        cache_size: int = 0,
        session=None,
    ) -> None:
        self.terrain = terrain
        self.start_burned = np.asarray(start_burned, dtype=bool)
        self.real_burned = np.asarray(real_burned, dtype=bool)
        if self.start_burned.shape != terrain.shape:
            raise SimulationError(
                f"start_burned shape {self.start_burned.shape} != terrain "
                f"{terrain.shape}"
            )
        if self.real_burned.shape != terrain.shape:
            raise SimulationError(
                f"real_burned shape {self.real_burned.shape} != terrain "
                f"{terrain.shape}"
            )
        if not self.start_burned.any():
            raise SimulationError("start_burned must contain at least one cell")
        if horizon <= 0 or not np.isfinite(horizon):
            raise SimulationError(
                f"horizon must be a positive finite time: {horizon}"
            )
        self.horizon = float(horizon)
        self.space = space or ParameterSpace()
        self.n_neighbors = n_neighbors
        self.backend = backend
        self.cache_size = cache_size
        self._session = session
        self._simulator: FireSimulator | None = None
        self._engine: SimulationEngine | None = None

    # ------------------------------------------------------------------
    # Pickling: drop the simulator, engine and session; workers rebuild
    # lazily (sessions are strictly master-side — they own the pool).
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_simulator"] = None
        state["_engine"] = None
        state["_session"] = None
        return state

    @property
    def simulator(self) -> FireSimulator:
        """Process-local simulator (built on first use)."""
        if self._simulator is None:
            self._simulator = FireSimulator(
                self.terrain, n_neighbors=self.n_neighbors
            )
        return self._simulator

    def attach_session(self, session) -> None:
        """Route this problem's engine through a run-scoped session."""
        self._session = session
        self._engine = None

    @property
    def engine(self) -> SimulationEngine:
        """Process-local simulation engine (built on first use)."""
        if self._engine is None:
            if self._session is not None:
                self._engine = self._session.for_step(self)
            else:
                backend = (
                    "vectorized" if self.backend == "process" else self.backend
                )
                self._engine = SimulationEngine.from_problem(
                    self, backend=backend, cache_size=self.cache_size
                )
        return self._engine

    def with_backend(
        self, backend: str, cache_size: int | None = None
    ) -> "PredictionStepProblem":
        """Copy of this problem evaluating through another backend."""
        return PredictionStepProblem(
            terrain=self.terrain,
            start_burned=self.start_burned,
            real_burned=self.real_burned,
            horizon=self.horizon,
            space=self.space,
            n_neighbors=self.n_neighbors,
            backend=backend,
            cache_size=self.cache_size if cache_size is None else cache_size,
        )

    # ------------------------------------------------------------------
    def burned_map(self, genome: np.ndarray) -> np.ndarray:
        """Simulated burned region at the step end for one genome."""
        return self.engine.burned_maps(np.asarray(genome, dtype=np.float64))[0]

    def burned_maps(self, genomes: np.ndarray) -> np.ndarray:
        """Stack of burned maps for a genome matrix — the SS input."""
        return self.engine.burned_maps(genomes)

    def evaluate_one(self, genome: np.ndarray) -> float:
        """Eq. 3 fitness of a single genome (cache-aware, like batches)."""
        return float(
            self.engine.evaluate_batch(np.asarray(genome, dtype=np.float64))[0]
        )

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Fitness vector of a genome matrix (the Worker loop)."""
        return self.engine.evaluate_batch(genomes)
