"""The OS-Worker job: simulate a scenario and score it (Eq. 3).

:class:`PredictionStepProblem` is the picklable unit shipped to Workers:
it carries the terrain, the burned region at the step start (RFL_{i−1}),
the real burned region at the step end (RFL_i) and the step duration.
``evaluate_batch`` decodes genomes into scenarios, restarts the fire
simulator from the start region and returns the Jaccard fitness of each
simulated map — exactly the ``FS`` + ``FF`` box of Figs. 1/3.

The embedded :class:`~repro.firelib.simulator.FireSimulator` is rebuilt
lazily after unpickling, so only rasters cross process boundaries once
per worker; per-call traffic is genomes and floats.
"""

from __future__ import annotations

import numpy as np

from repro.core.fitness import jaccard_fitness
from repro.core.scenario import ParameterSpace
from repro.errors import SimulationError
from repro.firelib.simulator import FireSimulator
from repro.grid.terrain import Terrain

__all__ = ["PredictionStepProblem"]


class PredictionStepProblem:
    """Batch fitness problem for one prediction step.

    Parameters
    ----------
    terrain:
        The landscape.
    start_burned:
        Burned region at the step start (the region enclosed by
        RFL_{i−1}); the simulation restarts from it.
    real_burned:
        Really burned region at the step end (RFL_i); the Eq. 3
        reference. Pre-burned cells (= ``start_burned``) are excluded
        from the fitness per the paper.
    horizon:
        Step duration in minutes (t_i − t_{i−1}).
    space:
        Genome ↔ scenario codec (defaults to the Table I space).
    n_neighbors:
        Propagation stencil for the simulator.
    """

    def __init__(
        self,
        terrain: Terrain,
        start_burned: np.ndarray,
        real_burned: np.ndarray,
        horizon: float,
        space: ParameterSpace | None = None,
        n_neighbors: int = 8,
    ) -> None:
        self.terrain = terrain
        self.start_burned = np.asarray(start_burned, dtype=bool)
        self.real_burned = np.asarray(real_burned, dtype=bool)
        if self.start_burned.shape != terrain.shape:
            raise SimulationError(
                f"start_burned shape {self.start_burned.shape} != terrain "
                f"{terrain.shape}"
            )
        if self.real_burned.shape != terrain.shape:
            raise SimulationError(
                f"real_burned shape {self.real_burned.shape} != terrain "
                f"{terrain.shape}"
            )
        if not self.start_burned.any():
            raise SimulationError("start_burned must contain at least one cell")
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        self.space = space or ParameterSpace()
        self.n_neighbors = n_neighbors
        self._simulator: FireSimulator | None = None

    # ------------------------------------------------------------------
    # Pickling: drop the simulator; workers rebuild it lazily.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_simulator"] = None
        return state

    @property
    def simulator(self) -> FireSimulator:
        """Process-local simulator (built on first use)."""
        if self._simulator is None:
            self._simulator = FireSimulator(
                self.terrain, n_neighbors=self.n_neighbors
            )
        return self._simulator

    # ------------------------------------------------------------------
    def burned_map(self, genome: np.ndarray) -> np.ndarray:
        """Simulated burned region at the step end for one genome."""
        scenario = self.space.decode(genome)
        result = self.simulator.simulate_from_burned(
            scenario, self.start_burned, self.horizon
        )
        # Cells burned at start stay burned: the simulation seeds them
        # at t=0 so they are always within the horizon.
        return result.burned()

    def burned_maps(self, genomes: np.ndarray) -> np.ndarray:
        """Stack of burned maps for a genome matrix — the SS input."""
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        maps = np.empty((genomes.shape[0], *self.terrain.shape), dtype=bool)
        for i, g in enumerate(genomes):
            maps[i] = self.burned_map(g)
        return maps

    def evaluate_one(self, genome: np.ndarray) -> float:
        """Eq. 3 fitness of a single genome."""
        return jaccard_fitness(
            self.real_burned, self.burned_map(genome), self.start_burned
        )

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Fitness vector of a genome matrix (the Worker loop)."""
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        out = np.empty(genomes.shape[0], dtype=np.float64)
        for i, g in enumerate(genomes):
            out[i] = self.evaluate_one(g)
        return out
