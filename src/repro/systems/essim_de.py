"""ESSIM-DE — two-level island Differential Evolution with tuning.

Same Monitor/Masters/Workers topology as ESSIM-EA, but each island runs
DE. §II-B records two facts this implementation reproduces:

1. the plain method "significantly reduced response times, but did not
   obtain quality improvements", suffering premature convergence and
   stagnation;
2. two automatic/dynamic tuning metrics — a population **restart
   operator** and **IQR-factor** population analysis — recovered
   quality and response time.

Both tuning metrics (:mod:`repro.tuning`) can be enabled through the
config and are applied by the island Monitor between epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.individual import genomes_matrix
from repro.core.scenario import ParameterSpace
from repro.ea.de import DEConfig, DifferentialEvolution
from repro.ea.termination import Termination
from repro.parallel.islands import IslandModel, IslandModelConfig
from repro.rng import spawn
from repro.systems.base import OSOutput, PredictionSystem
from repro.tuning.iqr import IQRTuning
from repro.tuning.restart import PopulationRestart

__all__ = ["ESSIMDEConfig", "ESSIMDE"]


@dataclass(frozen=True)
class ESSIMDEConfig:
    """ESSIM-DE hyper-parameters: per-island DE + topology + tuning.

    ``tuning`` selects the dynamic tuning applied between epochs:
    ``"none"`` (the original method), ``"restart"``, ``"iqr"`` or
    ``"both"`` (restart first, then IQR).

    ``solution_policy`` reproduces the two ESSIM-DE result-harvesting
    versions §II-B describes:

    * ``"best_only"`` — the *first* version: only the fittest half of
      each island population feeds the Statistical Stage ("the quality
      of the results did not improve with respect to ESSIM-EA");
    * ``"population"`` (default) — the *modified* version "that tends
      toward greater diversity, where a part of the results are
      incorporated in the prediction process regardless of their
      fitness": the whole final population is used.
    """

    de: DEConfig = field(default_factory=lambda: DEConfig(population_size=25))
    islands: IslandModelConfig = field(default_factory=IslandModelConfig)
    max_generations: int = 15
    fitness_threshold: float = 1.0
    tuning: str = "none"
    restart_patience: int = 2
    iqr_threshold: float = 0.02
    solution_policy: str = "population"

    def __post_init__(self) -> None:
        if self.tuning not in ("none", "restart", "iqr", "both"):
            raise ValueError(f"unknown tuning mode {self.tuning!r}")
        if self.solution_policy not in ("population", "best_only"):
            raise ValueError(
                f"unknown solution policy {self.solution_policy!r}"
            )

    def termination(self) -> Termination:
        """Global (Monitor-level) stopping condition."""
        return Termination(
            max_generations=self.max_generations,
            fitness_threshold=self.fitness_threshold,
        )


class ESSIMDE(PredictionSystem):
    """Evolutionary Statistical System with Island Model (DE)."""

    name = "ESSIM-DE"

    def __init__(
        self,
        config: ESSIMDEConfig | None = None,
        n_workers: int = 1,
        space: ParameterSpace | None = None,
        backend: str = "reference",
        cache_size: int = 0,
        session_cache_size: int = 0,
    ) -> None:
        super().__init__(
            n_workers=n_workers,
            space=space,
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        )
        self.config = config or ESSIMDEConfig()
        if self.config.tuning != "none":
            self.name = f"ESSIM-DE+{self.config.tuning}"

    def _optimize(
        self,
        evaluate,
        space: ParameterSpace,
        rng: np.random.Generator,
        step: int,
    ) -> OSOutput:
        cfg = self.config
        island_rng, tuning_rng = spawn(rng, 2)
        intervention = self._build_intervention(space, tuning_rng)
        model = IslandModel(
            lambda: DifferentialEvolution(cfg.de), cfg.islands
        )
        result = model.run(
            evaluate,
            space,
            cfg.termination(),
            rng=island_rng,
            intervention=intervention,
        )
        if cfg.solution_policy == "best_only":
            # First-version harvesting: fittest half per island only.
            solution_sets = []
            for pop in result.populations:
                ranked = sorted(
                    pop, key=lambda ind: ind.fitness or 0.0, reverse=True
                )
                solution_sets.append(
                    genomes_matrix(ranked[: max(1, len(ranked) // 2)])
                )
        else:
            solution_sets = [genomes_matrix(pop) for pop in result.populations]
        return OSOutput(
            solution_sets=solution_sets,
            best_fitness=float(result.best.fitness or 0.0),
            evaluations=result.evaluations,
            extras={
                "histories": result.histories,
                "best_island": result.best_island(),
            },
        )

    # ------------------------------------------------------------------
    def _build_intervention(
        self, space: ParameterSpace, rng: np.random.Generator
    ):
        cfg = self.config
        if cfg.tuning == "none":
            return None
        hooks = []
        if cfg.tuning in ("restart", "both"):
            hooks.append(
                PopulationRestart(
                    space, patience=cfg.restart_patience, rng=rng
                )
            )
        if cfg.tuning in ("iqr", "both"):
            hooks.append(
                IQRTuning(space, iqr_threshold=cfg.iqr_threshold, rng=rng)
            )

        def intervention(epoch, populations):
            for hook in hooks:
                populations = hook(epoch, populations)
            return populations

        return intervention
