"""ESS — the Evolutionary Statistical System baseline (Fig. 1).

One-level Master/Worker; the OS is a classical fitness-guided GA whose
**final evolved population** is the solution set handed to the
Statistical Stage — the design whose convergence to similar genotypes
§II-B identifies as the core limitation ESS-NS removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.individual import genomes_matrix
from repro.core.scenario import ParameterSpace
from repro.ea.ga import GAConfig, GeneticAlgorithm
from repro.ea.termination import Termination
from repro.systems.base import OSOutput, PredictionSystem

__all__ = ["ESSConfig", "ESS"]


@dataclass(frozen=True)
class ESSConfig:
    """ESS hyper-parameters: the GA plus the per-step stopping rule."""

    ga: GAConfig = field(default_factory=GAConfig)
    max_generations: int = 15
    fitness_threshold: float = 1.0

    def termination(self) -> Termination:
        """The per-step Algorithm-independent stopping condition."""
        return Termination(
            max_generations=self.max_generations,
            fitness_threshold=self.fitness_threshold,
        )


class ESS(PredictionSystem):
    """Evolutionary Statistical System (GA-driven OS)."""

    name = "ESS"

    def __init__(
        self,
        config: ESSConfig | None = None,
        n_workers: int = 1,
        space: ParameterSpace | None = None,
        backend: str = "reference",
        cache_size: int = 0,
        session_cache_size: int = 0,
    ) -> None:
        super().__init__(
            n_workers=n_workers,
            space=space,
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        )
        self.config = config or ESSConfig()

    def _optimize(
        self,
        evaluate,
        space: ParameterSpace,
        rng: np.random.Generator,
        step: int,
    ) -> OSOutput:
        result = GeneticAlgorithm(self.config.ga).run(
            evaluate, space, self.config.termination(), rng=rng
        )
        return OSOutput(
            solution_sets=[genomes_matrix(result.population)],
            best_fitness=float(result.best.fitness or 0.0),
            evaluations=result.evaluations,
            extras={"history": result.history},
        )
