"""Declarative construction of prediction systems by name.

The experiment layer (and the CLI on top of it) refers to systems by
their lineage names — ``ess``, ``ess-ns``, ``essim-ea``, ``essim-de``,
``essns-im`` — plus a small budget (population, generations, workers).
:func:`build_system` turns that declarative description into a
configured :class:`~repro.systems.base.PredictionSystem`, with the
matched-budget conventions of the papers' comparisons baked in: the
island systems split the population across two islands, novelty search
derives its neighbourhood and bestSet sizes from the population.

Moved here from ``repro.cli`` so experiment plans (and their shard
worker processes) can rebuild systems without importing the CLI.
"""

from __future__ import annotations

from repro.ea.de import DEConfig
from repro.ea.ga import GAConfig
from repro.ea.nsga import NoveltyGAConfig
from repro.errors import ReproError
from repro.parallel.islands import IslandModelConfig
from repro.systems.base import PredictionSystem
from repro.systems.ess import ESS, ESSConfig
from repro.systems.ess_ns import ESSNS, ESSNSConfig
from repro.systems.essim_de import ESSIMDE, ESSIMDEConfig
from repro.systems.essim_ea import ESSIMEA, ESSIMEAConfig
from repro.systems.essns_im import ESSNSIM, ESSNSIMConfig

__all__ = ["SYSTEM_NAMES", "build_system"]

#: The five systems of the lineage, in paper order.
SYSTEM_NAMES = ("ess", "ess-ns", "essim-ea", "essim-de", "essns-im")


def build_system(
    name: str,
    population: int = 16,
    generations: int = 6,
    n_workers: int = 1,
    tuning: str = "both",
    backend: str = "reference",
    cache_size: int = 0,
    session_cache_size: int = 0,
) -> PredictionSystem:
    """Construct a prediction system by name with matched budgets."""
    islands = IslandModelConfig(n_islands=2, migration_interval=2, n_migrants=2)
    half = max(4, population // 2)
    engine_opts = dict(
        n_workers=n_workers,
        backend=backend,
        cache_size=cache_size,
        session_cache_size=session_cache_size,
    )
    if name == "ess":
        return ESS(
            ESSConfig(ga=GAConfig(population_size=population),
                      max_generations=generations),
            **engine_opts,
        )
    if name == "ess-ns":
        return ESSNS(
            ESSNSConfig(
                nsga=NoveltyGAConfig(
                    population_size=population,
                    k_neighbors=max(2, population // 2),
                    best_set_capacity=max(4, (3 * population) // 4),
                ),
                max_generations=generations,
            ),
            **engine_opts,
        )
    if name == "essim-ea":
        return ESSIMEA(
            ESSIMEAConfig(
                ga=GAConfig(population_size=half),
                islands=islands,
                max_generations=generations,
            ),
            **engine_opts,
        )
    if name == "essim-de":
        return ESSIMDE(
            ESSIMDEConfig(
                de=DEConfig(population_size=half),
                islands=islands,
                max_generations=generations,
                tuning=tuning,
            ),
            **engine_opts,
        )
    if name == "essns-im":
        return ESSNSIM(
            ESSNSIMConfig(
                nsga=NoveltyGAConfig(
                    population_size=half,
                    k_neighbors=max(2, half // 2),
                    best_set_capacity=max(4, (3 * half) // 4),
                ),
                islands=islands,
                max_generations=generations,
            ),
            **engine_opts,
        )
    raise ReproError(
        f"unknown system {name!r}; choose from {SYSTEM_NAMES}"
    )
