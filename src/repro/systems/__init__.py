"""The four predictive systems of the ESS lineage.

Every system runs the same per-step DDM-MOS pipeline (OS → SS → CS →
PS, Figs. 1–3) over a reference fire; they differ in the Optimization
Stage:

* :class:`~repro.systems.ess.ESS` — classical GA, final population as
  the solution set (Fig. 1).
* :class:`~repro.systems.ess_ns.ESSNS` — **the paper's proposal**:
  Algorithm 1 (novelty-search GA), ``bestSet`` as the solution set,
  one-level Master/Worker (Fig. 3).
* :class:`~repro.systems.essim_ea.ESSIMEA` — two-level island GA
  (Monitor/Masters/Workers).
* :class:`~repro.systems.essim_de.ESSIMDE` — two-level island DE, with
  optional dynamic tuning (population restart, IQR).
"""

from repro.systems.problem import PredictionStepProblem
from repro.systems.results import StepResult, RunResult
from repro.systems.base import PredictionSystem
from repro.systems.ess import ESS, ESSConfig
from repro.systems.ess_ns import ESSNS, ESSNSConfig
from repro.systems.essim_ea import ESSIMEA, ESSIMEAConfig
from repro.systems.essim_de import ESSIMDE, ESSIMDEConfig
from repro.systems.essns_im import ESSNSIM, ESSNSIMConfig
from repro.systems.factory import SYSTEM_NAMES, build_system

__all__ = [
    "SYSTEM_NAMES",
    "build_system",
    "PredictionStepProblem",
    "StepResult",
    "RunResult",
    "PredictionSystem",
    "ESS",
    "ESSConfig",
    "ESSNS",
    "ESSNSConfig",
    "ESSIMEA",
    "ESSIMEAConfig",
    "ESSIMDE",
    "ESSIMDEConfig",
    "ESSNSIM",
    "ESSNSIMConfig",
]
