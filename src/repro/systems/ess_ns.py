"""ESS-NS — the paper's proposal (Fig. 3).

Identical skeleton to ESS with the two §III-A modifications:

1. the OS metaheuristic is the **NS-based GA** (Algorithm 1) — search
   guided by the novelty score ρ(x), red block of Fig. 3;
2. the OS output is the **bestSet** — the high-fitness individuals
   accumulated during the whole search — instead of the final evolved
   population, which lets the Statistical Stage combine scenarios from
   completely different regions of the search space.

The hierarchy is deliberately one-level Master/Worker (the paper
simplifies away the ESSIM islands to isolate the effect of NS; the
island variant lives in :mod:`repro.systems.essns_im`).

§IV variants implemented here:

* ``novel_fraction`` / ``random_fraction`` — "build a solution set not
  only according to fitness values but also by some criterion, like
  the addition of a percentage of novel or random solutions";
* ``archive_kind="threshold"`` — the dynamic novelty-threshold archive
  of Lehman & Stanley (the paper's ref [15]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.archive import ThresholdArchive
from repro.core.scenario import ParameterSpace
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.systems.base import OSOutput, PredictionSystem

__all__ = ["ESSNSConfig", "ESSNS"]


@dataclass(frozen=True)
class ESSNSConfig:
    """ESS-NS hyper-parameters: Algorithm 1 plus the stopping rule.

    ``novel_fraction`` and ``random_fraction`` divert that share of the
    solution set from the bestSet to (respectively) the most novel
    archive members and fresh uniform scenarios; their sum must stay
    below 1 so high-fitness solutions always anchor the prediction.
    ``archive_kind`` selects the fixed-capacity archive (``"bounded"``,
    the paper's first version) or the dynamic ``"threshold"`` archive.
    """

    nsga: NoveltyGAConfig = field(default_factory=NoveltyGAConfig)
    max_generations: int = 15
    fitness_threshold: float = 1.0
    novel_fraction: float = 0.0
    random_fraction: float = 0.0
    archive_kind: str = "bounded"

    def __post_init__(self) -> None:
        for name in ("novel_fraction", "random_fraction"):
            v = getattr(self, name)
            if not (0.0 <= v < 1.0):
                raise EvolutionError(f"{name} must be in [0, 1), got {v}")
        if self.novel_fraction + self.random_fraction >= 1.0:
            raise EvolutionError(
                "novel_fraction + random_fraction must be < 1 so the "
                "solution set keeps a high-fitness core"
            )
        if self.archive_kind not in ("bounded", "threshold"):
            raise EvolutionError(
                f"archive_kind must be 'bounded' or 'threshold', got "
                f"{self.archive_kind!r}"
            )

    def termination(self) -> Termination:
        """Algorithm 1 line 6 parameters (maxGen, fThreshold)."""
        return Termination(
            max_generations=self.max_generations,
            fitness_threshold=self.fitness_threshold,
        )


class ESSNS(PredictionSystem):
    """Evolutionary Statistical System — Novelty Search."""

    name = "ESS-NS"

    def __init__(
        self,
        config: ESSNSConfig | None = None,
        n_workers: int = 1,
        space: ParameterSpace | None = None,
        backend: str = "reference",
        cache_size: int = 0,
        session_cache_size: int = 0,
    ) -> None:
        super().__init__(
            n_workers=n_workers,
            space=space,
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        )
        self.config = config or ESSNSConfig()

    def _optimize(
        self,
        evaluate,
        space: ParameterSpace,
        rng: np.random.Generator,
        step: int,
    ) -> OSOutput:
        cfg = self.config
        archive = (
            ThresholdArchive(max_size=cfg.nsga.archive_capacity)
            if cfg.archive_kind == "threshold"
            else None  # NoveltyGA builds the bounded archive itself
        )
        result = NoveltyGA(cfg.nsga).run(
            evaluate,
            space,
            cfg.termination(),
            rng=rng,
            archive=archive,
        )
        solution = self._compose_solution_set(result, space, rng)
        return OSOutput(
            # Fig. 3: the OS output is (rooted in) the bestSet, not the
            # final population.
            solution_sets=[solution],
            best_fitness=result.best_set.max_fitness(),
            evaluations=result.evaluations,
            extras={
                "history": result.history,
                "archive_size": len(result.archive),
                "best_set_size": len(result.best_set),
            },
        )

    # ------------------------------------------------------------------
    def _compose_solution_set(
        self, result, space: ParameterSpace, rng: np.random.Generator
    ) -> np.ndarray:
        """§IV solution-set mixing: bestSet core + novel% + random%."""
        cfg = self.config
        best = result.best_genomes()
        total = max(len(result.best_set), 1)
        n_novel = int(round(cfg.novel_fraction * total))
        n_random = int(round(cfg.random_fraction * total))
        parts = [best]
        if n_novel > 0 and len(result.archive):
            novel = sorted(
                result.archive.members(),
                key=lambda ind: ind.novelty or 0.0,
                reverse=True,
            )[:n_novel]
            parts.append(np.stack([ind.genome for ind in novel]))
        if n_random > 0:
            parts.append(space.sample(n_random, rng))
        return np.vstack([p for p in parts if p.size])
