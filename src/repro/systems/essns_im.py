"""ESSNS-IM — island-model ESS-NS (the §III-A/§IV future-work variant).

The paper simplifies ESS-NS to one level "to be able to analyse the
impact of NS alone", explicitly deferring "the implementation of
parallel and/or distributed methods such as an island model, which may
incorporate hybridization with fitness-based strategies" to future
work. This module implements that variant:

* several islands, each running Algorithm 1 with **persistent** archive
  and bestSet (the accumulators survive across migration epochs —
  losing the archive would reset each island's notion of novelty);
* ring migration of the fittest individuals between islands;
* optional **hybrid guidance** per island via
  :attr:`repro.ea.nsga.NoveltyGAConfig.fitness_weight` (the weighted
  fitness/novelty sum of the paper's ref [31]);
* the Monitor (the shared base driver) receives one bestSet per island
  and selects the best calibration candidate, exactly as in ESSIM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.archive import BestSet, NoveltyArchive
from repro.core.individual import Individual
from repro.core.scenario import ParameterSpace
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.errors import EvolutionError
from repro.parallel.islands import IslandModelConfig
from repro.rng import spawn
from repro.systems.base import OSOutput, PredictionSystem

__all__ = ["ESSNSIMConfig", "ESSNSIM"]


@dataclass(frozen=True)
class ESSNSIMConfig:
    """Island ESS-NS hyper-parameters.

    ``nsga.fitness_weight > 0`` turns each island into a hybrid
    novelty/fitness searcher; different weights per island are possible
    by subclassing and overriding :meth:`ESSNSIM._island_config`.
    """

    nsga: NoveltyGAConfig = field(
        default_factory=lambda: NoveltyGAConfig(population_size=25)
    )
    islands: IslandModelConfig = field(default_factory=IslandModelConfig)
    max_generations: int = 15
    fitness_threshold: float = 1.0

    def termination(self) -> Termination:
        """Monitor-level stopping condition."""
        return Termination(
            max_generations=self.max_generations,
            fitness_threshold=self.fitness_threshold,
        )


class ESSNSIM(PredictionSystem):
    """Evolutionary Statistical System — Novelty Search, Island Model."""

    name = "ESSNS-IM"

    def __init__(
        self,
        config: ESSNSIMConfig | None = None,
        n_workers: int = 1,
        space: ParameterSpace | None = None,
        backend: str = "reference",
        cache_size: int = 0,
        session_cache_size: int = 0,
    ) -> None:
        super().__init__(
            n_workers=n_workers,
            space=space,
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        )
        self.config = config or ESSNSIMConfig()
        if self.config.nsga.fitness_weight > 0:
            self.name = f"ESSNS-IM(w={self.config.nsga.fitness_weight:g})"

    def _island_config(self, island: int) -> NoveltyGAConfig:
        """Per-island Algorithm 1 configuration (hook for heterogeneity)."""
        return self.config.nsga

    # ------------------------------------------------------------------
    def _optimize(
        self,
        evaluate,
        space: ParameterSpace,
        rng: np.random.Generator,
        step: int,
    ) -> OSOutput:
        cfg = self.config
        isl = cfg.islands
        termination = cfg.termination()
        island_rngs = spawn(rng, isl.n_islands + 1)
        archive_rng = island_rngs[-1]

        engines = [
            NoveltyGA(self._island_config(i)) for i in range(isl.n_islands)
        ]
        archives = [
            NoveltyArchive(
                self._island_config(i).archive_capacity,
                policy=self._island_config(i).archive_policy,
                rng=child,
            )
            for i, child in enumerate(spawn(archive_rng, isl.n_islands))
        ]
        best_sets = [
            BestSet(self._island_config(i).best_set_capacity)
            for i in range(isl.n_islands)
        ]
        populations: list[list[Individual] | None] = [None] * isl.n_islands
        generations = 0
        evaluations = 0

        def monitor_best() -> float:
            return max(bs.max_fitness() for bs in best_sets)

        while termination.should_continue(generations, monitor_best()):
            epoch_gens = min(
                isl.migration_interval, termination.max_generations - generations
            )
            epoch_term = Termination(
                max_generations=epoch_gens,
                fitness_threshold=termination.fitness_threshold,
            )
            for i, engine in enumerate(engines):
                result = engine.run(
                    evaluate,
                    space,
                    epoch_term,
                    rng=island_rngs[i],
                    initial_population=populations[i],
                    archive=archives[i],
                    best_set=best_sets[i],
                )
                populations[i] = result.population
                evaluations += result.evaluations
            generations += epoch_gens
            if isl.n_migrants > 0 and isl.n_islands > 1 and isl.topology != "none":
                self._migrate([list(p) for p in populations], populations)  # type: ignore[arg-type]

        return OSOutput(
            solution_sets=[bs.genomes() for bs in best_sets],
            best_fitness=monitor_best(),
            evaluations=evaluations,
            extras={
                "archive_sizes": [len(a) for a in archives],
                "best_set_sizes": [len(bs) for bs in best_sets],
                "generations": generations,
            },
        )

    # ------------------------------------------------------------------
    def _migrate(
        self,
        snapshot: list[list[Individual]],
        populations: list[list[Individual] | None],
    ) -> None:
        """Ring migration of the fittest individuals (ESSIM-style)."""
        isl = self.config.islands
        n = len(snapshot)

        def top(pop: list[Individual]) -> list[Individual]:
            return sorted(
                pop, key=lambda ind: ind.fitness or 0.0, reverse=True
            )[: isl.n_migrants]

        if isl.topology == "broadcast":
            scores = [
                max((ind.fitness or 0.0) for ind in pop) for pop in snapshot
            ]
            source = int(np.argmax(scores))
            migrants = top(snapshot[source])
            targets = [i for i in range(n) if i != source]
            sources = {t: migrants for t in targets}
        else:  # ring
            sources = {(i + 1) % n: top(snapshot[i]) for i in range(n)}

        for target, migrants in sources.items():
            pop = populations[target]
            if pop is None:
                continue
            pop.sort(key=lambda ind: ind.fitness or 0.0)
            for j, migrant in enumerate(migrants):
                if j < len(pop):
                    pop[j] = migrant.copy()
