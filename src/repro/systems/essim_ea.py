"""ESSIM-EA — two-level island Genetic Algorithm (§II-B).

Monitor / Masters / Workers: each island Master evolves its own GA
population; the Monitor receives every island's probability matrix,
Kign and calibration fitness and keeps the best candidate for the
prediction. Migration between islands combats per-island convergence.

In this reproduction the islands are logical
(:class:`repro.parallel.islands.IslandModel`) and the Monitor role is
played by the shared per-step driver
(:class:`repro.systems.base.PredictionSystem`), which already selects
the best (matrix, Kign) among the solution sets it receives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.individual import genomes_matrix
from repro.core.scenario import ParameterSpace
from repro.ea.ga import GAConfig, GeneticAlgorithm
from repro.ea.termination import Termination
from repro.parallel.islands import IslandModel, IslandModelConfig
from repro.systems.base import OSOutput, PredictionSystem

__all__ = ["ESSIMEAConfig", "ESSIMEA"]


@dataclass(frozen=True)
class ESSIMEAConfig:
    """ESSIM-EA hyper-parameters: per-island GA + island topology."""

    ga: GAConfig = field(default_factory=lambda: GAConfig(population_size=25))
    islands: IslandModelConfig = field(default_factory=IslandModelConfig)
    max_generations: int = 15
    fitness_threshold: float = 1.0

    def termination(self) -> Termination:
        """Global (Monitor-level) stopping condition."""
        return Termination(
            max_generations=self.max_generations,
            fitness_threshold=self.fitness_threshold,
        )


class ESSIMEA(PredictionSystem):
    """Evolutionary Statistical System with Island Model (GA)."""

    name = "ESSIM-EA"

    def __init__(
        self,
        config: ESSIMEAConfig | None = None,
        n_workers: int = 1,
        space: ParameterSpace | None = None,
        backend: str = "reference",
        cache_size: int = 0,
        session_cache_size: int = 0,
    ) -> None:
        super().__init__(
            n_workers=n_workers,
            space=space,
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        )
        self.config = config or ESSIMEAConfig()

    def _optimize(
        self,
        evaluate,
        space: ParameterSpace,
        rng: np.random.Generator,
        step: int,
    ) -> OSOutput:
        model = IslandModel(
            lambda: GeneticAlgorithm(self.config.ga), self.config.islands
        )
        result = model.run(evaluate, space, self.config.termination(), rng=rng)
        return OSOutput(
            # One solution set per island: the Monitor (base driver)
            # aggregates, calibrates and selects among them.
            solution_sets=[genomes_matrix(pop) for pop in result.populations],
            best_fitness=float(result.best.fitness or 0.0),
            evaluations=result.evaluations,
            extras={
                "histories": result.histories,
                "best_island": result.best_island(),
            },
        )
