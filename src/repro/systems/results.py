"""Per-step and per-run result records for the prediction systems.

Results serialise to plain JSON (``RunResult.save_json`` /
``RunResult.load_json``) so sweeps can be archived and analysed without
re-running the pipeline.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.parallel.timing import StageTimings

__all__ = ["StepResult", "RunResult"]


@dataclass
class StepResult:
    """Everything a system produced for one prediction step.

    Attributes
    ----------
    step:
        Step index (1-based; step 1 has no prediction by construction).
    kign:
        The Key Ignition Value calibrated *at this step* (used by the
        next step's PS).
    calibration_fitness:
        Eq. 3 fitness the CS achieved with ``kign`` at this step — the
        upper bound the next step's prediction chases.
    prediction_quality:
        Eq. 3 fitness of this step's PFL against reality (``nan`` for
        the first step).
    best_scenario_fitness:
        Best individual-scenario fitness found by the OS.
    n_solutions:
        Size of the solution set fed to the SS (bestSet for ESS-NS,
        population for the others).
    evaluations:
        Simulator runs spent by the OS this step.
    timings:
        Wall-clock per stage (keys: ``"os"``, ``"ss"``, ``"cs"``,
        ``"ps"``).
    engine:
        Simulation-engine accounting for the step (the
        :meth:`repro.engine.EngineStats.to_dict` payload: backend,
        workers, evaluations vs. actual simulations, cache hit/miss
        counters). Empty for runs predating the engine subsystem.
    """

    step: int
    kign: float
    calibration_fitness: float
    prediction_quality: float
    best_scenario_fitness: float
    n_solutions: int
    evaluations: int
    timings: StageTimings = field(default_factory=StageTimings)
    engine: dict = field(default_factory=dict)

    @property
    def has_prediction(self) -> bool:
        """Whether this step produced a PFL (false only for step 1)."""
        return not np.isnan(self.prediction_quality)

    def to_dict(self) -> dict:
        """JSON-safe representation (nan quality → null)."""
        return {
            "step": self.step,
            "kign": self.kign,
            "calibration_fitness": self.calibration_fitness,
            "prediction_quality": (
                None
                if math.isnan(self.prediction_quality)
                else self.prediction_quality
            ),
            "best_scenario_fitness": self.best_scenario_fitness,
            "n_solutions": self.n_solutions,
            "evaluations": self.evaluations,
            "timings": dict(self.timings.seconds),
            "engine": dict(self.engine),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StepResult":
        """Inverse of :meth:`to_dict`."""
        quality = data["prediction_quality"]
        return cls(
            step=int(data["step"]),
            kign=float(data["kign"]),
            calibration_fitness=float(data["calibration_fitness"]),
            prediction_quality=float("nan") if quality is None else float(quality),
            best_scenario_fitness=float(data["best_scenario_fitness"]),
            n_solutions=int(data["n_solutions"]),
            evaluations=int(data["evaluations"]),
            timings=StageTimings(seconds=dict(data.get("timings", {}))),
            engine=dict(data.get("engine", {})),
        )


@dataclass
class RunResult:
    """A full multi-step run of one prediction system.

    ``session`` carries the run-scoped engine accounting (the
    :meth:`repro.engine.SessionStats.to_dict` payload: steps served,
    distinct step contexts, worker-pool reuses, cross-step cache
    hit/miss/eviction counters). Empty for runs predating the
    engine-session subsystem.
    """

    system: str
    steps: list[StepResult] = field(default_factory=list)
    session: dict = field(default_factory=dict)

    def qualities(self) -> np.ndarray:
        """Prediction quality per step (nan where no prediction)."""
        return np.asarray(
            [s.prediction_quality for s in self.steps], dtype=np.float64
        )

    def mean_quality(self) -> float:
        """Mean prediction quality over the steps that have one."""
        q = self.qualities()
        valid = q[~np.isnan(q)]
        return float(valid.mean()) if valid.size else float("nan")

    def total_evaluations(self) -> int:
        """Total simulator runs across all steps."""
        return int(sum(s.evaluations for s in self.steps))

    def total_time(self) -> float:
        """Total wall-clock seconds across all stages and steps."""
        return float(sum(s.timings.total() for s in self.steps))

    def stage_timings(self) -> StageTimings:
        """Aggregate per-stage wall-clock across steps."""
        agg = StageTimings()
        for s in self.steps:
            agg.merge(s.timings)
        return agg

    def engine_totals(self) -> dict:
        """Aggregate engine accounting across steps.

        Returns an empty dict when no step carries engine stats (runs
        recorded before the engine subsystem). Otherwise: the backend
        name of the first step, summed evaluations/simulations and
        summed cache hit/miss/eviction counters.
        """
        steps = [s.engine for s in self.steps if s.engine]
        if not steps:
            return {}
        totals = {
            "backend": steps[0].get("backend", "reference"),
            "n_workers": steps[0].get("n_workers", 1),
            "evaluations": 0,
            "simulations": 0,
            "map_simulations": 0,
            "cache": {"hits": 0, "misses": 0, "evictions": 0},
        }
        for payload in steps:
            totals["evaluations"] += int(payload.get("evaluations", 0))
            totals["simulations"] += int(payload.get("simulations", 0))
            totals["map_simulations"] += int(payload.get("map_simulations", 0))
            cache = payload.get("cache", {})
            for key in totals["cache"]:
                totals["cache"][key] += int(cache.get(key, 0))
        return totals

    def to_dict(self) -> dict:
        """JSON-safe representation of the whole run."""
        return {
            "system": self.system,
            "steps": [s.to_dict() for s in self.steps],
            "session": dict(self.session),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        try:
            run = cls(system=str(data["system"]))
            run.steps = [StepResult.from_dict(s) for s in data["steps"]]
            run.session = dict(data.get("session", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed RunResult payload: {exc}") from exc
        return run

    def save_json(self, path: str | os.PathLike) -> None:
        """Write the run to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load_json(cls, path: str | os.PathLike) -> "RunResult":
        """Read a run previously written by :meth:`save_json`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def summary_rows(self) -> list[dict]:
        """One dict per step — the schema the reporting module tabulates."""
        return [
            {
                "step": s.step,
                "kign": round(s.kign, 4),
                "cal_fitness": round(s.calibration_fitness, 4),
                "quality": (
                    round(s.prediction_quality, 4) if s.has_prediction else None
                ),
                "best_fitness": round(s.best_scenario_fitness, 4),
                "evaluations": s.evaluations,
                "seconds": round(s.timings.total(), 3),
            }
            for s in self.steps
        ]
